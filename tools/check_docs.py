#!/usr/bin/env python3
"""Documentation consistency checks (run by CI and the test suite).

Four checks, all filesystem/CLI-only:

1. **Internal links resolve** — every relative markdown link in
   ``README.md`` and ``docs/*.md`` points at a file that exists.
2. **Bench verbs documented** — every experiment id registered in
   ``repro.bench.experiments.EXPERIMENTS`` appears in ``docs/BENCH.md``,
   and every ``experiment-id``-looking verb documented there is
   actually registered or a known extra CLI verb (docs and CLI cannot
   drift apart).
3. **CLI help lists the verbs** — ``python -m repro.bench --help``
   mentions every registered experiment id and extra verb.
4. **Observability vocabulary documented** — the metric/span/event name
   tables in ``docs/OBSERVABILITY.md`` match
   ``repro.telemetry.naming.METRICS``/``SPANS`` and
   ``repro.telemetry.events.EVENTS`` in both directions, so a new
   metric cannot ship undocumented and doc rows cannot go stale.
5. **HTTP endpoints documented** — the endpoint table in
   ``docs/OBSERVABILITY.md`` matches
   ``repro.telemetry.server.ENDPOINTS`` in both directions.
6. **Lint rules documented** — the rule table in ``docs/ANALYSIS.md``
   matches the ``tools/analysis`` rule registry in both directions, so
   a quasii-lint rule cannot ship undocumented and a doc row cannot
   outlive its rule.

Exit status 0 when everything holds; 1 with a per-problem report
otherwise.  Run from the repository root::

    PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Markdown files whose relative links must resolve.
LINKED_DOCS = [
    "README.md",
    "docs/ANALYSIS.md",
    "docs/ARCHITECTURE.md",
    "docs/BENCH.md",
    "docs/OBSERVABILITY.md",
]

_LINK = re.compile(r"\[[^\]]+\]\(([^)#\s]+)(?:#[^)\s]*)?\)")

#: First-column backticked ids in markdown tables: ``| `name` | ...``.
#: The metric charset (dots/underscores) is disjoint from the verb
#: charset (hyphens), so each check sees only its own vocabulary.
_VERB_ROW = re.compile(r"^\| `([a-z0-9-]+)` \|", re.MULTILINE)
_NAME_ROW = re.compile(r"^\| `([a-z0-9_.]+)` \|", re.MULTILINE)
#: Endpoint paths start with a slash, so neither charset above sees them.
_ENDPOINT_ROW = re.compile(r"^\| `(/[a-z0-9_./-]*)` \|", re.MULTILINE)
#: Lint rule ids are uppercase, disjoint from every charset above.
_RULE_ROW = re.compile(r"^\| `(QL\d{3})` \|", re.MULTILINE)


def check_links() -> list[str]:
    """Relative markdown links in the documented files must resolve."""
    problems = []
    for name in LINKED_DOCS:
        doc = REPO / name
        if not doc.is_file():
            problems.append(f"{name}: file missing")
            continue
        for target in _LINK.findall(doc.read_text(encoding="utf-8")):
            if "://" in target or target.startswith("mailto:"):
                continue
            resolved = (doc.parent / target).resolve()
            if not resolved.exists():
                problems.append(f"{name}: broken link -> {target}")
    return problems


def check_bench_docs() -> list[str]:
    """docs/BENCH.md and the EXPERIMENTS registry must agree."""
    from repro.bench.cli import EXTRA_VERBS
    from repro.bench.experiments import EXPERIMENTS, SCALES

    problems = []
    bench_md = REPO / "docs" / "BENCH.md"
    if not bench_md.is_file():
        return ["docs/BENCH.md: file missing"]
    text = bench_md.read_text(encoding="utf-8")
    documented = set(_VERB_ROW.findall(text))
    registered = set(EXPERIMENTS)
    for verb in sorted(registered - documented):
        problems.append(f"docs/BENCH.md: experiment {verb!r} is not documented")
    # Scale presets and extra CLI verbs ('report') are documented in the
    # same table style; they are known ids, not unknown experiments.
    for verb in sorted(
        documented - registered - set(SCALES) - set(EXTRA_VERBS)
    ):
        problems.append(
            f"docs/BENCH.md: documents unknown experiment {verb!r}"
        )
    return problems


def check_cli_help() -> list[str]:
    """``python -m repro.bench --help`` must list every experiment id."""
    from repro.bench.cli import EXTRA_VERBS, build_parser
    from repro.bench.experiments import EXPERIMENTS

    # argparse wraps long id lists and may break them at hyphens
    # ("mixed-\nworkload"); squash all whitespace before matching.
    help_text = re.sub(r"\s+", "", build_parser().format_help())
    return [
        f"bench --help does not mention verb {verb!r}"
        for verb in sorted([*EXPERIMENTS, *EXTRA_VERBS])
        if verb not in help_text
    ]


def check_observability_docs() -> list[str]:
    """docs/OBSERVABILITY.md tables must match the code registries.

    Both directions, for all three vocabularies: every canonical
    metric/span/event name needs a doc row and every documented name
    must exist in a registry; the same holds for the HTTP endpoint
    table against ``repro.telemetry.server.ENDPOINTS``.  Metric names
    contain dots and endpoints contain slashes, so the verb tables of
    BENCH.md never collide here.
    """
    from repro.telemetry.events import EVENTS
    from repro.telemetry.naming import METRICS, SPANS
    from repro.telemetry.server import ENDPOINTS

    obs_md = REPO / "docs" / "OBSERVABILITY.md"
    if not obs_md.is_file():
        return ["docs/OBSERVABILITY.md: file missing"]
    text = obs_md.read_text(encoding="utf-8")
    problems = []

    documented = set(_NAME_ROW.findall(text))
    canonical = set(METRICS) | set(SPANS) | set(EVENTS)
    for name in sorted(canonical - documented):
        problems.append(
            f"docs/OBSERVABILITY.md: metric/span/event {name!r} is not "
            "documented"
        )
    for name in sorted(documented - canonical):
        problems.append(
            "docs/OBSERVABILITY.md: documents unknown metric/span/event "
            f"{name!r}"
        )

    documented_paths = set(_ENDPOINT_ROW.findall(text))
    for path in sorted(set(ENDPOINTS) - documented_paths):
        problems.append(
            f"docs/OBSERVABILITY.md: endpoint {path!r} is not documented"
        )
    for path in sorted(documented_paths - set(ENDPOINTS)):
        problems.append(
            f"docs/OBSERVABILITY.md: documents unknown endpoint {path!r}"
        )
    return problems


def check_analysis_docs() -> list[str]:
    """docs/ANALYSIS.md's rule table must match the lint registry.

    ``tools/analysis`` is importable as the top-level ``analysis``
    package because this script's own directory (``tools/``) is on
    ``sys.path`` — both when run as a script and via the test suite's
    explicit insert.
    """
    from analysis.rules import RULES

    analysis_md = REPO / "docs" / "ANALYSIS.md"
    if not analysis_md.is_file():
        return ["docs/ANALYSIS.md: file missing"]
    documented = set(_RULE_ROW.findall(analysis_md.read_text(encoding="utf-8")))
    problems = []
    for rule_id in sorted(set(RULES) - documented):
        problems.append(
            f"docs/ANALYSIS.md: lint rule {rule_id!r} is not documented"
        )
    for rule_id in sorted(documented - set(RULES)):
        problems.append(
            f"docs/ANALYSIS.md: documents unknown lint rule {rule_id!r}"
        )
    return problems


def main() -> int:
    problems = (
        check_links()
        + check_bench_docs()
        + check_cli_help()
        + check_observability_docs()
        + check_analysis_docs()
    )
    for problem in problems:
        print(f"docs-check: {problem}", file=sys.stderr)
    if problems:
        print(f"docs-check: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print(
        "docs-check: README/docs links, BENCH.md verbs, CLI help, "
        "OBSERVABILITY.md metric/span/event/endpoint tables, and the "
        "ANALYSIS.md lint-rule table all consistent"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
