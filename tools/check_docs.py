#!/usr/bin/env python3
"""Documentation consistency checks (run by CI and the test suite).

Three checks, all filesystem/CLI-only:

1. **Internal links resolve** — every relative markdown link in
   ``README.md`` and ``docs/*.md`` points at a file that exists.
2. **Bench verbs documented** — every experiment id registered in
   ``repro.bench.experiments.EXPERIMENTS`` appears in ``docs/BENCH.md``,
   and every ``experiment-id``-looking verb documented there is
   actually registered (docs and CLI cannot drift apart).
3. **CLI help lists the verbs** — ``python -m repro.bench --help``
   mentions every registered experiment id.

Exit status 0 when everything holds; 1 with a per-problem report
otherwise.  Run from the repository root::

    PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Markdown files whose relative links must resolve.
LINKED_DOCS = ["README.md", "docs/ARCHITECTURE.md", "docs/BENCH.md"]

_LINK = re.compile(r"\[[^\]]+\]\(([^)#\s]+)(?:#[^)\s]*)?\)")


def check_links() -> list[str]:
    """Relative markdown links in the documented files must resolve."""
    problems = []
    for name in LINKED_DOCS:
        doc = REPO / name
        if not doc.is_file():
            problems.append(f"{name}: file missing")
            continue
        for target in _LINK.findall(doc.read_text(encoding="utf-8")):
            if "://" in target or target.startswith("mailto:"):
                continue
            resolved = (doc.parent / target).resolve()
            if not resolved.exists():
                problems.append(f"{name}: broken link -> {target}")
    return problems


def check_bench_docs() -> list[str]:
    """docs/BENCH.md and the EXPERIMENTS registry must agree."""
    from repro.bench.experiments import EXPERIMENTS, SCALES

    problems = []
    bench_md = REPO / "docs" / "BENCH.md"
    if not bench_md.is_file():
        return ["docs/BENCH.md: file missing"]
    text = bench_md.read_text(encoding="utf-8")
    documented = set(re.findall(r"^\| `([a-z0-9-]+)` \|", text, re.MULTILINE))
    registered = set(EXPERIMENTS)
    for verb in sorted(registered - documented):
        problems.append(f"docs/BENCH.md: experiment {verb!r} is not documented")
    # Scale presets are documented in the same table style; they are
    # known ids, not unknown experiments.
    for verb in sorted(documented - registered - set(SCALES)):
        problems.append(
            f"docs/BENCH.md: documents unknown experiment {verb!r}"
        )
    return problems


def check_cli_help() -> list[str]:
    """``python -m repro.bench --help`` must list every experiment id."""
    from repro.bench.cli import build_parser
    from repro.bench.experiments import EXPERIMENTS

    # argparse wraps long id lists and may break them at hyphens
    # ("mixed-\nworkload"); squash all whitespace before matching.
    help_text = re.sub(r"\s+", "", build_parser().format_help())
    return [
        f"bench --help does not mention experiment {verb!r}"
        for verb in sorted(EXPERIMENTS)
        if verb not in help_text
    ]


def main() -> int:
    problems = check_links() + check_bench_docs() + check_cli_help()
    for problem in problems:
        print(f"docs-check: {problem}", file=sys.stderr)
    if problems:
        print(f"docs-check: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print("docs-check: README/docs links, BENCH.md verbs, and CLI help all consistent")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
