"""Baseline file: pre-existing findings that do not block CI.

The baseline is a committed JSON file holding a sorted list of finding
*fingerprints* (line-number-free, so unrelated edits do not invalidate
entries).  A run partitions findings into:

* **new** — findings whose fingerprint is not covered by the baseline
  (fail the run; fix them or, for sanctioned cases, pragma them),
* **baselined** — covered findings (reported, never failing),
* **stale** — baseline entries matching no current finding (fail the
  run: the baseline must stay *exact*, so it can only ever shrink —
  run ``--update-baseline`` after fixing a baselined finding).

Fingerprints are matched as a multiset: two identical violations in the
same function need two baseline entries.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from .core import Finding

__all__ = ["Baseline", "BaselineDiff"]


@dataclass
class BaselineDiff:
    """Findings partitioned against a baseline."""

    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale: list[str] = field(default_factory=list)

    @property
    def blocking(self) -> bool:
        return bool(self.new or self.stale)


class Baseline:
    """A multiset of accepted finding fingerprints."""

    VERSION = 1

    def __init__(self, fingerprints: list[str] | None = None) -> None:
        self.fingerprints = sorted(fingerprints or [])

    @classmethod
    def load(cls, path: Path | str) -> "Baseline":
        path = Path(path)
        if not path.is_file():
            return cls([])
        data = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(data, dict) or "fingerprints" not in data:
            raise ValueError(f"{path}: not a quasii-lint baseline file")
        return cls(list(data["fingerprints"]))

    def save(self, path: Path | str) -> None:
        payload = {
            "format": "quasii-lint-baseline",
            "version": self.VERSION,
            "fingerprints": self.fingerprints,
        }
        Path(path).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        return cls([finding.fingerprint for finding in findings])

    def diff(self, findings: list[Finding]) -> BaselineDiff:
        """Partition ``findings``; multiset semantics per fingerprint."""
        remaining = Counter(self.fingerprints)
        diff = BaselineDiff()
        for finding in findings:
            if remaining[finding.fingerprint] > 0:
                remaining[finding.fingerprint] -= 1
                diff.baselined.append(finding)
            else:
                diff.new.append(finding)
        diff.stale = sorted(remaining.elements())
        return diff
