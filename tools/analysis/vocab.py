"""Load the live telemetry vocabulary for QL005.

The canonical names live in the engine itself
(``repro.telemetry.naming.METRICS``/``SPANS`` and
``repro.telemetry.events.EVENTS``), so the lint imports them rather
than re-parsing — the vocabulary the rule enforces is by construction
the one ``tools/check_docs.py`` already proves matches the docs.
Registry-backed tracers also auto-create one ``span.<name>`` histogram
per span, so those derived names are part of the vocabulary too.
"""

from __future__ import annotations

import sys
from pathlib import Path

__all__ = ["load_repo_vocab"]


def load_repo_vocab(repo_root: Path | str) -> frozenset[str]:
    """The canonical metric/span/event name set of this repository."""
    src = str(Path(repo_root) / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    from repro.telemetry.events import EVENTS
    from repro.telemetry.naming import METRICS, SPANS

    derived = {f"span.{name}" for name in SPANS}
    return frozenset(METRICS) | frozenset(SPANS) | frozenset(EVENTS) | derived
