"""QL002: compaction discipline.

``BoxStore.compact()`` is the one mutation that invalidates physical
row positions; it returns an old->new remap that every index holding
derived state must absorb via ``on_compaction``/``_on_compaction``.
An index subclass that keeps *any* instance state beyond the bookkeeping
the base class owns (``stats``, ``_built``, ``_seen_epoch``, ...) is
presumed to hold positions (row vectors, CSR arrays, slice ranges,
cached candidate buffers) and must either override a compaction hook —
its own or a repo-local ancestor's — or carry an explicit
``# ql: allow[QL002]`` pragma documenting why the raising base default
is its contract (an index that genuinely cannot absorb compactions,
e.g. Mosaic, fails loudly by design).
"""

from __future__ import annotations

from ..core import AnalysisConfig, ClassInfo, Finding, RepoIndex
from . import register


@register
class CompactionDiscipline:
    id = "QL002"
    title = "stateful index subclasses override on_compaction"

    def run(
        self, index: RepoIndex, config: AnalysisConfig
    ) -> list[Finding]:
        findings: list[Finding] = []
        base = config.compaction_base
        for cls in index.classes:
            if cls.name == base:
                continue
            ancestry = index.ancestry(cls)
            if base not in ancestry:
                continue
            state = cls.own_attrs - config.compaction_state_ok
            if not state:
                continue
            if self._overrides_hook(index, cls, config):
                continue
            findings.append(
                Finding(
                    rule=self.id,
                    path=cls.file.rel,
                    line=cls.node.lineno,
                    col=cls.node.col_offset,
                    symbol=cls.symbol,
                    message=(
                        f"{cls.name} stores instance state "
                        f"({', '.join(sorted(state)[:4])}, ...) but never "
                        "overrides on_compaction/_on_compaction; row "
                        "positions held across a store compaction go "
                        "stale silently"
                    ),
                    tag=cls.name,
                )
            )
        return findings

    def _overrides_hook(
        self, index: RepoIndex, cls: ClassInfo, config: AnalysisConfig
    ) -> bool:
        """The class or a repo-local non-root ancestor defines a hook."""
        queue = [cls]
        seen: set[str] = set()
        while queue:
            current = queue.pop()
            if current.name in seen:
                continue
            seen.add(current.name)
            if current.name in (config.compaction_base, "MutableSpatialIndex"):
                continue  # the raising default does not count
            if config.compaction_hooks & current.methods.keys():
                return True
            for name in current.bases:
                queue.extend(index.classes_by_name.get(name, []))
        return False
