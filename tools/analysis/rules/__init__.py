"""The pluggable rule registry.

Each rule is a class with an ``id`` (``QLnnn``), a one-line ``title``,
and a ``run(index, config) -> list[Finding]`` method.  :data:`RULES`
maps id -> rule class; ``docs/ANALYSIS.md``'s rule table is checked
against it in both directions by ``tools/check_docs.py``, so a rule
cannot ship undocumented and a doc row cannot go stale.

Adding a rule: drop a module here, decorate the class with
:func:`register`, document it in docs/ANALYSIS.md, and give it a
fixture test in ``tests/unit/test_quasii_lint.py`` proving it fires.
"""

from __future__ import annotations

from typing import Protocol

from ..core import AnalysisConfig, Finding, RepoIndex

__all__ = ["RULES", "Rule", "all_rules", "register"]


class Rule(Protocol):
    id: str
    title: str

    def run(
        self, index: RepoIndex, config: AnalysisConfig
    ) -> list[Finding]: ...


RULES: dict[str, type] = {}


def register(rule_cls: type) -> type:
    """Class decorator adding a rule to :data:`RULES` (id collision raises)."""
    rule_id = rule_cls.id
    if rule_id in RULES:
        raise ValueError(f"duplicate rule id {rule_id!r}")
    RULES[rule_id] = rule_cls
    return rule_cls


def all_rules() -> list[Rule]:
    """One instance of every registered rule, in id order."""
    return [RULES[rule_id]() for rule_id in sorted(RULES)]


# Importing the modules populates the registry.
from . import ql001, ql002, ql003, ql004, ql005, ql006, ql007, ql008  # noqa: E402,F401
