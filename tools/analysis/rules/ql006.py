"""QL006: exception discipline.

A bare ``except:`` or ``except Exception:`` swallows programming errors
(``TypeError``, ``AttributeError``) along with the library's own
:class:`ReproError` hierarchy, turning a bug into silent data loss.
The repo's exception hierarchy exists precisely so call sites can catch
``ReproError`` (or a specific subclass) and let everything else
propagate.  The one sanctioned broad except is the metrics server's
documented never-die serving loop (``telemetry/server.py``), which
carries an inline ``# ql: allow[QL006]`` pragma — any new broad except
needs the same explicit, reviewable opt-out.
"""

from __future__ import annotations

import ast

from ..core import AnalysisConfig, Finding, RepoIndex
from . import register


@register
class ExceptionDiscipline:
    id = "QL006"
    title = "no bare or over-broad except clauses"

    def run(
        self, index: RepoIndex, config: AnalysisConfig
    ) -> list[Finding]:
        findings: list[Finding] = []
        for source in index.files:
            # Map handlers to their tightest enclosing function for a
            # stable fingerprint symbol.
            symbol_of = {}
            for node in ast.walk(source.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    for child in ast.walk(node):
                        if isinstance(child, ast.ExceptHandler):
                            symbol_of[id(child)] = node.name
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                broad = self._broad_name(node.type, config)
                if broad is None:
                    continue
                scope = symbol_of.get(id(node), "")
                findings.append(
                    Finding(
                        rule=self.id,
                        path=source.rel,
                        line=node.lineno,
                        col=node.col_offset,
                        symbol=f"{source.module}:{scope}",
                        message=(
                            f"over-broad 'except {broad}'; catch the "
                            "specific ReproError subclass (or re-raise "
                            "with context), or pragma the documented "
                            "never-die loops"
                        ),
                        tag=f"{scope}:except-{broad}",
                    )
                )
        return findings

    @staticmethod
    def _broad_name(
        type_node: ast.expr | None, config: AnalysisConfig
    ) -> str | None:
        if type_node is None:
            return "<bare>"
        candidates = (
            type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
        )
        for candidate in candidates:
            if (
                isinstance(candidate, ast.Name)
                and candidate.id in config.broad_exceptions
            ):
                return candidate.id
        return None
