"""QL005: telemetry vocabulary discipline.

``tools/check_docs.py`` already proves that the *vocabulary*
(``telemetry/naming.py``'s METRICS/SPANS, ``events.py``'s EVENTS) and
``docs/OBSERVABILITY.md`` agree — but it cannot see the code->vocabulary
direction: an instrumentation site spelling a string literal inline
(``registry.histogram("query.sceonds")``) would silently create an
undocumented, misspelled metric.  This rule closes that direction:
every *string literal* passed as the name argument of a
``histogram()``/``counter()``/``gauge()``/``span()``/``emit()`` call
must be a canonical name.  Non-literal arguments (the ``naming.py``
constants, ``stats_metric(...)``, f-strings) are the sanctioned
spelling and pass untouched.
"""

from __future__ import annotations

import ast

from ..core import AnalysisConfig, Finding, RepoIndex
from . import register


@register
class TelemetryVocabulary:
    id = "QL005"
    title = "telemetry name literals come from the canonical vocabulary"

    def run(
        self, index: RepoIndex, config: AnalysisConfig
    ) -> list[Finding]:
        if config.vocab is None:
            return []
        findings: list[Finding] = []
        for source in index.files:
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not (
                    isinstance(func, ast.Attribute)
                    and func.attr in config.vocab_calls
                ):
                    continue
                if not node.args:
                    continue
                first = node.args[0]
                if not (
                    isinstance(first, ast.Constant)
                    and isinstance(first.value, str)
                ):
                    continue
                if first.value in config.vocab:
                    continue
                findings.append(
                    Finding(
                        rule=self.id,
                        path=source.rel,
                        line=node.lineno,
                        col=node.col_offset,
                        symbol=f"{source.module}:",
                        message=(
                            f".{func.attr}({first.value!r}) uses a name "
                            "outside the canonical telemetry vocabulary "
                            "(telemetry/naming.py METRICS/SPANS, "
                            "events.py EVENTS); add it there (and to "
                            "docs/OBSERVABILITY.md) or import the "
                            "existing constant"
                        ),
                        tag=f"{func.attr}:{first.value}",
                    )
                )
        return findings
