"""QL007: export discipline.

The typed public surface (``py.typed``) is only explicit if every
package ``__init__.py`` says what it exports: every name imported at
the top level of an ``__init__.py`` must appear in ``__all__`` (or be
underscore-private), and every ``__all__`` entry must actually be
imported or defined there.  Without this, ``from repro.x import *``
and static importers (mypy's ``implicit_reexport = False`` under
strict mode) disagree with the human-visible API.
"""

from __future__ import annotations

import ast

from ..core import AnalysisConfig, Finding, RepoIndex
from . import register


@register
class ExportDiscipline:
    id = "QL007"
    title = "package __init__ exports match __all__ both ways"

    def run(
        self, index: RepoIndex, config: AnalysisConfig
    ) -> list[Finding]:
        findings: list[Finding] = []
        for source in index.files:
            if not source.rel.endswith("__init__.py"):
                continue
            imported: dict[str, int] = {}
            defined: dict[str, int] = {}
            dunder_all: list[str] | None = None
            all_lineno = 1
            for node in source.tree.body:
                if isinstance(node, (ast.Import, ast.ImportFrom)):
                    if (
                        isinstance(node, ast.ImportFrom)
                        and node.module == "__future__"
                    ):
                        continue
                    for alias in node.names:
                        name = alias.asname or alias.name.split(".")[0]
                        imported[name] = node.lineno
                elif isinstance(node, (ast.FunctionDef, ast.ClassDef)):
                    defined[node.name] = node.lineno
                elif isinstance(node, ast.Assign):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            if target.id == "__all__":
                                dunder_all = _literal_strings(node.value)
                                all_lineno = node.lineno
                            else:
                                defined[target.id] = node.lineno
            if not imported and not defined:
                continue  # empty namespace __init__
            if dunder_all is None:
                findings.append(
                    Finding(
                        rule=self.id,
                        path=source.rel,
                        line=1,
                        col=0,
                        symbol=f"{source.module}:",
                        message=(
                            "package __init__ imports names but defines "
                            "no __all__; the public surface is implicit"
                        ),
                        tag="missing-__all__",
                    )
                )
                continue
            exported = set(dunder_all)
            available = {**imported, **defined}
            public = {
                name: line
                for name, line in available.items()
                if not name.startswith("_")
            }
            for name in sorted(set(public) - exported):
                findings.append(
                    Finding(
                        rule=self.id,
                        path=source.rel,
                        line=public[name],
                        col=0,
                        symbol=f"{source.module}:",
                        message=(
                            f"{name!r} is imported/defined at package "
                            "level but missing from __all__"
                        ),
                        tag=f"unexported:{name}",
                    )
                )
            for name in sorted(exported - set(available)):
                findings.append(
                    Finding(
                        rule=self.id,
                        path=source.rel,
                        line=all_lineno,
                        col=0,
                        symbol=f"{source.module}:",
                        message=(
                            f"__all__ lists {name!r} which is neither "
                            "imported nor defined in the __init__"
                        ),
                        tag=f"phantom:{name}",
                    )
                )
        return findings


def _literal_strings(node: ast.expr) -> list[str]:
    if isinstance(node, (ast.List, ast.Tuple)):
        return [
            element.value
            for element in node.elts
            if isinstance(element, ast.Constant)
            and isinstance(element.value, str)
        ]
    return []
