"""QL008: process-boundary payloads picklable by construction.

Everything the parallel tier pushes through a pipe is pickled, and
pickling failures are the worst kind of bug: they surface at dispatch
time, in a worker-facing traceback, far from the line that introduced
the unpicklable object.  Two statically checkable disciplines keep the
boundary safe:

* **No lambdas (or generator expressions) inside a boundary send.**
  Within the parallel package, any ``.send(...)`` argument containing
  an ``ast.Lambda`` or generator expression is a payload that cannot
  pickle.  Named module-level functions are fine (pickle ships them by
  qualified name); closures and lambdas are not.
* **Payload classes carry data, not resources.**  The configured
  payload classes (wire structures, segment specs, the shipped
  histograms) may not self-assign lambdas or the products of
  unpicklable constructors — locks, queues, threads, pools, open file
  handles, shared-memory mappings.  A payload class that grows a
  ``self._lock = threading.Lock()`` would pickle on 3.8-era protocols
  never, and on no protocol meaningfully.

The allowlists live in :class:`~analysis.core.AnalysisConfig`
(``boundary_package``, ``boundary_send_methods``,
``boundary_payload_classes``, ``unpicklable_constructors``); see
docs/ANALYSIS.md.
"""

from __future__ import annotations

import ast

from ..core import AnalysisConfig, Finding, RepoIndex
from . import register


def _callee_name(node: ast.expr) -> str | None:
    """Last dotted segment of a call target (``threading.Lock`` -> Lock)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _in_boundary(module: str, package: str) -> bool:
    return module == package or module.startswith(package + ".")


@register
class ProcessBoundaryPayloads:
    id = "QL008"
    title = "process-boundary payloads are picklable by construction"

    def run(
        self, index: RepoIndex, config: AnalysisConfig
    ) -> list[Finding]:
        findings: list[Finding] = []
        findings.extend(self._check_sends(index, config))
        findings.extend(self._check_payload_classes(index, config))
        return findings

    # -- sends ----------------------------------------------------------
    def _check_sends(
        self, index: RepoIndex, config: AnalysisConfig
    ) -> list[Finding]:
        findings: list[Finding] = []
        for fn in index.functions:
            if not _in_boundary(fn.file.module, config.boundary_package):
                continue
            for node in ast.walk(fn.node):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in config.boundary_send_methods
                ):
                    continue
                for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                    for sub in ast.walk(arg):
                        if isinstance(sub, ast.Lambda):
                            kind = "lambda"
                        elif isinstance(sub, ast.GeneratorExp):
                            kind = "generator"
                        else:
                            continue
                        findings.append(
                            Finding(
                                rule=self.id,
                                path=fn.file.rel,
                                line=sub.lineno,
                                col=sub.col_offset,
                                symbol=fn.symbol,
                                message=(
                                    f"a {kind} inside a boundary "
                                    f".{node.func.attr}(...) cannot "
                                    "pickle; ship data or a module-"
                                    "level callable instead"
                                ),
                                tag=f"{kind}-in-send",
                            )
                        )
        return findings

    # -- payload classes ------------------------------------------------
    def _check_payload_classes(
        self, index: RepoIndex, config: AnalysisConfig
    ) -> list[Finding]:
        findings: list[Finding] = []
        for cls in index.classes:
            if cls.name not in config.boundary_payload_classes:
                continue
            for method in cls.methods.values():
                for node in ast.walk(method.node):
                    value = self._self_assigned_value(node)
                    if value is None:
                        continue
                    if isinstance(value, ast.Lambda):
                        findings.append(
                            Finding(
                                rule=self.id,
                                path=cls.file.rel,
                                line=value.lineno,
                                col=value.col_offset,
                                symbol=method.symbol,
                                message=(
                                    f"payload class {cls.name} stores a "
                                    "lambda on self; it cannot cross "
                                    "the process boundary"
                                ),
                                tag="lambda-attr",
                            )
                        )
                        continue
                    callee = (
                        _callee_name(value.func)
                        if isinstance(value, ast.Call)
                        else None
                    )
                    if callee in config.unpicklable_constructors:
                        findings.append(
                            Finding(
                                rule=self.id,
                                path=cls.file.rel,
                                line=value.lineno,
                                col=value.col_offset,
                                symbol=method.symbol,
                                message=(
                                    f"payload class {cls.name} stores "
                                    f"{callee}() on self; the resource "
                                    "cannot cross the process boundary"
                                ),
                                tag=f"resource-attr:{callee}",
                            )
                        )
        return findings

    @staticmethod
    def _self_assigned_value(node: ast.AST) -> ast.expr | None:
        """The value of a ``self.X = ...`` assignment, else ``None``.

        Covers plain/annotated assignment plus the frozen-dataclass
        idiom ``object.__setattr__(self, "attr", value)``.
        """
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = list(node.targets), node.value
        elif isinstance(node, ast.AnnAssign):
            targets, value = [node.target], node.value
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "__setattr__"
            and len(node.args) >= 3
            and isinstance(node.args[0], ast.Name)
            and node.args[0].id == "self"
        ):
            return node.args[2]
        if value is None:
            return None
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                return value
        return None
