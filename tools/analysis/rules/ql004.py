"""QL004: dtype discipline.

Every ``np.zeros/empty/full/array`` allocation must pass an explicit
``dtype=``.  Default dtypes are platform- and input-dependent —
``np.array([ids...])`` silently yields float64 above 2**53 and collides
identifiers (the int64 fingerprint bug of PR 3), int defaults differ
between Windows and Linux, and an unintended float64 doubles memory on
index-position arrays.  Spelling the dtype is free and makes the
contract reviewable at the call site.
"""

from __future__ import annotations

import ast

from ..core import AnalysisConfig, Finding, RepoIndex
from . import register


@register
class DtypeDiscipline:
    id = "QL004"
    title = "numpy allocations pass an explicit dtype"

    def run(
        self, index: RepoIndex, config: AnalysisConfig
    ) -> list[Finding]:
        findings: list[Finding] = []
        for source in index.files:
            module_symbol = f"{source.module}:"
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not (
                    isinstance(func, ast.Attribute)
                    and func.attr in config.numpy_allocators
                    and isinstance(func.value, ast.Name)
                    and func.value.id in config.numpy_aliases
                ):
                    continue
                if any(kw.arg == "dtype" for kw in node.keywords):
                    continue
                # Positional dtype: 2nd arg for array/zeros/empty,
                # 3rd for full (shape, fill_value, dtype).
                dtype_position = 3 if func.attr == "full" else 2
                if len(node.args) >= dtype_position:
                    continue
                findings.append(
                    Finding(
                        rule=self.id,
                        path=source.rel,
                        line=node.lineno,
                        col=node.col_offset,
                        symbol=module_symbol,
                        message=(
                            f"np.{func.attr}(...) without an explicit "
                            "dtype=; default dtypes are input- and "
                            "platform-dependent"
                        ),
                        tag=f"np.{func.attr}@{_context_snippet(node)}",
                    )
                )
        return findings


def _context_snippet(node: ast.Call) -> str:
    """A short, line-number-free identity for the call site."""
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        text = "<call>"
    return text[:60]
