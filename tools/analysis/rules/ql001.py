"""QL001: BoxStore mutation discipline.

The store supports exactly four mutations (permute, append, tombstone
delete, compact) and every index/test invariant is phrased against
them.  Code that reaches into the store's private arrays (``_lo``,
``_live``, ``_epoch``, ...) from outside the :class:`BoxStore` class
can silently break the live-multiset invariant, skip the epoch bump,
or desynchronize ``_n_dead`` — so those attributes may only be touched
inside the store's own methods.  Everything else goes through the
public views (``store.lo``/``store.live``) and the verb methods.

A class other than the store may own a same-named attribute of its own
(``QuasiiIndex`` keeps a ``self._max_extent``); ``self.X`` accesses are
therefore exempt when the enclosing class itself assigns ``X``.
"""

from __future__ import annotations

import ast

from ..core import AnalysisConfig, Finding, RepoIndex
from . import register


@register
class MutationDiscipline:
    id = "QL001"
    title = "private BoxStore state is only touched inside the store"

    def run(
        self, index: RepoIndex, config: AnalysisConfig
    ) -> list[Finding]:
        findings: list[Finding] = []
        for fn in index.functions:
            cls = fn.cls
            if cls is not None and cls.name == config.store_class:
                continue
            own = cls.own_attrs if cls is not None else set()
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Attribute):
                    continue
                if node.attr not in config.store_private_attrs:
                    continue
                base = node.value
                if (
                    isinstance(base, ast.Name)
                    and base.id == "self"
                    and node.attr in own
                ):
                    continue  # the class's own same-named attribute
                findings.append(
                    Finding(
                        rule=self.id,
                        path=fn.file.rel,
                        line=node.lineno,
                        col=node.col_offset,
                        symbol=fn.symbol,
                        message=(
                            f"private {config.store_class} state "
                            f"'.{node.attr}' accessed outside the store; "
                            "use the public views or the "
                            "append/delete_ids/compact/apply_order verbs"
                        ),
                        tag=f"{ast.unparse(base)}.{node.attr}",
                    )
                )
        return findings
