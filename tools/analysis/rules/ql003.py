"""QL003: parallel-path purity.

``QueryExecutor._run_parallel`` fans a batch out on a thread pool; the
``work()`` closure is the only code that runs off the coordinating
thread.  The concurrency discipline that keeps this safe is
*single-writer*: a shard's index/store/buffer state is touched by at
most one worker per batch (shard affinity), coordinator-owned state
(profiles, schedulers, stats merging) is only mutated on the
coordinating thread, and anything genuinely shared across workers must
hold a lock (today only ``EventLog`` does).

This rule machine-checks the worker side of that contract: it walks a
name-based over-approximation of the call graph rooted at ``work()``
and flags any reachable *method* of a non-shard-affine class that
assigns ``self.*`` state outside a ``with <lock>:`` block.  The
shard-affine sets in :class:`AnalysisConfig` (``affine_roots`` /
``affine_classes``) are the discipline's explicit allowlist — extending
them is a reviewed statement that the executor guarantees
single-threaded access to that class's instances.
"""

from __future__ import annotations

import ast

from ..core import (
    AnalysisConfig,
    Finding,
    FunctionInfo,
    RepoIndex,
    iter_with_stack,
    lock_guarded,
)
from . import register


@register
class ParallelPurity:
    id = "QL003"
    title = "the parallel work() path only mutates lock-guarded or shard-affine state"

    def run(
        self, index: RepoIndex, config: AnalysisConfig
    ) -> list[Finding]:
        seeds = [
            fn
            for fn in index.functions
            if fn.name == config.parallel_worker
            and f".{config.parallel_method}." in f".{fn.qualname}."
        ]
        if not seeds:
            return []
        reachable = self._reachable(index, seeds)
        findings: list[Finding] = []
        for fn in reachable:
            cls = fn.cls
            if cls is None:
                continue  # plain functions have no self state
            if cls.name in config.affine_classes or index.has_ancestor(
                cls, config.affine_roots
            ):
                continue
            for node, stack in iter_with_stack(fn.node):
                targets: list[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = [node.target]
                for target in targets:
                    attr = _self_rooted_attr(target)
                    if attr is None or lock_guarded(stack):
                        continue
                    findings.append(
                        Finding(
                            rule=self.id,
                            path=fn.file.rel,
                            line=node.lineno,
                            col=node.col_offset,
                            symbol=fn.symbol,
                            message=(
                                f"{cls.name}.{fn.name} is reachable from "
                                "the parallel work() path and assigns "
                                f"self.{attr} without a lock; shared state "
                                "on the fan-out path must be lock-guarded "
                                "or the class allowlisted as shard-affine"
                            ),
                            tag=f"{cls.name}.{fn.name}.{attr}",
                        )
                    )
        return findings

    def _reachable(
        self, index: RepoIndex, seeds: list[FunctionInfo]
    ) -> list[FunctionInfo]:
        """Name-resolved transitive closure of calls from the seeds.

        ``x.m(...)`` resolves to every repo method *and* module function
        named ``m``; ``f(...)`` to every module function named ``f``.
        A deliberate over-approximation: soundness beats precision here,
        and false reach only matters if the falsely-reached method also
        mutates unguarded shared state — which is exactly what a human
        should then look at.
        """
        queue = list(seeds)
        visited: dict[int, FunctionInfo] = {id(fn.node): fn for fn in seeds}
        while queue:
            fn = queue.pop()
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                callee = node.func
                targets: list[FunctionInfo] = []
                if isinstance(callee, ast.Attribute):
                    targets = index.methods_by_name.get(callee.attr, [])
                    targets = targets + index.module_functions_by_name.get(
                        callee.attr, []
                    )
                elif isinstance(callee, ast.Name):
                    targets = index.module_functions_by_name.get(callee.id, [])
                for target in targets:
                    if id(target.node) not in visited:
                        visited[id(target.node)] = target
                        queue.append(target)
        return list(visited.values())


def _self_rooted_attr(target: ast.expr) -> str | None:
    """``self.x`` / ``self.a.b`` / ``self.x[i]`` -> outermost attr name."""
    node = target
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        parent = node.value
        if isinstance(node, ast.Attribute) and isinstance(parent, ast.Name):
            if parent.id == "self":
                return node.attr
            return None
        node = parent
    return None
