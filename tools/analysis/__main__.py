"""``python -m tools.analysis`` entry point for quasii-lint."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
