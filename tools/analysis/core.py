"""Analysis substrate: source loading, the repo index, findings, pragmas.

Everything here is rule-agnostic.  A :class:`RepoIndex` is built once
per run by parsing every ``*.py`` under the scan root with :mod:`ast`
and recording, per module: classes (with their bases, methods, and the
instance attributes their methods assign), module-level functions, and
nested functions (closures) with their full qualname chain.  Rules
receive the index plus an :class:`AnalysisConfig` and return
:class:`Finding` lists; :func:`analyze` applies inline-pragma
suppression and returns the surviving findings sorted by location.

Fingerprints deliberately exclude line numbers — a baseline entry must
survive unrelated edits above the finding — and are matched as a
*multiset* (two identical violations in one function need two baseline
entries).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "AnalysisConfig",
    "ClassInfo",
    "FunctionInfo",
    "Finding",
    "RepoIndex",
    "SourceFile",
    "analyze",
    "iter_with_stack",
    "lock_guarded",
    "self_assign_targets",
]

#: Inline suppression: ``# ql: allow[QL004]`` or ``# ql: allow[QL001, QL003]``
#: or ``# ql: allow[*]``; anywhere on the flagged line.
_PRAGMA = re.compile(r"#\s*ql:\s*allow\[([A-Za-z0-9_*,\s]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # scan-root-relative posix path
    line: int
    col: int
    symbol: str  # "module:Class.method" context ("" at module level)
    message: str
    tag: str  # stable detail key; part of the fingerprint

    @property
    def fingerprint(self) -> str:
        """Line-number-free identity used by the baseline file."""
        return f"{self.rule}|{self.path}|{self.symbol}|{self.tag}"

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


@dataclass
class SourceFile:
    """One parsed module."""

    path: Path
    rel: str  # posix path relative to the scan root
    module: str  # dotted module name relative to the scan root
    text: str
    tree: ast.Module
    #: line number -> rule ids allowed there ("*" allows everything).
    pragmas: dict[int, set[str]] = field(default_factory=dict)

    def allows(self, line: int, rule_id: str) -> bool:
        allowed = self.pragmas.get(line)
        return bool(allowed) and (rule_id in allowed or "*" in allowed)


@dataclass
class FunctionInfo:
    """A function or method definition (nested functions included)."""

    name: str
    qualname: str  # e.g. "QueryExecutor._run_parallel.work"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    file: SourceFile
    cls: "ClassInfo | None" = None  # owning class for methods

    @property
    def symbol(self) -> str:
        return f"{self.file.module}:{self.qualname}"


@dataclass
class ClassInfo:
    """A class definition plus what rules need to know about it."""

    name: str
    qualname: str
    node: ast.ClassDef
    file: SourceFile
    bases: list[str] = field(default_factory=list)  # last dotted segment
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: Instance attributes assigned via ``self.X = ...`` in any method.
    own_attrs: set[str] = field(default_factory=set)

    @property
    def symbol(self) -> str:
        return f"{self.file.module}:{self.qualname}"


@dataclass(frozen=True)
class AnalysisConfig:
    """Repo-specific knowledge the rules run against.

    The defaults describe ``src/repro``; fixture tests override fields
    to build minimal violating worlds.  Every allowlist here is a
    *documented discipline statement*, not a convenience: QL003's
    ``affine`` sets, for instance, are exactly the classes whose
    instances the executor guarantees are touched by a single thread
    per batch (see docs/ANALYSIS.md).
    """

    # QL001 -- mutation discipline
    store_class: str = "BoxStore"
    store_private_attrs: frozenset[str] = frozenset(
        {
            "_lo",
            "_hi",
            "_ids",
            "_live",
            "_n_dead",
            "_epoch",
            "_max_extent",
            "_next_id",
            "_staged",
        }
    )
    # QL002 -- compaction discipline
    compaction_base: str = "SpatialIndex"
    compaction_hooks: frozenset[str] = frozenset(
        {"on_compaction", "_on_compaction"}
    )
    #: Instance attrs that do not constitute position-bearing state.
    compaction_state_ok: frozenset[str] = frozenset(
        {"stats", "build_work", "name", "_built", "_seen_epoch", "_store"}
    )
    # QL003 -- parallel-path purity
    parallel_method: str = "_run_parallel"
    parallel_worker: str = "work"
    #: Class-ancestry roots whose instances are shard-affine (touched by
    #: at most one worker thread per batch, by executor construction).
    affine_roots: frozenset[str] = frozenset(
        {"SpatialIndex", "BoxStore", "UpdateBuffer", "Partitioner"}
    )
    #: Additional single-writer classes: per-shard owned structures
    #: (Slice forests, R-Tree nodes) or coordinator-only state that the
    #: executor mutates exclusively on the routing/merging thread
    #: (profiles, partitioner cursors, the telemetry histograms the
    #: coordinator records after joining the pool).  Extending this set
    #: is a reviewed concurrency-discipline statement — see
    #: docs/ANALYSIS.md.
    affine_classes: frozenset[str] = frozenset(
        {
            "Slice",
            "SliceList",
            "Shard",
            "IndexStats",
            "WorkloadProfile",
            "GuttmanRTree",
            "RTreeNode",
            "LatencyHistogram",
            # Replication tier (replica-local state): a shard's replica
            # set — including the replica picked to serve a batch — is
            # touched by exactly one worker per batch (shard affinity
            # extends through Shard.serving_index), and the fault
            # injector/ledger only tick on the coordinating thread's
            # routing/write path.
            "ReplicatedShard",
            "ReplicaSet",
            "ShardReplica",
            "FaultInjector",
            "UpdateLedger",
        }
    )
    # QL004 -- dtype discipline
    numpy_aliases: frozenset[str] = frozenset({"np", "numpy"})
    numpy_allocators: frozenset[str] = frozenset(
        {"zeros", "empty", "full", "array"}
    )
    # QL005 -- telemetry vocabulary
    vocab_calls: frozenset[str] = frozenset(
        {"histogram", "counter", "gauge", "span", "emit"}
    )
    #: Canonical metric/span/event names; ``None`` skips QL005 (the CLI
    #: always supplies the live vocabulary via :mod:`analysis.vocab`).
    vocab: frozenset[str] | None = None
    # QL006 -- exception discipline
    broad_exceptions: frozenset[str] = frozenset(
        {"Exception", "BaseException"}
    )
    # QL008 -- process-boundary payload discipline
    #: Modules (dotted, relative to the scan root) whose pipe traffic is
    #: a process boundary: the package prefix matches the whole package.
    boundary_package: str = "parallel"
    #: Method names that ship a payload across the boundary.
    boundary_send_methods: frozenset[str] = frozenset({"send"})
    #: Classes whose instances cross the boundary (pickled).  These may
    #: not hold lambdas or handle-bearing resources, wherever they are
    #: defined — LatencyHistogram lives in telemetry but rides the wire.
    boundary_payload_classes: frozenset[str] = frozenset(
        {
            "SegmentSpec",
            "QueryBatchWire",
            "ResultBatchWire",
            "LatencyHistogram",
        }
    )
    #: Constructors whose products never survive pickling (or smuggle a
    #: live OS resource through it): locks and friends, queues, threads,
    #: pools, open file handles, shared-memory mappings.
    unpicklable_constructors: frozenset[str] = frozenset(
        {
            "Lock",
            "RLock",
            "Semaphore",
            "BoundedSemaphore",
            "Condition",
            "Event",
            "Barrier",
            "Queue",
            "SimpleQueue",
            "Thread",
            "ThreadPoolExecutor",
            "ProcessPoolExecutor",
            "Pipe",
            "open",
            "SharedMemory",
        }
    )

    def with_vocab(self, names: Iterable[str]) -> "AnalysisConfig":
        return replace(self, vocab=frozenset(names))


# ---------------------------------------------------------------------------
# Index construction
# ---------------------------------------------------------------------------
class RepoIndex:
    """Parsed view of every module under one scan root."""

    def __init__(self, root: Path, files: list[SourceFile]) -> None:
        self.root = root
        self.files = files
        self.classes: list[ClassInfo] = []
        self.classes_by_name: dict[str, list[ClassInfo]] = {}
        self.functions: list[FunctionInfo] = []
        self.module_functions_by_name: dict[str, list[FunctionInfo]] = {}
        self.methods_by_name: dict[str, list[FunctionInfo]] = {}
        for source in files:
            self._index_file(source)

    # -- construction ---------------------------------------------------
    @classmethod
    def build(cls, root: Path) -> "RepoIndex":
        root = Path(root).resolve()
        files = []
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root).as_posix()
            text = path.read_text(encoding="utf-8")
            try:
                tree = ast.parse(text, filename=str(path))
            except SyntaxError as exc:  # unparseable file is itself a defect
                raise SyntaxError(f"{rel}: {exc}") from exc
            module = rel[:-3].replace("/", ".")
            if module.endswith(".__init__"):
                module = module[: -len(".__init__")]
            source = SourceFile(
                path=path, rel=rel, module=module, text=text, tree=tree
            )
            for lineno, line in enumerate(text.splitlines(), start=1):
                match = _PRAGMA.search(line)
                if match:
                    ids = {
                        part.strip()
                        for part in match.group(1).split(",")
                        if part.strip()
                    }
                    source.pragmas[lineno] = ids
            files.append(source)
        return cls(root, files)

    def _index_file(self, source: SourceFile) -> None:
        def visit(node: ast.AST, qual: list[str], cls: ClassInfo | None) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    info = ClassInfo(
                        name=child.name,
                        qualname=".".join([*qual, child.name]),
                        node=child,
                        file=source,
                        bases=[_last_segment(b) for b in child.bases],
                    )
                    self.classes.append(info)
                    self.classes_by_name.setdefault(child.name, []).append(info)
                    visit(child, [*qual, child.name], info)
                elif isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    owner = cls if isinstance(node, ast.ClassDef) else None
                    fn = FunctionInfo(
                        name=child.name,
                        qualname=".".join([*qual, child.name]),
                        node=child,
                        file=source,
                        cls=owner,
                    )
                    self.functions.append(fn)
                    if owner is not None:
                        owner.methods.setdefault(child.name, fn)
                        owner.own_attrs.update(self_assign_targets(child))
                        self.methods_by_name.setdefault(
                            child.name, []
                        ).append(fn)
                    else:
                        self.module_functions_by_name.setdefault(
                            child.name, []
                        ).append(fn)
                    # Functions nested inside this one keep the chain but
                    # never belong to the class namespace.
                    visit(child, [*qual, child.name], None)

        visit(source.tree, [], None)

    # -- class relations ------------------------------------------------
    def ancestry(self, cls: ClassInfo) -> set[str]:
        """Transitive base-class *names*, repo-local where resolvable.

        Unresolvable bases (stdlib, numpy) contribute their name only.
        """
        seen: set[str] = set()
        queue = list(cls.bases)
        while queue:
            base = queue.pop()
            if base in seen:
                continue
            seen.add(base)
            for info in self.classes_by_name.get(base, []):
                queue.extend(info.bases)
        return seen

    def has_ancestor(self, cls: ClassInfo, names: frozenset[str]) -> bool:
        return cls.name in names or bool(self.ancestry(cls) & names)


def _last_segment(node: ast.expr) -> str:
    """``abc.ABC`` -> ``ABC``; ``SpatialIndex`` -> ``SpatialIndex``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Subscript):  # Generic[...] bases
        return _last_segment(node.value)
    return ""


def self_assign_targets(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> set[str]:
    """Attribute names assigned on ``self`` anywhere in ``fn``'s body.

    Covers plain/annotated/augmented assignment plus the frozen-
    dataclass idiom ``object.__setattr__(self, "attr", value)``.
    """
    attrs: set[str] = set()
    for node in ast.walk(fn):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "__setattr__"
                and len(node.args) >= 2
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id == "self"
                and isinstance(node.args[1], ast.Constant)
                and isinstance(node.args[1].value, str)
            ):
                attrs.add(node.args[1].value)
        for target in targets:
            for leaf in _flatten_targets(target):
                if (
                    isinstance(leaf, ast.Attribute)
                    and isinstance(leaf.value, ast.Name)
                    and leaf.value.id == "self"
                ):
                    attrs.add(leaf.attr)
    return attrs


def _flatten_targets(target: ast.expr) -> Iterator[ast.expr]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _flatten_targets(element)
    else:
        yield target


def iter_with_stack(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[tuple[ast.AST, list[ast.With]]]:
    """Yield ``(node, enclosing-with-statements)`` for ``fn``'s body.

    Nested function definitions are traversed too (their ``with`` stacks
    restart, matching runtime scoping closely enough for lock checks).
    """

    def walk(node: ast.AST, stack: list[ast.With]) -> Iterator[
        tuple[ast.AST, list[ast.With]]
    ]:
        for child in ast.iter_child_nodes(node):
            yield child, stack
            if isinstance(child, (ast.With, ast.AsyncWith)):
                yield from walk(child, [*stack, child])  # type: ignore[list-item]
            else:
                yield from walk(child, stack)

    yield from walk(fn, [])


def lock_guarded(stack: list[ast.With]) -> bool:
    """True when any enclosing ``with`` context mentions a lock."""
    for stmt in stack:
        for item in stmt.items:
            for node in ast.walk(item.context_expr):
                if isinstance(node, ast.Attribute) and "lock" in node.attr.lower():
                    return True
                if isinstance(node, ast.Name) and "lock" in node.id.lower():
                    return True
    return False


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------
def analyze(
    root: Path | str,
    config: AnalysisConfig | None = None,
    rules: Iterable[object] | None = None,
) -> list[Finding]:
    """Run rules over every module under ``root``; pragma-suppressed.

    ``rules`` defaults to the full registry.  Findings come back sorted
    by ``(path, line, rule)``.
    """
    from .rules import all_rules

    config = config or AnalysisConfig()
    index = RepoIndex.build(Path(root))
    findings: list[Finding] = []
    by_rel = {source.rel: source for source in index.files}
    for rule in rules if rules is not None else all_rules():
        for finding in rule.run(index, config):
            source = by_rel.get(finding.path)
            if source is not None and source.allows(finding.line, finding.rule):
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.tag))
    return findings
