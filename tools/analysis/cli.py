"""The ``quasii-lint`` command line.

Run from the repository root::

    python -m tools.analysis                 # human report
    python -m tools.analysis --json          # machine-readable report
    python -m tools.analysis --update-baseline

Exit codes: ``0`` clean (baselined findings allowed), ``1`` new
findings or stale baseline entries, ``2`` usage/internal error.  CI
runs the ``--json`` form and uploads the report as an artifact next to
the bench drift table.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

from .baseline import Baseline
from .core import AnalysisConfig, Finding, analyze
from .rules import RULES, all_rules
from .vocab import load_repo_vocab

__all__ = ["main", "mypy_burn_down"]

REPO = Path(__file__).resolve().parents[2]
DEFAULT_ROOT = REPO / "src" / "repro"
DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="quasii-lint",
        description=(
            "AST-based invariant analyzer for the QUASII engine: "
            "mutation/compaction/concurrency discipline, dtype and "
            "telemetry-vocabulary checks (rules QL001..QL007)."
        ),
    )
    parser.add_argument(
        "root",
        nargs="?",
        default=str(DEFAULT_ROOT),
        help="directory tree to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON report on stdout",
    )
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help="baseline file (default: tools/analysis/baseline.json)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: every finding is blocking",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to exactly the current findings",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--no-vocab",
        action="store_true",
        help="skip loading the telemetry vocabulary (disables QL005)",
    )
    return parser


def mypy_burn_down(pyproject: Path) -> list[str]:
    """Modules still on the strict-mypy ignore ladder, from pyproject.

    Parses ``[[tool.mypy.overrides]]`` entries carrying
    ``ignore_errors = true``.  Returns ``[]`` when the file, the
    section, or a TOML parser (stdlib ``tomllib``, 3.11+) is missing —
    the burn-down report is informational, never blocking.
    """
    if not pyproject.is_file():
        return []
    try:
        import tomllib
    except ImportError:  # pragma: no cover - Python 3.10
        return []
    try:
        data = tomllib.loads(pyproject.read_text(encoding="utf-8"))
    except tomllib.TOMLDecodeError:
        return []
    overrides = data.get("tool", {}).get("mypy", {}).get("overrides", [])
    modules: list[str] = []
    for entry in overrides:
        if not entry.get("ignore_errors"):
            continue
        listed = entry.get("module", [])
        if isinstance(listed, str):
            listed = [listed]
        modules.extend(listed)
    return sorted(modules)


def _render_human(
    findings: list[Finding],
    new_fps: set[int],
    stale: list[str],
    ladder: list[str],
    root_display: str,
) -> None:
    for finding in findings:
        status = "new" if id(finding) in new_fps else "baselined"
        print(
            f"{root_display}/{finding.path}:{finding.line}:{finding.col + 1}: "
            f"{finding.rule} [{status}] {finding.message}"
        )
    for fingerprint in stale:
        print(f"stale baseline entry (fix shipped? run --update-baseline): "
              f"{fingerprint}")
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    summary = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    n_new = len(new_fps)
    print(
        f"quasii-lint: {len(findings)} finding(s) "
        f"({n_new} new, {len(findings) - n_new} baselined, "
        f"{len(stale)} stale baseline entr{'y' if len(stale) == 1 else 'ies'})"
        + (f" [{summary}]" if summary else "")
    )
    if ladder:
        print(
            f"strict-typing burn-down: {len(ladder)} module pattern(s) "
            f"still on the mypy ignore ladder: {', '.join(ladder)}"
        )


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id in sorted(RULES):
            print(f"{rule_id}  {RULES[rule_id].title}")
        return 0

    root = Path(args.root)
    if not root.is_dir():
        print(f"quasii-lint: no such directory: {root}", file=sys.stderr)
        return 2

    config = AnalysisConfig()
    if not args.no_vocab:
        try:
            config = config.with_vocab(load_repo_vocab(REPO))
        except ImportError as exc:
            print(
                f"quasii-lint: cannot load telemetry vocabulary ({exc}); "
                "QL005 disabled",
                file=sys.stderr,
            )

    rules = all_rules()
    if args.rules:
        wanted = {part.strip().upper() for part in args.rules.split(",")}
        unknown = wanted - set(RULES)
        if unknown:
            print(
                f"quasii-lint: unknown rule id(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2
        rules = [rule for rule in rules if rule.id in wanted]

    findings = analyze(root, config, rules)

    baseline_path = Path(args.baseline)
    if args.update_baseline:
        Baseline.from_findings(findings).save(baseline_path)
        print(
            f"quasii-lint: baseline updated with {len(findings)} "
            f"fingerprint(s) -> {baseline_path}"
        )
        return 0

    baseline = (
        Baseline([]) if args.no_baseline else Baseline.load(baseline_path)
    )
    diff = baseline.diff(findings)
    new_ids = {id(finding) for finding in diff.new}

    try:
        root_display = root.resolve().relative_to(REPO).as_posix()
    except ValueError:
        root_display = str(root)

    ladder = mypy_burn_down(REPO / "pyproject.toml")

    if args.json:
        report = {
            "format": "quasii-lint/1",
            "root": root_display,
            "rules": {rule_id: RULES[rule_id].title for rule_id in sorted(RULES)},
            "findings": [
                {**finding.to_dict(), "status": (
                    "new" if id(finding) in new_ids else "baselined"
                )}
                for finding in findings
            ],
            "stale_baseline": diff.stale,
            "mypy_burn_down": ladder,
            "summary": {
                "total": len(findings),
                "new": len(diff.new),
                "baselined": len(diff.baselined),
                "stale": len(diff.stale),
            },
        }
        print(json.dumps(report, indent=2))
    else:
        _render_human(findings, new_ids, diff.stale, ladder, root_display)
        if not findings and not diff.stale:
            print("quasii-lint: clean")

    return 1 if diff.blocking else 0


# Re-exported so ``tools/check_docs.py`` can verify the doc table.
RULE_ID_PATTERN = re.compile(r"QL\d{3}")
