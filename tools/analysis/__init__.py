"""quasii-lint: repo-specific static analysis for the QUASII engine.

The engine's correctness rests on conventions that generic linters
cannot see: the four-mutation :class:`BoxStore` contract, the
epoch/``on_compaction`` discipline of every index, the single-writer
concurrency rule on the ``QueryExecutor`` fan-out path, explicit numpy
dtypes, and the canonical telemetry vocabulary.  This package parses
``src/repro`` with :mod:`ast`, builds a lightweight module/class/call
index (:class:`~analysis.core.RepoIndex`), and runs pluggable rules
(QL001..QL007, registered in :mod:`analysis.rules`) over it.

Usage (from the repository root)::

    python -m tools.analysis                # human report, exit 1 on findings
    python -m tools.analysis --json         # machine-readable findings
    python -m tools.analysis --update-baseline

Findings are suppressed either inline (``# ql: allow[QL004]`` on the
flagged line) or via the committed baseline file
(``tools/analysis/baseline.json``); a baseline entry that no longer
matches any finding is *stale* and fails the run, so the baseline can
only ever shrink.  See ``docs/ANALYSIS.md`` for the rule catalogue and
the workflow.
"""

from .core import AnalysisConfig, Finding, RepoIndex, analyze
from .rules import RULES, all_rules

__all__ = [
    "AnalysisConfig",
    "Finding",
    "RULES",
    "RepoIndex",
    "all_rules",
    "analyze",
]
