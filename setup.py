"""Legacy setup shim.

All metadata lives in pyproject.toml; this file only exists so that
offline environments lacking the ``wheel`` package can still get an
editable install via ``python setup.py develop`` (modern
``pip install -e .`` requires a PEP 660 build, which needs ``wheel``).
"""

from setuptools import setup

setup()
