"""The paper's headline claims (data-to-insight reduction, cumulative
ratios, converged parity, comparative speedups) recomputed end-to-end from
the clustered and uniform runs."""


def test_headline_numbers(benchmark, smoke_scale, regenerate):
    regenerate(benchmark, "headline", smoke_scale)
