"""Figure 7: per-query convergence of each incremental index toward its
static counterpart (SFCracker→SFC, Mosaic→Grid, QUASII→R-Tree), with Scan
as the flat reference, on the clustered neuroscience-like workload."""


def test_fig7_convergence(benchmark, smoke_scale, regenerate):
    regenerate(benchmark, "fig7", smoke_scale)
