"""Figure 11: scalability — QUASII vs R-Tree cumulative time at two
dataset sizes, with the R-Tree cost split into Building and Querying and
the count of queries QUASII completes before the R-Tree finishes
building."""


def test_fig11_scalability(benchmark, smoke_scale, regenerate):
    regenerate(benchmark, "fig11", smoke_scale)
