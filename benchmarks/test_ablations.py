"""Ablation benches for the design choices DESIGN.md calls out.

* slice-assignment representative (paper footnote 1: lower/center/upper);
* QUASII's single parameter tau (the paper fixes 60);
* STR bulk loading vs Guttman insertion (the paper's Section 6.1 rationale).
"""


def test_ablation_representative(benchmark, smoke_scale, regenerate):
    regenerate(benchmark, "ablation-rep", smoke_scale)


def test_ablation_tau(benchmark, smoke_scale, regenerate):
    regenerate(benchmark, "ablation-tau", smoke_scale)


def test_ablation_artificial_split(benchmark, smoke_scale, regenerate):
    regenerate(benchmark, "ablation-split", smoke_scale)


def test_ablation_sequential_access(benchmark, smoke_scale, regenerate):
    regenerate(benchmark, "ablation-sequential", smoke_scale)


def test_ablation_rtree_build(benchmark, smoke_scale, regenerate):
    regenerate(benchmark, "ablation-rtree", smoke_scale)
