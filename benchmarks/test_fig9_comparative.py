"""Figure 9: head-to-head comparison of the incremental approaches.

9a — per-query convergence of QUASII vs Mosaic vs SFCracker (R-Tree and
Scan as references) and the first-query (data-to-insight) cost ordering.
9b — cumulative time vs the cheapest static index (Grid) with break-even
points.
"""


def test_fig9a_comparative_convergence(benchmark, smoke_scale, regenerate):
    regenerate(benchmark, "fig9a", smoke_scale)


def test_fig9b_comparative_cumulative(benchmark, smoke_scale, regenerate):
    regenerate(benchmark, "fig9b", smoke_scale)
