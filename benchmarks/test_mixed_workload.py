"""Mixed read/write workloads: throughput and the update counters
(inserts/deletes/merges) across write ratios, with Scan as the
correctness oracle — the update subsystem's headline scenario (updates
are future work in the paper)."""


def test_mixed_workload(benchmark, smoke_scale, regenerate):
    regenerate(benchmark, "mixed-workload", smoke_scale)
