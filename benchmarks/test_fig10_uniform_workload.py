"""Figure 10: the uniform (non-clustered) workload — QUASII vs R-Tree vs
Scan convergence over the first stretch and the last stretch, cumulative
time including Grid, and the fraction of tail queries that ran on a fully
refined structure."""


def test_fig10_uniform_workload(benchmark, smoke_scale, regenerate):
    regenerate(benchmark, "fig10", smoke_scale)
