"""Figure 12: impact of query selectivity (0.001% / 1% / 10% of the
universe volume) on the QUASII-to-R-Tree cumulative time ratio — larger
queries reorganize more data per query, narrowing QUASII's advantage."""


def test_fig12_selectivity(benchmark, smoke_scale, regenerate):
    regenerate(benchmark, "fig12", smoke_scale)
