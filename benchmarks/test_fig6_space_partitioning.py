"""Figure 6: the costs of space-oriented partitioning.

6a — object-assignment penalty: R-Tree vs GridQueryExt vs GridReplication
on clustered queries over the skewed dataset.
6b — grid configuration sensitivity: the best partitions-per-dimension
depends on the data distribution, and off-configurations hurt.
"""


def test_fig6a_data_assignment(benchmark, smoke_scale, regenerate):
    regenerate(benchmark, "fig6a", smoke_scale)


def test_fig6b_grid_configuration(benchmark, smoke_scale, regenerate):
    regenerate(benchmark, "fig6b", smoke_scale)
