"""Figure 8: cumulative execution time (static build included) for the
three index categories, plus machine-independent work counters and the
break-even points the paper reports (SFCracker ~23, Mosaic ~100, QUASII
never)."""


def test_fig8_cumulative_time(benchmark, smoke_scale, regenerate):
    regenerate(benchmark, "fig8", smoke_scale)
