"""Shared fixtures for the figure-regeneration benchmarks.

Every ``test_figNN_*`` target regenerates one table/figure of the paper at
the ``smoke`` scale (fast; intended to validate the harness end-to-end).
Run the real thing with ``quasii-bench all --scale small`` — see
EXPERIMENTS.md for recorded small-scale results.

Benchmarks print their report; run pytest with ``-s`` to see the rows.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import SCALES, run_experiment


@pytest.fixture(scope="session")
def smoke_scale():
    """The fast harness-validation scale."""
    return SCALES["smoke"]


@pytest.fixture
def regenerate():
    """Run one experiment once under pytest-benchmark and print its report."""

    def _regenerate(benchmark, name: str, scale) -> None:
        report = benchmark.pedantic(
            lambda: run_experiment(name, scale), rounds=1, iterations=1
        )
        print()
        print(report.render())
        assert report.tables, f"experiment {name} produced no tables"

    return _regenerate
