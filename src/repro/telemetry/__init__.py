"""Telemetry: streaming metrics, time-series windows, span tracing.

The observability layer for the serving engine.  It is deliberately
dependency-light (stdlib ``math``/``time``/``threading`` only) and
opt-in: hot paths accept an optional :class:`Telemetry` handle and skip
all instrumentation when it is absent, so the un-instrumented cost is a
single ``is None`` test per batch.

    telemetry = Telemetry()
    executor = QueryExecutor(engine, maintenance=policy, telemetry=telemetry)
    recorder = TimeSeriesRecorder(telemetry.registry, window=2.0)
    ...serve...; recorder.tick(time.perf_counter())

See ``docs/OBSERVABILITY.md`` for the metric/span vocabulary and the
``BENCH_*.json`` schema the bench harness persists.
"""

from __future__ import annotations

from repro.telemetry.events import EVENTS, EventLog, EventRecord
from repro.telemetry.export import (
    histogram_from_snapshot,
    json_snapshot,
    registry_prometheus,
    render_prometheus,
    snapshot_prometheus,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    TimeSeriesRecorder,
    WindowSnapshot,
)
from repro.telemetry.naming import (
    METRICS,
    SPANS,
    record_stats_delta,
    stats_metric,
)
from repro.telemetry.server import ENDPOINTS, MetricsServer
from repro.telemetry.tracer import DISABLED, Span, SpanRecord, Tracer

__all__ = [
    "Counter",
    "DISABLED",
    "ENDPOINTS",
    "EVENTS",
    "EventLog",
    "EventRecord",
    "Gauge",
    "LatencyHistogram",
    "METRICS",
    "MetricsRegistry",
    "MetricsServer",
    "SPANS",
    "Span",
    "SpanRecord",
    "Telemetry",
    "TimeSeriesRecorder",
    "Tracer",
    "WindowSnapshot",
    "histogram_from_snapshot",
    "json_snapshot",
    "record_stats_delta",
    "registry_prometheus",
    "render_prometheus",
    "snapshot_prometheus",
    "stats_metric",
]


class Telemetry:
    """One registry + one registry-backed tracer, wired together.

    The convenience bundle instrumented components accept: a
    :class:`MetricsRegistry` for counters/gauges/histograms and a
    :class:`Tracer` whose finished spans also land in ``span.<name>``
    histograms of the same registry (so pause durations appear in time
    windows).  Construct with ``enabled=False`` to keep the handles but
    silence the tracer.
    """

    def __init__(self, enabled: bool = True, max_spans: int = 32_768) -> None:
        self.enabled = bool(enabled)
        self.registry = MetricsRegistry()
        self.tracer = Tracer(
            enabled=enabled, registry=self.registry, max_spans=max_spans
        )
