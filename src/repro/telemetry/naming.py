"""Canonical metric and span names (the observability vocabulary).

Instrumentation sites import name constants from here instead of
spelling strings inline, and ``docs/OBSERVABILITY.md`` documents exactly
the names in :data:`METRICS` and :data:`SPANS` — ``tools/check_docs.py``
compares the doc tables against these dicts in both directions, so a
new metric cannot ship undocumented and the docs cannot drift.

The ``stats.*`` counter family is generated from the
:class:`~repro.index.base.IndexStats` dataclass fields: adding a counter
to ``IndexStats`` automatically adds its registry metric here (and
therefore *requires* a doc row, by the same check).
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields

from repro.index.base import IndexStats
from repro.telemetry.metrics import MetricsRegistry

__all__ = [
    "BATCH_FANOUT_SECONDS",
    "BATCH_MERGE_SECONDS",
    "BATCH_ROUTE_SECONDS",
    "BATCH_SECONDS",
    "DELETE_SECONDS",
    "INSERT_SECONDS",
    "METRICS",
    "OPS",
    "QUERY_SECONDS",
    "SHARDS_BALANCE",
    "SHARD_BATCH_SECONDS",
    "SPANS",
    "STORE_DEAD_FRACTION",
    "STORE_LIVE",
    "WORKER_BATCH_SECONDS",
    "WORKER_DISPATCHES",
    "WORKER_QUERY_SECONDS",
    "WORKER_RESPAWNS",
    "record_stats_delta",
    "stats_metric",
]

# -- histogram names (all record seconds) ---------------------------------
QUERY_SECONDS = "query.seconds"
INSERT_SECONDS = "insert.seconds"
DELETE_SECONDS = "delete.seconds"
BATCH_SECONDS = "batch.seconds"
BATCH_ROUTE_SECONDS = "batch.route.seconds"
BATCH_FANOUT_SECONDS = "batch.fanout.seconds"
BATCH_MERGE_SECONDS = "batch.merge.seconds"
SHARD_BATCH_SECONDS = "shard.batch.seconds"
WORKER_BATCH_SECONDS = "worker.batch.seconds"
WORKER_QUERY_SECONDS = "worker.query.seconds"

# -- counter / gauge names ------------------------------------------------
OPS = "ops"
WORKER_DISPATCHES = "worker.dispatches"
WORKER_RESPAWNS = "worker.respawns"
STORE_LIVE = "store.live"
STORE_DEAD_FRACTION = "store.dead_fraction"
SHARDS_BALANCE = "shards.balance"

#: Every canonical metric name -> one-line meaning.  ``span.<name>``
#: histograms (auto-created by a registry-backed tracer) are documented
#: via :data:`SPANS` instead of being repeated here.
METRICS: dict[str, str] = {
    QUERY_SECONDS: "histogram: per-query wall-clock latency",
    INSERT_SECONDS: "histogram: per-insert-batch wall-clock latency",
    DELETE_SECONDS: "histogram: per-delete-batch wall-clock latency",
    BATCH_SECONDS: "histogram: whole query-batch wall-clock (QueryExecutor.run)",
    BATCH_ROUTE_SECONDS: "histogram: batch routing/queueing phase (shard planning)",
    BATCH_FANOUT_SECONDS: "histogram: batch fan-out phase (shard tasks in flight)",
    BATCH_MERGE_SECONDS: "histogram: batch merge phase (partials -> per-query results)",
    SHARD_BATCH_SECONDS: "histogram: per-shard sub-batch worker wall-clock",
    WORKER_BATCH_SECONDS: (
        "histogram: sub-batch wall-clock measured inside a worker process"
    ),
    WORKER_QUERY_SECONDS: (
        "histogram: per-query seconds measured inside a worker process"
    ),
    OPS: "counter: operations executed (queries + inserts + deletes)",
    WORKER_DISPATCHES: (
        "counter: per-shard sub-batches dispatched to process workers"
    ),
    WORKER_RESPAWNS: (
        "counter: worker processes respawned after a crash mid-service"
    ),
    STORE_LIVE: "gauge: live rows in the engine's store",
    STORE_DEAD_FRACTION: "gauge: tombstoned fraction of the engine's store",
    SHARDS_BALANCE: "gauge: live-row balance factor (max/mean shard size)",
}


def stats_metric(counter: str) -> str:
    """Registry name for an :class:`IndexStats` counter (``stats.<name>``)."""
    return f"stats.{counter}"


# The stats.* family mirrors IndexStats 1:1 — generated, not hand-listed,
# so a new IndexStats counter is automatically part of the vocabulary.
METRICS.update(
    {
        stats_metric(f.name): f"counter: IndexStats.{f.name} flowed as deltas"
        for f in dataclass_fields(IndexStats)
    }
)

#: Every span name -> one-line meaning.  A registry-backed tracer also
#: exposes each as a ``span.<name>`` duration histogram.
SPANS: dict[str, str] = {
    "maintenance.check": "one MaintenanceScheduler check (compaction + rebalance gates)",
    "maintenance.compact": "dead-fraction-gated compaction pass inside a check",
    "maintenance.rebalance": "shard rebalancing pass inside a check",
}


def record_stats_delta(registry: MetricsRegistry, delta: IndexStats) -> None:
    """Flow an :class:`IndexStats` delta into ``stats.*`` counters.

    Zero-valued entries are skipped, so registries only materialize the
    counters a workload actually moves.
    """
    for name, value in delta.as_dict().items():
        if value:
            registry.counter(stats_metric(name)).inc(value)
