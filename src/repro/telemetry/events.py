"""Structured event log: a bounded ring of JSON-ready events.

Histograms answer "how slow is the p99"; an event log answers "*which*
query was slow, and what was the engine doing".  An :class:`EventLog`
keeps the most recent ``capacity`` events in memory (a deque ring —
full means the *oldest* event is evicted and counted in
:attr:`EventLog.dropped`) and can mirror every event to a JSON-lines
file sink for post-hoc analysis.

Event payloads are sanitized to JSON builtins at emit time (numpy
scalars are frequent in span attrs and query windows), so the in-memory
records, the file sink, and the HTTP endpoints all serialize without
caveats.  One line per event in the sink::

    {"t": 1754500000.123, "kind": "slow_query", "payload": {...}}

The canonical event vocabulary lives in :data:`EVENTS` and is checked
against ``docs/OBSERVABILITY.md`` in both directions by
``tools/check_docs.py`` — exactly like the metric and span names.  The
log itself accepts any kind string (like the registry accepts any
metric name); canonical kinds are the documented contract.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path
from types import TracebackType
from typing import IO

from repro.errors import ConfigurationError

__all__ = ["EVENTS", "EventLog", "EventRecord"]

#: Canonical event kinds -> one-line meaning (docs/OBSERVABILITY.md).
EVENTS: dict[str, str] = {
    "slow_query": (
        "a query exceeded the executor's slow_query_threshold; payload "
        "carries the window, predicate/mode, seconds, and the batch's "
        "fan-out profile"
    ),
    "maintenance.compact": (
        "a compaction pass reclaimed rows; payload carries rows_reclaimed "
        "and the pass duration"
    ),
    "maintenance.rebalance": (
        "a rebalancing pass was applied; payload carries rows_migrated "
        "and the pass duration"
    ),
    "replica.kill": (
        "a shard replica was killed (fault injection); payload carries "
        "the shard sid and replica rid"
    ),
    "replica.stall": (
        "a shard replica was stalled out of read routing; payload "
        "carries sid, rid, and the stall duration in routing decisions"
    ),
    "replica.slow": (
        "a shard replica's effective load was scaled up (slow fault); "
        "payload carries sid, rid, and the factor"
    ),
    "replica.recover": (
        "a dead replica was rebuilt by ledger replay and fingerprint-"
        "verified; payload carries sid, rid, replayed_ops, live_rows"
    ),
    "replica.failover": (
        "a shard's primary replica died and a live replica took over; "
        "payload carries sid, from_rid, to_rid"
    ),
    "worker.spawn": (
        "a shard-serving worker process started; payload carries the "
        "worker wid, its pid, and the pool's start method"
    ),
    "worker.respawn": (
        "a crashed worker process was replaced mid-service and its "
        "in-flight sub-batches re-dispatched; payload carries wid, the "
        "old and new pids, and the sids re-dispatched"
    ),
    "worker.refresh": (
        "a shard's shared-memory segment was republished after a "
        "mutation epoch bump (or shard rebuild), invalidating worker "
        "views; payload carries sid, segment version, rows, and epoch"
    ),
}


def _jsonable(value: object) -> object:
    """Coerce a payload value to JSON builtins (numpy scalars included)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    # tolist() before item(): numpy arrays expose both, and item() raises
    # for size != 1; on a numpy scalar tolist() is the builtin value.
    if hasattr(value, "tolist"):  # numpy array or scalar
        return _jsonable(value.tolist())
    if hasattr(value, "item"):  # other 0-d scalar wrappers
        return value.item()
    return str(value)


@dataclass(frozen=True)
class EventRecord:
    """One emitted event: kind, wall-clock timestamp, JSON-ready payload."""

    kind: str
    t: float
    payload: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """The JSON-lines form (also what the file sink writes)."""
        return {"t": self.t, "kind": self.kind, "payload": self.payload}


class EventLog:
    """Bounded in-memory event ring with an optional JSON-lines sink.

    Parameters
    ----------
    capacity:
        Ring size.  Past it, the oldest in-memory event is evicted per
        emit (counted in :attr:`dropped`); the file sink, when present,
        still receives every event.
    sink:
        Optional path; every event is appended as one JSON line.  The
        file is opened lazily on first emit and closed by
        :meth:`close` (the log is also a context manager).
    clock:
        Timestamp source (``time.time`` in production; injectable for
        deterministic tests).
    """

    def __init__(
        self,
        capacity: int = 4096,
        sink: str | Path | None = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"event-log capacity must be >= 1, got {capacity}"
            )
        self.capacity = int(capacity)
        self._records: deque[EventRecord] = deque(maxlen=self.capacity)
        self._sink_path = Path(sink) if sink is not None else None
        self._sink_file: IO[str] | None = None
        self._clock = clock
        self._lock = threading.Lock()
        #: Total events emitted over the log's lifetime.
        self.emitted = 0
        #: Events evicted from the in-memory ring (sink unaffected).
        self.dropped = 0

    def emit(self, kind: str, **payload: object) -> EventRecord:
        """Record one event; returns the (sanitized, frozen) record."""
        record = EventRecord(
            kind=str(kind),
            t=float(self._clock()),
            payload={str(k): _jsonable(v) for k, v in payload.items()},
        )
        with self._lock:
            self.emitted += 1
            if len(self._records) >= self.capacity:
                self.dropped += 1
            self._records.append(record)
            if self._sink_path is not None:
                if self._sink_file is None:
                    self._sink_file = open(
                        self._sink_path, "a", encoding="utf-8"
                    )
                self._sink_file.write(json.dumps(record.to_dict()) + "\n")
                self._sink_file.flush()
        return record

    def recent(
        self, kind: str | None = None, limit: int | None = None
    ) -> list[EventRecord]:
        """The most recent events, oldest first (a defensive copy).

        ``kind`` filters; ``limit`` keeps only the newest ``limit``
        matches.
        """
        with self._lock:
            records = list(self._records)
        if kind is not None:
            records = [r for r in records if r.kind == kind]
        if limit is not None and limit >= 0:
            records = records[len(records) - min(limit, len(records)):]
        return records

    def to_dicts(
        self, kind: str | None = None, limit: int | None = None
    ) -> list[dict]:
        """JSON-ready form of :meth:`recent` (endpoints serve this)."""
        return [r.to_dict() for r in self.recent(kind=kind, limit=limit)]

    def __len__(self) -> int:
        return len(self._records)

    def close(self) -> None:
        """Close the file sink, if one was opened."""
        with self._lock:
            if self._sink_file is not None:
                self._sink_file.close()
                self._sink_file = None

    def __enter__(self) -> EventLog:
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        self.close()
        return False
