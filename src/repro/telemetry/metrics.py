"""Low-overhead streaming metrics: histograms, counters, gauges, windows.

The serving engine needs to *see itself run* without perturbing what it
measures.  Three pieces, composable and dependency-free:

* :class:`LatencyHistogram` — a fixed-bucket log-scale streaming
  histogram.  Recording a sample is one ``log10`` plus a list increment
  (no allocation, no sorting); percentiles are reconstructed from the
  bucket counts with relative error bounded by the bucket growth factor
  (~6% at the default 40 buckets/decade).  Histograms over the same
  layout merge associatively, so per-shard or per-window histograms
  roll up exactly.
* :class:`MetricsRegistry` — a flat namespace of named
  :class:`Counter`/:class:`Gauge`/:class:`LatencyHistogram` instruments
  with get-or-create semantics, so instrumentation sites never need
  set-up order.
* :class:`TimeSeriesRecorder` — snapshots a registry into aligned,
  fixed-width time windows, emitting *deltas* per window (counter
  differences, bucket-wise histogram differences).  This is what turns
  cumulative counters into a latency-over-time trajectory in which a
  maintenance pause shows up as a p99 spike in one window.

Canonical metric names live in :mod:`repro.telemetry.naming`;
``docs/OBSERVABILITY.md`` documents them and ``tools/check_docs.py``
keeps the two in sync.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any, TypeVar

from repro.errors import ConfigurationError

_Instrument = TypeVar("_Instrument", bound="Counter | Gauge | LatencyHistogram")

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "TimeSeriesRecorder",
    "WindowSnapshot",
]


class LatencyHistogram:
    """Fixed-bucket log-scale streaming histogram of seconds.

    Buckets are geometrically spaced: bucket ``i`` covers
    ``[lo * g**i, lo * g**(i+1))`` with ``g = 10 ** (1 /
    buckets_per_decade)``.  Samples below ``lo`` clamp into the first
    bucket, samples at or above ``hi`` into the last — the range is a
    *resolution* window, not a validity gate.

    Percentiles interpolate the geometric midpoint of the bucket that
    contains the requested rank, so their relative error is bounded by
    ``sqrt(g) - 1`` (~3% at the default 40 buckets/decade) for samples
    inside the range.

    Two histograms with the same ``(lo, hi, buckets_per_decade)`` layout
    merge associatively and commutatively via :meth:`merge`;
    :meth:`delta_since` subtracts an earlier snapshot bucket-wise, which
    is how :class:`TimeSeriesRecorder` builds per-window histograms.
    """

    __slots__ = ("lo", "hi", "buckets_per_decade", "_n_buckets", "_scale",
                 "counts", "count", "sum", "max")

    def __init__(
        self,
        lo: float = 1e-6,
        hi: float = 100.0,
        buckets_per_decade: int = 40,
    ) -> None:
        if not (lo > 0 and hi > lo):
            raise ConfigurationError(
                f"histogram range must satisfy 0 < lo < hi, got [{lo}, {hi})"
            )
        if buckets_per_decade < 1:
            raise ConfigurationError(
                f"buckets_per_decade must be >= 1, got {buckets_per_decade}"
            )
        self.lo = float(lo)
        self.hi = float(hi)
        self.buckets_per_decade = int(buckets_per_decade)
        decades = math.log10(self.hi / self.lo)
        self._n_buckets = max(1, math.ceil(decades * buckets_per_decade))
        self._scale = buckets_per_decade / math.log(10.0)
        self.counts = [0] * self._n_buckets
        self.count = 0
        self.sum = 0.0
        self.max = 0.0

    # -- recording ---------------------------------------------------------
    def record(self, seconds: float) -> None:
        """Record one sample (clamped into the bucket range)."""
        v = float(seconds)
        if v <= self.lo:
            i = 0
        else:
            i = int(math.log(v / self.lo) * self._scale)
            if i >= self._n_buckets:
                i = self._n_buckets - 1
        self.counts[i] += 1
        self.count += 1
        self.sum += v
        if v > self.max:
            self.max = v

    # -- derived values ----------------------------------------------------
    def _bucket_bounds(self, i: int) -> tuple[float, float]:
        g = 10.0 ** (1.0 / self.buckets_per_decade)
        return self.lo * g**i, self.lo * g ** (i + 1)

    def percentile(self, q: float) -> float:
        """Approximate the ``q``-th percentile (0..100) in seconds.

        Returns the geometric midpoint of the bucket holding the
        requested rank; 0.0 for an empty histogram.
        """
        if not 0 <= q <= 100:
            raise ConfigurationError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        target = max(1, math.ceil(q / 100.0 * self.count))
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= target:
                lo, hi = self._bucket_bounds(i)
                return math.sqrt(lo * hi)
        lo, hi = self._bucket_bounds(self._n_buckets - 1)  # pragma: no cover
        return math.sqrt(lo * hi)  # pragma: no cover

    @property
    def mean(self) -> float:
        """Arithmetic mean of recorded samples (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    # -- composition -------------------------------------------------------
    def _check_layout(self, other: LatencyHistogram) -> None:
        if (self.lo, self.hi, self.buckets_per_decade) != (
            other.lo, other.hi, other.buckets_per_decade
        ):
            raise ConfigurationError(
                "cannot combine histograms with different bucket layouts"
            )

    def merge(self, other: LatencyHistogram) -> LatencyHistogram:
        """A new histogram holding both sets of samples (non-mutating)."""
        self._check_layout(other)
        out = LatencyHistogram(self.lo, self.hi, self.buckets_per_decade)
        out.counts = [a + b for a, b in zip(self.counts, other.counts)]
        out.count = self.count + other.count
        out.sum = self.sum + other.sum
        out.max = max(self.max, other.max)
        return out

    def absorb(self, other: LatencyHistogram) -> None:
        """Fold ``other``'s samples into this histogram **in place**.

        The mutating sibling of :meth:`merge`, used where the receiving
        instrument must keep its registry identity — e.g. a driver
        registry absorbing the per-batch histograms worker *processes*
        ship back, so ``/metrics`` and soak windows see process-backend
        samples exactly like thread-backend ones.
        """
        self._check_layout(other)
        for i, c in enumerate(other.counts):
            if c:
                self.counts[i] += c
        self.count += other.count
        self.sum += other.sum
        if other.max > self.max:
            self.max = other.max

    def delta_since(self, before: LatencyHistogram) -> LatencyHistogram:
        """Bucket-wise difference ``self - before`` (a window's samples).

        ``before`` must be an earlier snapshot of this stream.  The
        delta's ``max`` is reconstructed from its highest non-empty
        bucket (upper edge) because the true window maximum is not
        recoverable from two cumulative states; the error is bounded by
        one bucket width.
        """
        self._check_layout(before)
        out = LatencyHistogram(self.lo, self.hi, self.buckets_per_decade)
        out.counts = [a - b for a, b in zip(self.counts, before.counts)]
        if any(c < 0 for c in out.counts):
            raise ConfigurationError(
                "delta_since requires an earlier snapshot of the same stream"
            )
        out.count = self.count - before.count
        out.sum = self.sum - before.sum
        for i in range(self._n_buckets - 1, -1, -1):
            if out.counts[i]:
                out.max = self._bucket_bounds(i)[1]
                break
        return out

    def copy(self) -> LatencyHistogram:
        """An independent snapshot of the current state."""
        out = LatencyHistogram(self.lo, self.hi, self.buckets_per_decade)
        out.counts = list(self.counts)
        out.count = self.count
        out.sum = self.sum
        out.max = self.max
        return out

    def to_dict(self, include_buckets: bool = False) -> dict:
        """JSON-ready summary: count/sum/mean/max plus p50/p90/p99.

        With ``include_buckets``, adds a sparse ``{bucket_index: count}``
        map (stringified keys, as JSON requires) so downstream tooling
        can re-derive any percentile.
        """
        out = {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "max": self.max,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }
        if include_buckets:
            out["buckets"] = {
                str(i): c for i, c in enumerate(self.counts) if c
            }
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LatencyHistogram(count={self.count}, p50={self.percentile(50):.2e}, "
            f"p99={self.percentile(99):.2e}, max={self.max:.2e})"
        )


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be >= 0: counters only move forward)."""
        if n < 0:
            raise ConfigurationError(f"counters only increase, got inc({n})")
        self.value += int(n)


class Gauge:
    """A point-in-time float (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the current value."""
        self.value = float(value)


class MetricsRegistry:
    """Flat namespace of instruments with get-or-create semantics.

    Asking for the same name twice returns the same instrument; asking
    for an existing name as a different kind raises — a typo'd
    instrumentation site must fail loudly, not split its samples.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | LatencyHistogram] = {}

    def _get(
        self,
        name: str,
        kind: type[_Instrument],
        factory: Callable[[], _Instrument],
    ) -> _Instrument:
        inst = self._instruments.get(name)
        if inst is None:
            inst = factory()
            self._instruments[name] = inst
        elif not isinstance(inst, kind):
            raise ConfigurationError(
                f"metric {name!r} already registered as "
                f"{type(inst).__name__}, not {kind.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        return self._get(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        return self._get(name, Gauge, Gauge)

    def histogram(self, name: str, **kwargs: Any) -> LatencyHistogram:
        """Get or create the histogram called ``name``."""
        return self._get(
            name, LatencyHistogram, lambda: LatencyHistogram(**kwargs)
        )

    def names(self) -> list[str]:
        """All registered instrument names, sorted."""
        return sorted(self._instruments)

    def counters(self) -> dict[str, int]:
        """Current value of every counter."""
        return {
            n: i.value
            for n, i in self._instruments.items()
            if isinstance(i, Counter)
        }

    def gauges(self) -> dict[str, float]:
        """Current value of every gauge."""
        return {
            n: i.value
            for n, i in self._instruments.items()
            if isinstance(i, Gauge)
        }

    def histograms(self) -> dict[str, LatencyHistogram]:
        """A *snapshot copy* of every histogram (safe to keep)."""
        return {
            n: i.copy()
            for n, i in self._instruments.items()
            if isinstance(i, LatencyHistogram)
        }


@dataclass
class WindowSnapshot:
    """One closed time window of registry activity (all values deltas).

    ``counters`` holds per-window increments, ``histograms`` per-window
    sample sets (bucket-wise deltas), ``gauges`` the value observed at
    window close (gauges are levels, not flows).
    """

    index: int
    start: float
    end: float
    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, LatencyHistogram] = field(default_factory=dict)

    def to_dict(self, origin: float = 0.0, include_buckets: bool = True) -> dict:
        """JSON-ready form; ``origin`` rebases timestamps (run start = 0)."""
        return {
            "index": self.index,
            "start": self.start - origin,
            "end": self.end - origin,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                n: h.to_dict(include_buckets=include_buckets)
                for n, h in self.histograms.items()
            },
        }


class TimeSeriesRecorder:
    """Chop a registry's cumulative state into aligned delta windows.

    The recorder is clock-agnostic: callers feed explicit ``now``
    timestamps to :meth:`tick` (``time.perf_counter()`` in production,
    synthetic values in tests), so window alignment is deterministic and
    testable.  Windows are ``[start + k*window, start + (k+1)*window)``
    where ``start`` is the first tick.  A tick that jumps several
    boundaries closes several windows: all activity since the last close
    lands in the first of them (the recorder cannot subdivide what it
    never observed) and the rest are emitted empty, so the time axis has
    no holes.  :meth:`flush` closes the final partial window.
    """

    def __init__(self, registry: MetricsRegistry, window: float) -> None:
        if window <= 0:
            raise ConfigurationError(f"window must be > 0, got {window}")
        self._registry = registry
        self.window = float(window)
        self._start: float | None = None
        self._boundary = 0.0  # end of the currently open window
        self._prev_counters: dict[str, int] = {}
        self._prev_hists: dict[str, LatencyHistogram] = {}
        #: Closed windows, oldest first.
        self.windows: list[WindowSnapshot] = []

    @property
    def start(self) -> float | None:
        """Timestamp of the first tick (``None`` before any tick)."""
        return self._start

    def _close(self, start: float, end: float) -> None:
        reg = self._registry
        counters = reg.counters()
        hists = reg.histograms()
        snap = WindowSnapshot(
            index=len(self.windows),
            start=start,
            end=end,
            counters={
                n: v - self._prev_counters.get(n, 0)
                for n, v in counters.items()
            },
            gauges=reg.gauges(),
            histograms={
                n: (
                    h.delta_since(self._prev_hists[n])
                    if n in self._prev_hists
                    else h
                )
                for n, h in hists.items()
            },
        )
        self.windows.append(snap)
        self._prev_counters = counters
        self._prev_hists = {n: h.copy() for n, h in hists.items()}

    def tick(self, now: float) -> int:
        """Advance the clock; close every window boundary crossed.

        Returns the number of windows closed by this tick (usually 0).
        """
        if self._start is None:
            self._start = now
            self._boundary = now + self.window
            return 0
        closed = 0
        while now >= self._boundary:
            self._close(self._boundary - self.window, self._boundary)
            self._boundary += self.window
            closed += 1
        return closed

    def flush(self, now: float) -> WindowSnapshot | None:
        """Close the trailing partial window (end = ``now``), if any.

        Call once at run end so the last samples are not dropped.
        Returns the partial window, or ``None`` when ``now`` sits
        exactly on a boundary already closed by :meth:`tick`.
        """
        if self._start is None:
            return None
        self.tick(now)
        open_start = self._boundary - self.window
        if now <= open_start:
            return None
        self._close(open_start, now)
        return self.windows[-1]
