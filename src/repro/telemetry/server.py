"""Live metrics endpoint: a stdlib HTTP thread over a `Telemetry` handle.

A running soak (or any serving loop) should be scrapeable *mid-flight*,
not only explicable post-hoc.  :class:`MetricsServer` wraps one
:class:`~repro.telemetry.Telemetry` handle (and optionally one
:class:`~repro.telemetry.events.EventLog`) in a daemon-threaded
``http.server`` — no third-party dependency, started and stopped in a
few milliseconds, safe to point Prometheus or ``curl`` at:

    server = MetricsServer(telemetry, port=9464).start()
    ...serve traffic...
    server.stop()

Reads are snapshot-based (registry accessors copy, the span ring and
event log hand out defensive copies), so a scrape never blocks or
perturbs the serving loop beyond the GIL.  The endpoint vocabulary
lives in :data:`ENDPOINTS`; ``tools/check_docs.py`` checks it against
the table in ``docs/OBSERVABILITY.md`` in both directions.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from types import TracebackType
from typing import TYPE_CHECKING
from urllib.parse import parse_qs, urlsplit

from repro.errors import ConfigurationError
from repro.telemetry.events import EventLog
from repro.telemetry.export import json_snapshot, registry_prometheus
from repro.telemetry.tracer import Tracer

if TYPE_CHECKING:  # circular at runtime: the package __init__ imports us
    from repro.telemetry import Telemetry

__all__ = ["ENDPOINTS", "MetricsServer"]

#: Canonical endpoint -> one-line meaning (docs/OBSERVABILITY.md).
ENDPOINTS: dict[str, str] = {
    "/metrics": (
        "Prometheus text exposition of the live registry (counters as "
        "_total, gauges, histograms as cumulative _bucket/_sum/_count)"
    ),
    "/snapshot.json": (
        "stable JSON snapshot of the registry, histograms with bucket "
        "layouts included"
    ),
    "/spans": (
        "recent finished SpanRecords plus the tracer's dropped count; "
        "?name= filters, ?limit= bounds (default 256)"
    ),
    "/events": (
        "recent structured events plus emitted/dropped counts; ?kind= "
        "filters, ?limit= bounds (default 256); empty without an EventLog"
    ),
    "/healthz": (
        "liveness probe: status, uptime seconds, span/event totals"
    ),
}

#: Default record cap for ``/spans`` and ``/events`` responses.
_DEFAULT_LIMIT = 256


def _span_dicts(
    tracer: Tracer, name: str | None, limit: int
) -> list[dict[str, object]]:
    records = tracer.spans(name)
    return [
        {
            "name": r.name,
            "start": r.start,
            "seconds": r.seconds,
            "depth": r.depth,
            "parent": r.parent,
            "attrs": {
                k: (v.item() if hasattr(v, "item") else v)
                for k, v in r.attrs.items()
            },
        }
        for r in records[len(records) - min(limit, len(records)):]
    ]


class MetricsServer:
    """Serve a live `Telemetry` handle over HTTP on a daemon thread.

    Parameters
    ----------
    telemetry:
        The handle to expose; the server reads it live, so metrics a
        workload records after :meth:`start` appear in the next scrape.
    host / port:
        Bind address.  ``port=0`` binds an ephemeral port; read the
        resolved one from :attr:`port` after :meth:`start`.
    events:
        Optional :class:`EventLog`; ``/events`` serves it (and
        ``/healthz`` reports its totals) when present.
    """

    def __init__(
        self,
        telemetry: Telemetry,
        host: str = "127.0.0.1",
        port: int = 0,
        events: EventLog | None = None,
    ) -> None:
        if not 0 <= int(port) <= 65535:
            raise ConfigurationError(f"port must be in [0, 65535], got {port}")
        self._telemetry = telemetry
        self._events = events
        self._host = host
        self._requested_port = int(port)
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._started_at = 0.0

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> MetricsServer:
        """Bind and serve on a daemon thread; returns ``self`` (chainable)."""
        if self._httpd is not None:
            raise ConfigurationError("MetricsServer is already running")
        handler = self._make_handler()
        self._httpd = ThreadingHTTPServer(
            (self._host, self._requested_port), handler
        )
        self._httpd.daemon_threads = True
        self._started_at = time.time()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread (idempotent)."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> MetricsServer:
        return self.start()

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        self.stop()
        return False

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral choice)."""
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return f"http://{self._host}:{self.port}"

    # -- request handling --------------------------------------------------
    def _payload(
        self, path: str, query: dict[str, str]
    ) -> tuple[int, str, str]:
        """(status, content-type, body) for one GET; 404 off-vocabulary."""
        tel = self._telemetry
        if path == "/metrics":
            return (
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                registry_prometheus(tel.registry),
            )
        if path == "/snapshot.json":
            return 200, "application/json", json.dumps(
                json_snapshot(tel.registry), indent=2
            )
        if path == "/spans":
            limit = _positive_int(query.get("limit"), _DEFAULT_LIMIT)
            name = query.get("name")
            body = {
                "dropped": tel.tracer.dropped,
                "recorded": len(tel.tracer.records),
                "spans": _span_dicts(tel.tracer, name, limit),
            }
            return 200, "application/json", json.dumps(body, indent=2)
        if path == "/events":
            limit = _positive_int(query.get("limit"), _DEFAULT_LIMIT)
            kind = query.get("kind")
            log = self._events
            body = {
                "emitted": log.emitted if log else 0,
                "dropped": log.dropped if log else 0,
                "events": log.to_dicts(kind=kind, limit=limit) if log else [],
            }
            return 200, "application/json", json.dumps(body, indent=2)
        if path == "/healthz":
            log = self._events
            body = {
                "status": "ok",
                "uptime_seconds": time.time() - self._started_at,
                "metrics": len(tel.registry.names()),
                "spans_recorded": len(tel.tracer.records),
                "spans_dropped": tel.tracer.dropped,
                "events_emitted": log.emitted if log else 0,
            }
            return 200, "application/json", json.dumps(body, indent=2)
        known = ", ".join(sorted(ENDPOINTS))
        return 404, "text/plain; charset=utf-8", (
            f"unknown path {path!r}; endpoints: {known}\n"
        )

    def _make_handler(self) -> type[BaseHTTPRequestHandler]:
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib casing)
                split = urlsplit(self.path)
                query = {
                    k: v[-1] for k, v in parse_qs(split.query).items()
                }
                try:
                    status, ctype, body = server._payload(split.path, query)
                except Exception as exc:  # ql: allow[QL006] never kill the serving loop
                    status, ctype, body = (
                        500,
                        "text/plain; charset=utf-8",
                        f"internal error: {exc}\n",
                    )
                data = body.encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)

            def log_message(self, fmt: str, *args: object) -> None:
                pass  # scrapes must not spam the bench's stdout

        return Handler


def _positive_int(raw: str | None, default: int) -> int:
    try:
        value = int(raw) if raw is not None else default
    except ValueError:
        return default
    return value if value >= 0 else default
