"""Span-based tracing with near-zero cost when disabled.

A :class:`Tracer` hands out context-manager spans::

    with tracer.span("maintenance.rebalance", shard=3) as span:
        ...
        span.set(rows_migrated=1234)

Each finished span becomes an immutable :class:`SpanRecord` (name, start
time, duration, nesting depth, parent name, attributes).  When the
tracer is constructed with a :class:`~repro.telemetry.metrics.MetricsRegistry`,
every finished span additionally records its duration into the
``span.<name>`` histogram — which is what lets the
:class:`~repro.telemetry.metrics.TimeSeriesRecorder` attribute a p99
spike in some window to the maintenance pass that ran inside it.

Disabled tracers (``Tracer(enabled=False)``, or the shared
:data:`DISABLED` singleton) hand out one preallocated no-op span:
``tracer.span(...)`` is then a constant-time attribute call with no
allocation, so instrumentation can stay unconditionally in place on hot
paths.

Span nesting is tracked per thread (a ``threading.local`` stack), so a
tracer can be shared by an executor and its coordinator thread; the
record list itself relies on the GIL's atomic ``list.append``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from types import TracebackType
from dataclasses import dataclass, field

from repro.telemetry.metrics import MetricsRegistry

__all__ = ["DISABLED", "Span", "SpanRecord", "Tracer"]

#: Histogram-name prefix for per-span duration metrics in a registry.
SPAN_METRIC_PREFIX = "span."


@dataclass(frozen=True)
class SpanRecord:
    """One finished span."""

    name: str
    start: float
    seconds: float
    depth: int
    parent: str | None
    attrs: dict = field(default_factory=dict)


class Span:
    """A live span; use as a context manager, annotate via :meth:`set`."""

    __slots__ = ("_tracer", "name", "attrs", "_start", "_depth", "_parent")

    def __init__(
        self, tracer: Tracer, name: str, attrs: dict[str, object]
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._start = 0.0
        self._depth = 0
        self._parent: str | None = None

    def set(self, **attrs: object) -> None:
        """Attach attributes discovered while the span runs."""
        self.attrs.update(attrs)

    def __enter__(self) -> Span:
        stack = self._tracer._stack()
        self._depth = len(stack)
        self._parent = stack[-1] if stack else None
        stack.append(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        seconds = time.perf_counter() - self._start
        self._tracer._stack().pop()
        self._tracer._finish(
            SpanRecord(
                name=self.name,
                start=self._start,
                seconds=seconds,
                depth=self._depth,
                parent=self._parent,
                attrs=self.attrs,
            )
        )
        return False


class _NullSpan:
    """Shared do-nothing span handed out by disabled tracers."""

    __slots__ = ()

    def set(self, **attrs: object) -> None:
        pass

    def __enter__(self) -> _NullSpan:
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Produce spans and keep their finished records.

    Parameters
    ----------
    enabled:
        ``False`` short-circuits :meth:`span` to a shared no-op span —
        no clock reads, no allocation, no records.
    registry:
        Optional :class:`MetricsRegistry`; finished spans then record
        their duration into the ``span.<name>`` histogram, making pause
        durations visible per time window.
    max_spans:
        Record-ring cap (memory bound for long soaks).  The ring keeps
        the *most recent* ``max_spans`` records — past the cap the
        oldest record is evicted per finished span and counted in
        :attr:`dropped`; the registry histograms stay complete either
        way.  Scrapers read :attr:`dropped` (the ``/spans`` endpoint
        exposes it) to detect truncation.
    """

    def __init__(
        self,
        enabled: bool = True,
        registry: MetricsRegistry | None = None,
        max_spans: int = 32_768,
    ) -> None:
        self.enabled = bool(enabled)
        self._registry = registry
        self._max_spans = int(max_spans)
        self._local = threading.local()
        #: Finished spans, completion order; a ring of the most recent
        #: ``max_spans`` records.
        self.records: deque[SpanRecord] = deque(maxlen=max(self._max_spans, 0))
        #: Span records evicted from the ring once ``max_spans`` was hit.
        self.dropped = 0

    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs: object) -> Span | _NullSpan:
        """A context-manager span named ``name`` (no-op when disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        return Span(self, name, attrs)

    def _finish(self, record: SpanRecord) -> None:
        if len(self.records) >= self._max_spans:
            self.dropped += 1
        self.records.append(record)
        if self._registry is not None:
            self._registry.histogram(
                SPAN_METRIC_PREFIX + record.name
            ).record(record.seconds)

    def spans(self, name: str | None = None) -> list[SpanRecord]:
        """Finished spans (a defensive copy), optionally filtered by name.

        Always a fresh list — never the live ring — so callers can sort,
        slice, or hold the result while spans keep finishing.  When the
        ring has wrapped, only the most recent ``max_spans`` records
        remain; :attr:`dropped` counts the evicted rest.
        """
        if name is None:
            return list(self.records)
        return [r for r in self.records if r.name == name]

    def total_seconds(self, name: str) -> float:
        """Summed duration of all finished spans called ``name``."""
        return sum(r.seconds for r in self.records if r.name == name)


#: Shared always-off tracer: safe default for un-instrumented call sites.
DISABLED = Tracer(enabled=False)
