"""Exporters: render metrics as Prometheus text or a JSON snapshot.

The telemetry core (PR 6) records; this module makes the recordings
*consumable*.  Two formats, both produced by pure functions over plain
``counters``/``gauges``/``histograms`` mappings, so the same renderers
serve a live :class:`~repro.telemetry.metrics.MetricsRegistry` (the
``/metrics`` endpoint) and a closed
:class:`~repro.telemetry.metrics.WindowSnapshot` delta (per-window
exposition in tests and tooling):

* **Prometheus text exposition** (:func:`render_prometheus`) — counters
  get the conventional ``_total`` suffix, gauges export verbatim, and a
  :class:`~repro.telemetry.metrics.LatencyHistogram` becomes cumulative
  ``_bucket{le="..."}`` lines plus ``_sum``/``_count``, derived from the
  existing log-scale buckets.  Only occupied bucket edges are emitted
  (the histograms are sparse by design) plus the mandatory ``+Inf``
  line, so the exposition stays small while remaining valid: cumulative
  counts are monotone and the last bucket always equals ``_count``.
* **JSON snapshot** (:func:`json_snapshot`) — a stable, sorted document
  carrying every instrument plus each histogram's bucket layout, so
  :func:`histogram_from_snapshot` can reconstruct a histogram (and its
  percentiles) losslessly on the other side of the wire.

Edge cases are part of the contract: an empty histogram exports
``_count 0`` with a zero ``+Inf`` bucket and no NaN anywhere; samples
clamped below the histogram range surface under the lowest bucket edge
and samples clamped above it under ``le="+Inf"`` (the last physical
bucket's nominal upper edge would be a lie for overflow samples).
"""

from __future__ import annotations

import re

from repro.telemetry.metrics import (
    LatencyHistogram,
    MetricsRegistry,
    WindowSnapshot,
)

__all__ = [
    "histogram_from_snapshot",
    "json_snapshot",
    "registry_prometheus",
    "render_prometheus",
    "snapshot_prometheus",
]

#: Prefix stamped onto every exported metric name.
NAMESPACE = "repro"

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")
_LEADING_DIGIT = re.compile(r"^[0-9]")


def _metric_name(name: str, namespace: str) -> str:
    """``query.seconds`` -> ``repro_query_seconds`` (Prometheus charset)."""
    flat = _INVALID.sub("_", name)
    if _LEADING_DIGIT.match(flat):
        flat = "_" + flat
    return f"{namespace}_{flat}" if namespace else flat


def _escape_help(text: str) -> str:
    """Escape backslashes and newlines per the text-exposition spec."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _fmt(value: float) -> str:
    """Float formatting: integral values stay short, rest keep precision."""
    v = float(value)
    if v != v:  # NaN must never reach the wire
        return "0"
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(v)


def _histogram_lines(
    name: str, hist: LatencyHistogram, out: list[str]
) -> None:
    """Cumulative ``_bucket``/``_sum``/``_count`` lines for one histogram.

    Bucket ``le`` bounds are the log-scale buckets' upper edges.  The
    last physical bucket also holds every sample clamped at or above
    ``hi``, so it is exported as ``le="+Inf"`` rather than its nominal
    edge; samples clamped below ``lo`` sit in bucket 0 and therefore
    under the lowest edge.  Empty occupied-bucket runs are skipped —
    cumulative counts stay monotone regardless.
    """
    out.append(f"# TYPE {name} histogram")
    cumulative = 0
    for i, c in enumerate(hist.counts[:-1]):
        if c:
            cumulative += c
            upper = hist._bucket_bounds(i)[1]
            out.append(
                f'{name}_bucket{{le="{_fmt(upper)}"}} {cumulative}'
            )
    out.append(f'{name}_bucket{{le="+Inf"}} {hist.count}')
    out.append(f"{name}_sum {_fmt(hist.sum)}")
    out.append(f"{name}_count {hist.count}")


def render_prometheus(
    counters: dict[str, int],
    gauges: dict[str, float],
    histograms: dict[str, LatencyHistogram],
    namespace: str = NAMESPACE,
    help_text: dict[str, str] | None = None,
) -> str:
    """Prometheus text exposition over plain instrument mappings.

    Pure function: callers pass whatever view they hold — a live
    registry's cumulative state or one window's deltas.  ``help_text``
    optionally maps *original* metric names to ``# HELP`` lines.
    """
    help_text = help_text or {}
    out: list[str] = []
    for name in sorted(counters):
        flat = _metric_name(name, namespace) + "_total"
        if name in help_text:
            out.append(f"# HELP {flat} {_escape_help(help_text[name])}")
        out.append(f"# TYPE {flat} counter")
        out.append(f"{flat} {int(counters[name])}")
    for name in sorted(gauges):
        flat = _metric_name(name, namespace)
        if name in help_text:
            out.append(f"# HELP {flat} {_escape_help(help_text[name])}")
        out.append(f"# TYPE {flat} gauge")
        out.append(f"{flat} {_fmt(gauges[name])}")
    for name in sorted(histograms):
        flat = _metric_name(name, namespace)
        if name in help_text:
            out.append(f"# HELP {flat} {_escape_help(help_text[name])}")
        _histogram_lines(flat, histograms[name], out)
    return "\n".join(out) + "\n"


def registry_prometheus(
    registry: MetricsRegistry, namespace: str = NAMESPACE
) -> str:
    """The full cumulative state of a registry as Prometheus text."""
    return render_prometheus(
        registry.counters(),
        registry.gauges(),
        registry.histograms(),
        namespace=namespace,
    )


def snapshot_prometheus(
    window: WindowSnapshot, namespace: str = NAMESPACE
) -> str:
    """One closed window's deltas as Prometheus text (same renderer)."""
    return render_prometheus(
        window.counters,
        window.gauges,
        window.histograms,
        namespace=namespace,
    )


def _histogram_dict(hist: LatencyHistogram) -> dict:
    """``to_dict(include_buckets=True)`` plus the bucket layout.

    The layout makes the snapshot self-describing:
    :func:`histogram_from_snapshot` rebuilds an identical histogram
    without access to the producing process.
    """
    out = hist.to_dict(include_buckets=True)
    out["layout"] = {
        "lo": hist.lo,
        "hi": hist.hi,
        "buckets_per_decade": hist.buckets_per_decade,
    }
    return out


def json_snapshot(registry: MetricsRegistry) -> dict:
    """A stable JSON-ready snapshot of a registry's cumulative state.

    Keys are sorted at every level so two snapshots of identical state
    serialize identically (golden files, diffing, caching all rely on
    it).
    """
    return {
        "counters": dict(sorted(registry.counters().items())),
        "gauges": dict(sorted(registry.gauges().items())),
        "histograms": {
            name: _histogram_dict(hist)
            for name, hist in sorted(registry.histograms().items())
        },
    }


def histogram_from_snapshot(doc: dict) -> LatencyHistogram:
    """Rebuild a :class:`LatencyHistogram` from its snapshot dict.

    Inverse of the histogram entries produced by :func:`json_snapshot`:
    the returned histogram reports the same count/sum/max and the same
    percentiles as the original (bucket counts are restored exactly).
    """
    layout = doc["layout"]
    hist = LatencyHistogram(
        lo=layout["lo"],
        hi=layout["hi"],
        buckets_per_decade=layout["buckets_per_decade"],
    )
    for key, value in doc.get("buckets", {}).items():
        hist.counts[int(key)] = int(value)
    hist.count = int(doc["count"])
    hist.sum = float(doc["sum"])
    hist.max = float(doc["max"])
    return hist
