"""QUASII: the QUery-Aware Spatial Incremental Index (Sections 4 and 5).

The index is built *as a side effect of query execution*.  Each query:

1. walks the d-level slice hierarchy depth-first (Algorithm 1), binary
   searching each sibling list for the first candidate slice;
2. *refines* every candidate slice that still exceeds its level threshold
   (Algorithm 2) by cracking the data array on the query's boundaries —
   three-way, two-way, or artificial (midpoint) slicing — with the query
   **extended by the maximum object extent** on the lower side so that
   representing objects by their lower coordinate never loses results;
3. collects fully refined bottom-level slices as candidate rows; the
   shared refine kernel (:mod:`repro.index.base`) then tests them
   against the raw window under the query's predicate and result mode.

The hierarchy converges toward an STR-like tiling of exactly the regions
queries touch; untouched regions stay coarse (a single unsorted run of the
data array).

Updates (beyond the paper — Section 7 leaves them as future work):
inserts are staged in an :class:`~repro.updates.buffer.UpdateBuffer` and
merged lazily: the next query drains the buffer into the store as an
appended run headed by a fresh coarse top-level slice, which the normal
Algorithm 1/2 machinery then cracks exactly like any unrefined region.
The index therefore maintains a *forest* of top-level slice lists — the
original hierarchy plus one per absorbed run — each converging
independently under the queries that touch it.  Deletes tombstone rows in
place (slice ranges stay valid; leaf scans skip dead rows via the store's
live mask); :meth:`~repro.index.base.MutableSpatialIndex.compact`
physically reclaims the tombstones and *defragments* the forest — slice
ranges remap through the compaction's position map, emptied slices drop,
hollowed-out fragments merge back together, and final-slice MBBs
re-tighten to the surviving rows.
"""

from __future__ import annotations


import numpy as np

from repro.core.config import PAPER_TAU, QuasiiConfig
from repro.core.cracking import (
    REPRESENTATIVES,
    crack,
    range_dim_stats,
    representative_keys,
)
from repro.core.slices import Slice, SliceList
from repro.datasets.store import BoxStore
from repro.errors import ConfigurationError, DatasetError, GeometryError
from repro.index.base import MutableSpatialIndex
from repro.queries.query import Query, QueryPlan, QueryResult
from repro.updates.buffer import UpdateBuffer

_INF = float("inf")


class QuasiiIndex(MutableSpatialIndex):
    """The paper's core contribution, over a shared :class:`BoxStore`.

    Parameters
    ----------
    store:
        The data array; **physically reordered** by queries.
    config:
        Explicit threshold ladder; defaults to the paper's Equation-1
        ladder for the store with bottom threshold ``tau``.
    tau:
        Bottom-level slice capacity, used only when ``config`` is omitted
        (the paper's single parameter; default 60).
    representative:
        Which point represents an object during slice assignment:
        ``"lower"`` (the paper's choice — free, it is part of the MBB),
        ``"center"``, or ``"upper"`` (footnote 1 notes these "can equally
        be used"; the ablation bench compares them).  Query extension
        adapts automatically: the window grows by the maximum object
        extent on whichever side(s) the representative can under-report.
    artificial_split:
        How artificial refinement picks its cut: ``"midpoint"`` (the
        paper's ``c = (xl + xu) / 2`` — space-balanced, no extra pass) or
        ``"median"`` (data-balanced like STR's equal-count tiles, at the
        price of a selection pass).  The ``ablation-split`` bench compares
        them.
    max_runs:
        Cap on appended insert runs kept as separate top-level slice
        lists.  Past it, all appended runs collapse back into one coarse
        run (their refinement is discarded and re-earned by later
        queries), bounding the per-query forest walk under sustained
        ingestion.
    bulk_flush_threshold:
        Appended runs of at least this many rows are *STR bulk-loaded*
        at merge time — sorted level by level into an already-refined
        slice hierarchy (the eager version of what queries would crack
        out incrementally, exactly as STR inspired Algorithm 2) —
        instead of joining the forest as one coarse run.  Large flushes
        would otherwise be cracked from scratch by the next queries that
        touch them, repeatedly paying O(run) passes; one bulk sort is
        cheaper and leaves nothing to converge.  ``None`` (default)
        derives the threshold as the top-level ladder threshold: any
        smaller run is already "refined at level 0" by definition and
        stays lazy.

    Examples
    --------
    >>> from repro.datasets import make_uniform
    >>> from repro.queries import uniform_workload
    >>> ds = make_uniform(10_000, seed=7)
    >>> index = QuasiiIndex(ds.store)
    >>> queries = uniform_workload(ds.universe, n_queries=5, seed=7)
    >>> results = [index.query(q) for q in queries]   # index builds itself
    """

    name = "QUASII"

    #: Supported artificial-refinement cut strategies.
    ARTIFICIAL_SPLITS = ("midpoint", "median")

    def __init__(
        self,
        store: BoxStore,
        config: QuasiiConfig | None = None,
        tau: int = PAPER_TAU,
        representative: str = "lower",
        artificial_split: str = "midpoint",
        max_runs: int = 8,
        bulk_flush_threshold: int | None = None,
    ) -> None:
        super().__init__(store)
        if max_runs < 1:
            raise ConfigurationError(f"max_runs must be >= 1, got {max_runs}")
        if bulk_flush_threshold is not None and bulk_flush_threshold < 1:
            raise ConfigurationError(
                f"bulk_flush_threshold must be >= 1, got {bulk_flush_threshold}"
            )
        self._max_runs = int(max_runs)
        # Auto-derived configs over an *empty* store are provisional:
        # the ladder is re-derived from the first absorbed run's actual
        # size (see _absorb_pending), so a start-empty index bulk-loaded
        # with a large batch does not keep thresholds sized for n = 1
        # (which would shred the run into hundreds of top-level slabs).
        self._provisional_config = config is None and store.n == 0
        self._tau = int(tau)
        if config is None:
            config = QuasiiConfig.for_dataset(max(store.n, 1), store.ndim, tau)
        if config.ndim != store.ndim:
            raise ValueError(
                f"config is for {config.ndim} dims, store has {store.ndim}"
            )
        if representative not in REPRESENTATIVES:
            raise ConfigurationError(
                f"unknown representative {representative!r}; expected one "
                f"of {REPRESENTATIVES}"
            )
        if artificial_split not in self.ARTIFICIAL_SPLITS:
            raise ConfigurationError(
                f"unknown artificial_split {artificial_split!r}; expected "
                f"one of {self.ARTIFICIAL_SPLITS}"
            )
        self._config = config
        self._representative = representative
        self._artificial_split = artificial_split
        self._explicit_bulk_flush = bulk_flush_threshold is not None
        self._bulk_flush_threshold = (
            int(bulk_flush_threshold)
            if bulk_flush_threshold is not None
            else config.threshold(0)
        )
        # Query extension margin: per-dimension maximum object extent
        # (Stefanakis et al.); refreshed whenever an absorbed insert run
        # contains a larger object (growing it is conservative-safe).
        self._max_extent = store.max_extent.copy()
        # Rows present at construction: when nonzero, tops[0] is the
        # main query-built hierarchy and is never bulk-loaded by flushes.
        self._initial_rows = store.n
        # The slice forest: the main hierarchy over the initial rows plus
        # one top-level list per absorbed insert run, in row order.  An
        # empty store starts with an empty forest; the first absorbed run
        # becomes its root.
        self._tops: list[SliceList] = (
            [SliceList(0, [self._make_slice(0, 0, store.n, -_INF)])]
            if store.n
            else []
        )
        # Pending inserts, drained into the store by the next query.
        self._buffer = UpdateBuffer(store)

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------
    @property
    def config(self) -> QuasiiConfig:
        """The resolved threshold ladder."""
        return self._config

    @property
    def representative(self) -> str:
        """The slice-assignment representative in use."""
        return self._representative

    @property
    def _top(self) -> SliceList:
        """The main hierarchy (over the store's initial rows)."""
        return self._tops[0]

    @property
    def runs(self) -> int:
        """Number of top-level slice lists (1 + absorbed insert runs)."""
        return len(self._tops)

    def _extended_bounds(self, query: Query, dim: int) -> tuple[float, float]:
        """Query range on ``dim`` extended for the chosen representative.

        An object intersecting the window can have its representative key
        outside the window by at most the maximum object extent (lower
        representative: only below; upper: only above; center: half on
        each side) — the query-extension technique of Section 5.2.
        """
        lo = float(query.lo[dim])
        hi = float(query.hi[dim])
        ext = float(self._max_extent[dim])
        if self._representative == "lower":
            return lo - ext, hi
        if self._representative == "upper":
            return lo, hi + ext
        return lo - ext / 2.0, hi + ext / 2.0

    def build(self) -> None:
        """No-op: QUASII has no pre-processing step (that is the point)."""
        self._built = True

    def _candidates(self, query: Query) -> np.ndarray:
        if len(self._buffer):
            self._absorb_pending()
        out: list[np.ndarray] = []
        for top in self._tops:
            self._query_level(top, query, out)
        if not out:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(out)

    def _execute_batch(self, queries: list[Query]) -> list[QueryResult]:
        """Amortize the buffer merge across the batch, then crack per query.

        Draining the update buffer (and any run collapse / STR bulk load
        it triggers) happens at most once per batch instead of being
        re-checked on every call; each query then refines the forest
        exactly as in single-shot execution — cracking is inherently
        per-query, that is the point of the index.
        """
        if len(self._buffer):
            self._absorb_pending()
        return super()._execute_batch(queries)

    def _plan(self, query: Query) -> QueryPlan:
        """Walk the current forest without refining or merging anything.

        Counts the slices the walk would visit and the rows of every
        overlapping deepest-materialized slice; pending buffered rows
        are added whole (execution would absorb them into a coarse run
        first).  ``exact=False`` — execution cracks oversized slices,
        so the real scan is typically narrower.
        """
        nodes = 0
        candidates = 0
        stack: list[SliceList] = list(self._tops)
        while stack:
            slices = stack.pop()
            dim = slices.level
            extended_lo, extended_hi = self._extended_bounds(query, dim)
            i = slices.find_start(extended_lo)
            while i < len(slices):
                node = slices[i]
                if node.cut_lo > extended_hi:
                    break
                nodes += 1
                if node.intersects(query.lo, query.hi):
                    if (
                        node.level == self._config.ndim - 1
                        or node.children is None
                    ):
                        candidates += node.size
                    else:
                        stack.append(node.children)
                i += 1
        candidates += len(self._buffer)
        return QueryPlan(
            index=self.name,
            query=query,
            nodes=nodes,
            candidates=candidates,
            exact=False,
        )

    # ------------------------------------------------------------------
    # Updates: staged inserts, lazy merge, tombstone deletes
    # ------------------------------------------------------------------
    def _insert(
        self, lo: np.ndarray, hi: np.ndarray, ids: np.ndarray | None
    ) -> np.ndarray:
        """Stage the batch; it reaches the hierarchy on the next query.

        Collisions with still-buffered ids are rejected upstream by the
        store's collision gate: every staged id is registered via
        :meth:`~repro.datasets.store.BoxStore.stage_ids`.
        """
        return self._buffer.add(lo, hi, ids)

    def _delete(self, ids: np.ndarray) -> int:
        """Tombstone rows in place; still-buffered targets just vanish.

        All-or-nothing: the store half of the batch is applied (and
        validated — unknown ids raise there) *before* the buffer half is
        discarded, so a failed delete leaves staged rows intact.
        """
        staged_mask = np.isin(ids, self._buffer.ids)
        count = 0
        remaining = ids[~staged_mask]
        if remaining.size:
            count += self._store.delete_ids(remaining)
        count += int(self._buffer.discard(ids[staged_mask]).size)
        return count

    def pending_updates(self) -> int:
        """Staged rows not yet merged into the slice forest."""
        return len(self._buffer)

    def flush_updates(self) -> int:
        """Drain the update buffer into the forest without waiting for a
        query; returns the rows merged (bumps ``merges`` when nonzero)."""
        self._check_epoch()
        pending = len(self._buffer)
        if pending:
            self._absorb_pending()
        return pending

    def _absorb_pending(self) -> None:
        """Drain the buffer into the store as a coarse appended run.

        This is the lazy merge: the run joins the forest as one unrefined
        top-level slice (or extends the previous run while that is still
        virgin), and subsequent queries crack it via Algorithm 2 exactly
        like any other coarse region — the insert path reuses the paper's
        own refinement machinery instead of adding a second one.
        """
        lo, hi, ids = self._buffer.drain()
        begin = self._store.n
        try:
            self._store.append_validated(lo, hi, ids)
        except (DatasetError, GeometryError):
            # Never lose a staged batch: insert() pre-validates, so this
            # is a can't-happen guard, but re-stage before propagating.
            # These are the only errors the store's append path raises.
            self._buffer.add(lo, hi, ids)
            raise
        self._seen_epoch = self._store.epoch
        end = self._store.n
        self._max_extent = np.maximum(self._max_extent, self._store.max_extent)
        if self._provisional_config and not self._tops:
            # First absorbed run of a start-empty index: the real size
            # is known now — re-derive the auto ladder for it so a bulk
            # load refines into sensibly-sized slabs instead of the
            # n = 1 minimal ladder's.
            self._config = QuasiiConfig.for_dataset(
                max(end, 1), self._store.ndim, self._tau
            )
            if not self._explicit_bulk_flush:
                self._bulk_flush_threshold = self._config.threshold(0)
            self._provisional_config = False
        tail_list = self._tops[-1] if self._tops else None
        tail = tail_list.slices[-1] if tail_list is not None else None
        coalesce = (
            tail_list is not None
            and len(tail_list) == 1
            and tail.children is None
            and tail.cut_lo == -_INF
        )
        # A still-virgin tail *insert run* and the fresh batch form one
        # contiguous coarse region; treat them as a single run for the
        # size check so a stream of small batches can still earn a bulk
        # load.  The main hierarchy is excluded even while virgin: bulk
        # loading governs appended runs only — eagerly sorting initial
        # rows no query asked about would forfeit query-driven building.
        tail_is_insert_run = coalesce and (
            len(self._tops) > 1 or self._initial_rows == 0
        )
        run_begin = tail.begin if tail_is_insert_run else begin
        if end - run_begin >= self._bulk_flush_threshold:
            # Large run: STR bulk load it into an already-refined slice
            # hierarchy instead of leaving a coarse run for queries to
            # crack from scratch.
            if tail_is_insert_run:
                self._tops.pop()
            self._tops.append(self._build_str_run(run_begin, end))
            if len(self._tops) - 1 > self._max_runs:
                self._collapse_runs()
        elif coalesce:
            # The previous run is still one uncracked slice holding the
            # whole key range: coalesce into it (union the recorded MBB
            # over the batch, then re-check the threshold) instead of
            # growing the forest — consecutive insert batches pile into a
            # single coarse run until a query cracks it.
            tail.end = end
            tail.mbb_lo = np.minimum(tail.mbb_lo, lo.min(axis=0))
            tail.mbb_hi = np.maximum(tail.mbb_hi, hi.max(axis=0))
            tail.final = False
            self._maybe_finalize(tail)
        else:
            self._tops.append(
                SliceList(0, [self._make_slice(0, begin, end, -_INF)])
            )
            if len(self._tops) - 1 > self._max_runs:
                self._collapse_runs()
        self.stats.merges += 1

    def _build_str_run(self, begin: int, end: int) -> SliceList:
        """STR bulk load rows ``[begin, end)`` into a refined run.

        Applies STR's sort-and-slab recursion with the ladder's per-level
        thresholds: sort the range on the level's representative key, cut
        it into slabs of at most the level threshold, recurse on the next
        dimension inside each slab.  The result is the hierarchy the
        incremental path would converge to if queries covered the run —
        built eagerly for the price of ``d`` sorts over the run.
        """
        ndim = self._store.ndim
        return SliceList(
            0,
            self._str_slices(
                0,
                begin,
                end,
                np.full(ndim, -_INF, dtype=np.float64),
                np.full(ndim, _INF, dtype=np.float64),
            ),
        )

    def _str_slices(
        self,
        level: int,
        begin: int,
        end: int,
        parent_lo: np.ndarray,
        parent_hi: np.ndarray,
    ) -> list[Slice]:
        """One sorted sibling run of the STR bulk load, children included.

        Slab boundaries land only between *distinct* representative keys
        (ties push a boundary outward), so every cut bound satisfies the
        strict sibling invariants; a slab stretched past the threshold by
        duplicate keys simply stays non-final and is refined — or passed
        through, its keys being indistinguishable — by later queries.
        """
        store = self._store
        keys = representative_keys(store, begin, end, level, self._representative)
        order = np.argsort(keys, kind="stable")
        store.apply_order_range(begin, end, order)
        self.stats.rows_reorganized += end - begin
        # Re-read after the permutation: the range is now key-sorted.
        keys = representative_keys(store, begin, end, level, self._representative)
        tau = self._config.threshold(level)
        out: list[Slice] = []
        pos = begin
        while pos < end:
            nxt = min(pos + tau, end)
            if nxt < end and keys[nxt - begin] == keys[nxt - begin - 1]:
                # Only the not-yet-slabbed tail [pos, end) is still
                # key-sorted (child recursion permutes finished slabs on
                # deeper dimensions), so search within it.
                tail = keys[pos - begin : end - begin]
                bound = keys[nxt - begin]
                first = pos + int(np.searchsorted(tail, bound, side="left"))
                if first > pos:
                    nxt = first
                else:
                    nxt = pos + int(np.searchsorted(tail, bound, side="right"))
            cut_lo = -_INF if pos == begin else float(keys[pos - begin])
            mbb_lo = parent_lo.copy()
            mbb_hi = parent_hi.copy()
            mbb_lo[level] = float(store.lo[pos:nxt, level].min())
            mbb_hi[level] = float(store.hi[pos:nxt, level].max())
            node = Slice(level, pos, nxt, cut_lo, mbb_lo, mbb_hi)
            if level + 1 < self._config.ndim:
                node.children = SliceList(
                    level + 1,
                    self._str_slices(level + 1, pos, nxt, mbb_lo, mbb_hi),
                )
            self._maybe_finalize(node)
            out.append(node)
            pos = nxt
        return out

    def _collapse_runs(self) -> None:
        """Defragment: fold every appended run back into one coarse run.

        Appended runs occupy contiguous tail rows, so a single open
        top-level slice over their union is always structurally valid;
        the refinement they had accumulated is discarded and re-earned by
        the queries that still need it.  This bounds the per-query forest
        walk at ``max_runs + 1`` MBB tests plus the main hierarchy.
        """
        begin = self._tops[1].slices[0].begin
        end = self._tops[-1].slices[-1].end
        del self._tops[1:]
        self._tops.append(SliceList(0, [self._make_slice(0, begin, end, -_INF)]))

    # ------------------------------------------------------------------
    # Compaction: slice-forest defragmentation
    # ------------------------------------------------------------------
    def _on_compaction(self, remap: np.ndarray) -> None:
        """Defragment the slice forest after the store dropped dead rows.

        Compaction is stable, so the new position of any range boundary
        ``b`` is the number of surviving rows in ``[0, b)``; every
        slice's ``begin``/``end`` remaps through that prefix sum and
        siblings stay contiguous by construction.  Slices left empty are
        dropped (the paper's s23 rule, applied at maintenance time),
        adjacent survivors whose remains now fit one slice are merged
        back together, and every slice meeting its threshold is
        finalized with an exact MBB recomputed from the surviving rows —
        so post-compaction queries stop visiting dead space *and* stop
        walking fragments deletes hollowed out.
        """
        pos = np.concatenate(([0], np.cumsum(remap >= 0)))
        self._tops = [
            lst
            for lst in (self._remap_list(top, pos) for top in self._tops)
            if lst is not None
        ]
        # Size of the surviving main hierarchy; 0 hands "first run may
        # bulk-load" semantics over when the initial rows all died.
        self._initial_rows = int(pos[self._initial_rows])

    def _remap_list(self, lst: SliceList, pos: np.ndarray) -> SliceList | None:
        """Remap one sibling list through ``pos``; None when it empties."""
        survivors: list[Slice] = []
        for s in lst:
            begin = int(pos[s.begin])
            end = int(pos[s.end])
            if begin == end:
                continue  # fully tombstoned: nothing left to cover
            s.begin = begin
            s.end = end
            if s.children is not None:
                s.children = self._remap_list(s.children, pos)
            survivors.append(s)
        if not survivors:
            return None
        merged = self._merge_siblings(survivors)
        for s in merged:
            self._retighten(s)
        return SliceList(lst.level, merged)

    def _merge_siblings(self, slices: list[Slice]) -> list[Slice]:
        """Greedily merge adjacent *childless* siblings that fit one slice.

        Deletes can hollow a refined region into long runs of near-empty
        fragments; folding neighbours back into threshold-sized slices
        keeps the per-query sibling walk proportional to the live data,
        not to the history of cracks.  A merge keeps the left piece's
        cut bound (all absorbed keys lie above it).  Only slices without
        materialized children merge: discarding a refined subtree would
        hand its cracking cost right back to the next queries, turning
        the maintenance step into a latency regression.
        """
        tau = self._config.threshold(slices[0].level)
        out = [slices[0]]
        for s in slices[1:]:
            last = out[-1]
            if (
                last.children is None
                and s.children is None
                and last.size + s.size <= tau
            ):
                last.end = s.end
                last.mbb_lo = np.minimum(last.mbb_lo, s.mbb_lo)
                last.mbb_hi = np.maximum(last.mbb_hi, s.mbb_hi)
                last.final = False  # re-finalized by _retighten
            else:
                out.append(s)
        return out

    def _retighten(self, node: Slice) -> None:
        """Exact-MBB finalize for slices that now meet their threshold.

        Survivor MBBs recompute from live rows only, so boxes that
        existed solely in tombstones stop inflating slice bounds (and
        with them, every ancestor test a query pays).
        """
        if node.size <= self._config.threshold(node.level):
            node.finalize_mbb(self._store)
            node.final = True

    # ------------------------------------------------------------------
    # Algorithm 1: query processing
    # ------------------------------------------------------------------
    def _query_level(
        self, slices: SliceList, query: Query, out: list[np.ndarray]
    ) -> None:
        dim = slices.level
        extended_lo, extended_hi = self._extended_bounds(query, dim)
        i = slices.find_start(extended_lo)
        while i < len(slices):
            node = slices[i]
            if node.cut_lo > extended_hi:
                break
            self.stats.nodes_visited += 1
            if not node.intersects(query.lo, query.hi):
                i += 1
                continue
            refined = self._refine(node, query)
            if refined is not None:
                slices.replace(i, refined)
                # Re-enter the loop at the same position: the sub-slices are
                # individually below threshold (or non-overlapping) so each
                # is handled in a single further iteration.
                continue
            if node.level == self._config.ndim - 1:
                self._scan_leaf(node, query, out)
            else:
                if node.children is None:
                    node.children = self._default_child(node)
                self._query_level(node.children, query, out)
            i += 1

    def _scan_leaf(
        self, node: Slice, query: Query, out: list[np.ndarray]
    ) -> None:
        """Bottom level: emit the slice members as candidate rows.

        The exact predicate test happens once in the shared refine
        kernel, after the walk finishes — safe because cracking is
        range-local, so later refinements of *other* slices never move
        rows out of an already-collected leaf range.
        """
        self.stats.objects_tested += node.size
        out.append(np.arange(node.begin, node.end, dtype=np.int64))

    def _default_child(self, node: Slice) -> SliceList:
        """Lazy default child (Algorithm 1, Line 15): same rows, next level."""
        child = Slice(
            node.level + 1,
            node.begin,
            node.end,
            -_INF,
            node.mbb_lo.copy(),
            node.mbb_hi.copy(),
        )
        self._maybe_finalize(child)
        return SliceList(node.level + 1, [child])

    # ------------------------------------------------------------------
    # Algorithm 2: refinement
    # ------------------------------------------------------------------
    def _refine(self, node: Slice, query: Query) -> list[Slice] | None:
        """Refine ``node`` against ``query``; None means "already refined".

        Returns the replacement sibling run (>= 1 slices, query-overlapping
        ones guaranteed at/below threshold) after physically cracking the
        store, or ``None`` when no reorganization is possible/needed.
        """
        tau = self._config.threshold(node.level)
        if node.final or node.size <= tau:
            return None
        dim = node.level
        kmin, kmax, dim_lo, dim_hi = range_dim_stats(
            self._store, node.begin, node.end, dim, self._representative
        )
        # Tighten the recorded open-ended bounds while we have them.
        node.mbb_lo[dim] = dim_lo
        node.mbb_hi[dim] = dim_hi
        if kmin == kmax:
            # Every representative key identical: this dimension cannot
            # discriminate.  Treat as refined; deeper levels take over.
            return None

        extended_lo, extended_hi = self._extended_bounds(query, dim)
        # Upper crack bound is exclusive ("keys < b"), so nudge one ulp up
        # to keep keys == the extended upper bound inside the middle slice.
        upper = float(np.nextafter(extended_hi, _INF))
        bounds = [b for b in (extended_lo, upper) if kmin < b <= kmax]
        # Deduplicate the degenerate case extended_lo == upper.
        if len(bounds) == 2 and bounds[0] == bounds[1]:
            bounds = bounds[:1]

        if bounds:
            # Three-way (both bounds interior) or two-way slicing.
            splits = crack(
                self._store,
                node.begin,
                node.end,
                dim,
                bounds,
                self._representative,
            )
            self.stats.cracks += 1
            self.stats.rows_reorganized += node.size
            edges = [node.begin, *splits, node.end]
            cut_los = [node.cut_lo, *bounds]
        else:
            # Query covers the slice's key range: artificial slicing only.
            edges = [node.begin, node.end]
            cut_los = [node.cut_lo]

        produced: list[Slice] = []
        for piece_idx in range(len(edges) - 1):
            self._emit_refined(
                node,
                edges[piece_idx],
                edges[piece_idx + 1],
                cut_los[piece_idx],
                query,
                tau,
                produced,
            )
        return produced

    def _emit_refined(
        self,
        parent: Slice,
        begin: int,
        end: int,
        cut_lo: float,
        query: Query,
        tau: int,
        out: list[Slice],
    ) -> None:
        """Recursive artificial refinement (Algorithm 2, Lines 8–13).

        Emits the piece as-is when it meets the threshold, lies outside the
        query on this dimension, or cannot be split by value; otherwise
        two-way cracks it at the key-range midpoint and recurses, appending
        results left-to-right so the sibling run stays sorted.
        """
        if begin == end:
            return  # drop empty slices (paper's s23)
        dim = parent.level
        size = end - begin
        kmin, kmax, dim_lo, dim_hi = range_dim_stats(
            self._store, begin, end, dim, self._representative
        )
        # Overlap against the *recorded extents*, which cover the objects
        # regardless of the representative in use.
        overlaps = dim_hi >= query.lo[dim] and dim_lo <= query.hi[dim]
        if size <= tau or not overlaps or kmin == kmax:
            out.append(
                self._make_child_slice(parent, begin, end, cut_lo, dim_lo, dim_hi)
            )
            return
        if self._artificial_split == "median":
            keys = representative_keys(
                self._store, begin, end, dim, self._representative
            )
            mid = float(np.median(keys))
            # The median can coincide with kmin when keys are skewed;
            # cracking needs a cut with a non-empty left side.
            if mid <= kmin:
                mid = float(np.nextafter(kmin, kmax))
        else:
            mid = (kmin + kmax) / 2.0
            if mid <= kmin:
                mid = float(np.nextafter(kmin, kmax))
        splits = crack(self._store, begin, end, dim, [mid], self._representative)
        self.stats.cracks += 1
        self.stats.rows_reorganized += size
        self._emit_refined(parent, begin, splits[0], cut_lo, query, tau, out)
        self._emit_refined(parent, splits[0], end, mid, query, tau, out)

    # ------------------------------------------------------------------
    # Slice construction
    # ------------------------------------------------------------------
    def _make_slice(self, level: int, begin: int, end: int, cut_lo: float) -> Slice:
        """A root-level slice with fully open MBB."""
        ndim = self._store.ndim
        node = Slice(
            level,
            begin,
            end,
            cut_lo,
            np.full(ndim, -_INF, dtype=np.float64),
            np.full(ndim, _INF, dtype=np.float64),
        )
        self._maybe_finalize(node)
        return node

    def _make_child_slice(
        self,
        parent: Slice,
        begin: int,
        end: int,
        cut_lo: float,
        dim_lo: float,
        dim_hi: float,
    ) -> Slice:
        """A refinement product: inherits the parent's recorded bounds on
        other dimensions, records exact bounds on the sliced dimension."""
        mbb_lo = parent.mbb_lo.copy()
        mbb_hi = parent.mbb_hi.copy()
        dim = parent.level
        mbb_lo[dim] = dim_lo
        mbb_hi[dim] = dim_hi
        node = Slice(parent.level, begin, end, cut_lo, mbb_lo, mbb_hi)
        self._maybe_finalize(node)
        return node

    def _maybe_finalize(self, node: Slice) -> None:
        """Mark slices meeting their threshold final with an exact MBB.

        The paper computes the full MBB "only when a slice is completely
        refined" — this is that moment.
        """
        if node.size <= self._config.threshold(node.level):
            node.finalize_mbb(self._store)
            node.final = True

    # ------------------------------------------------------------------
    # Introspection & verification
    # ------------------------------------------------------------------
    def format_structure(self, max_slices_per_level: int = 12) -> str:
        """ASCII rendering of the slice hierarchy (Figure 4's bottom rows).

        Each line shows one slice: level indentation, data-array range,
        cut bound, object count, and refinement state.  Long sibling runs
        are elided after ``max_slices_per_level`` entries.
        """
        dims = "xyzwvu"
        lines: list[str] = []

        def fmt_cut(value: float) -> str:
            return "-inf" if value == -_INF else f"{value:g}"

        def walk(lst: SliceList, depth: int) -> None:
            shown = 0
            for s in lst:
                if shown == max_slices_per_level:
                    lines.append("  " * depth + f"... {len(lst) - shown} more")
                    break
                shown += 1
                dim = dims[s.level] if s.level < len(dims) else str(s.level)
                state = "final" if s.final else "coarse"
                lines.append(
                    "  " * depth
                    + f"{dim}-slice rows[{s.begin}:{s.end}) "
                    + f"cut>={fmt_cut(s.cut_lo)} |{s.size}| {state}"
                )
                if s.children is not None:
                    walk(s.children, depth + 1)

        for run_idx, top in enumerate(self._tops):
            if run_idx:
                lines.append(f"-- appended run {run_idx}")
            walk(top, 0)
        if len(self._buffer):
            lines.append(f"-- update buffer: {len(self._buffer)} pending rows")
        return "\n".join(lines)

    def slice_counts(self) -> list[int]:
        """Number of materialized slices per level (index growth measure)."""
        counts = [0] * self._config.ndim
        stack: list[SliceList] = list(self._tops)
        while stack:
            lst = stack.pop()
            counts[lst.level] += len(lst)
            for s in lst:
                if s.children is not None:
                    stack.append(s.children)
        return counts

    def memory_bytes(self) -> int:
        """Approximate footprint of the slice forest plus the update buffer."""
        total = self._buffer.memory_bytes()
        stack: list[SliceList] = list(self._tops)
        while stack:
            lst = stack.pop()
            total += lst.memory_bytes()
            for s in lst:
                if s.children is not None:
                    stack.append(s.children)
        return total

    def validate_structure(self) -> None:
        """Assert every structural invariant; raises AssertionError on breakage.

        Used by the test suite (and available for debugging) to check:
        sibling ranges tile the parent contiguously in order; cut bounds
        strictly increase and bracket the member keys; recorded MBBs cover
        members (exactly for final slices); thresholds hold for final
        slices; levels are consistent; the forest's runs tile the whole
        store.  Tombstoned rows participate in every structural check
        (they stay physically in place), so the invariants are unaffected
        by deletes.
        """
        d = self._config.ndim
        store = self._store

        def check_list(lst: SliceList, begin: int, end: int) -> None:
            assert lst.level < d, f"level {lst.level} out of range"
            assert len(lst) > 0, "empty sibling list"
            cursor = begin
            prev_cut = None
            for s in lst:
                assert s.level == lst.level, "slice/list level mismatch"
                assert s.begin == cursor, (
                    f"non-contiguous siblings: expected begin {cursor}, "
                    f"got {s.begin}"
                )
                assert s.begin < s.end, "empty slice materialized"
                cursor = s.end
                if prev_cut is not None:
                    assert s.cut_lo > prev_cut, "cut bounds not increasing"
                prev_cut = s.cut_lo
                keys = representative_keys(
                    store, s.begin, s.end, lst.level, self._representative
                )
                assert np.all(keys >= s.cut_lo), "key below slice cut bound"
                sub_lo = store.lo[s.begin : s.end]
                sub_hi = store.hi[s.begin : s.end]
                assert np.all(sub_lo >= s.mbb_lo - 1e-9) and np.all(
                    sub_hi <= s.mbb_hi + 1e-9
                ), "recorded MBB does not cover slice members"
                if s.final:
                    assert s.size <= self._config.threshold(s.level), (
                        f"final slice of {s.size} objects exceeds "
                        f"threshold {self._config.threshold(s.level)}"
                    )
                    assert np.all(np.isfinite(s.mbb_lo)) and np.all(
                        np.isfinite(s.mbb_hi)
                    ), "final slice MBB not fully computed"
                if s.children is not None:
                    assert s.children.level == s.level + 1, "child level skew"
                    check_list(s.children, s.begin, s.end)
            assert cursor == end, "siblings do not cover parent range"
            # Keys must stay below the next sibling's cut bound.
            for left, right in zip(lst.slices, lst.slices[1:]):
                keys = representative_keys(
                    store, left.begin, left.end, lst.level, self._representative
                )
                assert np.all(keys < right.cut_lo), "key spills past cut bound"

        cursor = 0
        for top in self._tops:
            run_end = top.slices[-1].end
            check_list(top, cursor, run_end)
            cursor = run_end
        assert cursor == store.n, "slice forest does not cover the store"
