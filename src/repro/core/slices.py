"""QUASII's hierarchical slice structure (Section 5.1).

A *slice* is one node of the d-level hierarchy: a contiguous range of the
data array, tagged with the level (= dimension) it was produced at, a
minimum bounding box, and optional children refining it on the next
dimension.  Mirroring the paper:

* objects are assigned to slices by their **lower coordinate** on the
  level's dimension, so sibling slices partition their parent's rows into
  contiguous, lower-coordinate-ordered buckets;
* a slice's recorded MBB reflects the objects' **actual extents** — it is
  *open-ended* (±inf on dimensions not yet sliced) until the slice becomes
  fully refined at its level, at which point the exact full MBB is
  computed once;
* siblings are kept sorted so querying can binary-search the start slice.

The sort key here is ``cut_lo`` — the lower bound of the slice's cracking
interval.  Sibling cut intervals tile the parent's key space, giving the
strict ordering invariant binary search needs even though recorded MBBs may
overlap (the paper handles the same overlap by extending the binary-search
range by the maximum slice extent).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterator, Sequence

import numpy as np

from repro.datasets.store import BoxStore


class Slice:
    """One node of QUASII's hierarchy: a level-tagged range of the data array.

    Attributes
    ----------
    level:
        Zero-based level/dimension (0 = x ... d-1 = bottom).
    begin, end:
        Physical row range ``[begin, end)`` in the store.
    cut_lo:
        Lower bound of this slice's cracking interval on its dimension;
        ``-inf`` for the first sibling.  All object lower coordinates in
        the slice are ``>= cut_lo`` and ``<`` the next sibling's ``cut_lo``.
    mbb_lo, mbb_hi:
        Recorded bounding box; ``±inf`` on dimensions with no information
        yet (the paper's open-ended MBB).
    final:
        True once the slice satisfies its level's threshold; its MBB is
        then exact on every dimension.
    children:
        Next-level :class:`SliceList`, or ``None`` until first descended
        into (Algorithm 1 creates a *default child* lazily).
    """

    __slots__ = ("level", "begin", "end", "cut_lo", "mbb_lo", "mbb_hi", "final", "children")

    def __init__(
        self,
        level: int,
        begin: int,
        end: int,
        cut_lo: float,
        mbb_lo: np.ndarray,
        mbb_hi: np.ndarray,
        final: bool = False,
    ) -> None:
        self.level = level
        self.begin = begin
        self.end = end
        self.cut_lo = cut_lo
        self.mbb_lo = mbb_lo
        self.mbb_hi = mbb_hi
        self.final = final
        self.children: SliceList | None = None

    @property
    def size(self) -> int:
        """Number of objects currently assigned to the slice."""
        return self.end - self.begin

    def intersects(self, window_lo: np.ndarray, window_hi: np.ndarray) -> bool:
        """Recorded-MBB vs (raw) query test — Algorithm 1, Line 5.

        ±inf bounds make unknown dimensions pass automatically, so the test
        is conservative (never prunes a slice that could hold a result).
        """
        return bool(
            np.all(self.mbb_lo <= window_hi) and np.all(window_lo <= self.mbb_hi)
        )

    def finalize_mbb(self, store: BoxStore) -> None:
        """Compute the exact full MBB (done once, when fully refined)."""
        if self.size > 0:
            self.mbb_lo = store.lo[self.begin : self.end].min(axis=0)
            self.mbb_hi = store.hi[self.begin : self.end].max(axis=0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Slice(l={self.level}, rows=[{self.begin}:{self.end}), "
            f"cut_lo={self.cut_lo}, final={self.final})"
        )


class SliceList:
    """A sorted sibling list with the parallel cut-bound array for bisect.

    Corresponds to one ``S`` of Algorithm 1: all same-level slices under a
    common parent, sorted by data-array position (equivalently by
    ``cut_lo``).  ``replace`` splices refined sub-slices in place of their
    parent slice, preserving order — the paper's Lines 17–20.
    """

    __slots__ = ("level", "slices", "_cut_los")

    def __init__(self, level: int, slices: Sequence[Slice] = ()) -> None:
        self.level = level
        self.slices: list[Slice] = list(slices)
        self._cut_los: list[float] = [s.cut_lo for s in self.slices]

    def __len__(self) -> int:
        return len(self.slices)

    def __iter__(self) -> Iterator[Slice]:
        return iter(self.slices)

    def __getitem__(self, i: int) -> Slice:
        return self.slices[i]

    def find_start(self, value: float) -> int:
        """Index of the first slice that can hold keys ``>= value``.

        Returns the last slice whose ``cut_lo <= value`` (every earlier
        sibling only holds keys strictly below that slice's ``cut_lo``),
        clamped to the first slice.  This is Algorithm 1's binary search
        with the query already extended by the caller.
        """
        return max(0, bisect_right(self._cut_los, value) - 1)

    def replace(self, index: int, new_slices: Sequence[Slice]) -> None:
        """Splice ``new_slices`` in place of ``slices[index]``, kept sorted."""
        self.slices[index : index + 1] = new_slices
        self._cut_los[index : index + 1] = [s.cut_lo for s in new_slices]

    def memory_bytes(self) -> int:
        """Rough structure footprint (slices + cut array), excluding children."""
        per_slice = 120 + 2 * 8 * (len(self.slices[0].mbb_lo) if self.slices else 0)
        return len(self.slices) * per_slice + 8 * len(self._cut_los)
