"""Cracking kernels: partial, in-place partitioning of the data array.

Database cracking (Idreos et al.) reorganizes an array around query
boundaries instead of fully sorting it.  QUASII lifts the idea to the
spatial domain: each kernel here partitions a *row range* of a
:class:`~repro.datasets.store.BoxStore` on one dimension's **lower
coordinate** (the object's slice-assignment representative, Section 5.1).
SFCracker reuses the value-level helper on its Morton-code array.

Conventions
-----------
* A crack at bound ``b`` puts keys ``< b`` left and keys ``>= b`` right.
* Multi-bound cracks use strictly increasing bounds; bucket ``i`` holds
  keys with ``bounds[i-1] <= key < bounds[i]``.
* Partitioning is stable (equal-bucket rows keep their relative order),
  which keeps repeated cracks deterministic.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.datasets.store import BoxStore
from repro.errors import ConfigurationError


def partition_order(
    keys: np.ndarray, bounds: Sequence[float]
) -> tuple[np.ndarray, np.ndarray]:
    """Stable bucket order for ``keys`` against strictly increasing bounds.

    Returns
    -------
    order:
        Permutation such that ``keys[order]`` is bucket-sorted.
    sizes:
        Length ``len(bounds) + 1`` bucket sizes.
    """
    bounds_arr = np.asarray(bounds, dtype=np.float64)
    if bounds_arr.ndim != 1 or bounds_arr.size == 0:
        raise ConfigurationError("need at least one crack bound")
    if np.any(np.diff(bounds_arr) <= 0):
        raise ConfigurationError(f"crack bounds must be strictly increasing: {bounds}")
    n_buckets = bounds_arr.size + 1
    if n_buckets <= 4:
        # A real crack is a linear pass; emulate with one boolean pass per
        # bucket (stable, O(n * buckets)) instead of an O(n log n) argsort.
        if n_buckets == 2:
            mask = keys < bounds_arr[0]
            order = np.concatenate([np.flatnonzero(mask), np.flatnonzero(~mask)])
            left = int(mask.sum())
            sizes = np.array([left, keys.size - left], dtype=np.int64)
            return order, sizes
        buckets = np.searchsorted(bounds_arr, keys, side="right")
        order = np.concatenate(
            [np.flatnonzero(buckets == b) for b in range(n_buckets)]
        )
        sizes = np.bincount(buckets, minlength=n_buckets)
        return order, sizes
    # Bucket of key k = number of bounds <= k (so 'key < b' goes left of b).
    buckets = np.searchsorted(bounds_arr, keys, side="right")
    order = np.argsort(buckets, kind="stable")
    sizes = np.bincount(buckets, minlength=n_buckets)
    return order, sizes


#: Valid slice-assignment representatives (paper Section 5.1, footnote 1:
#: "The upper coordinate or the object's center can equally be used").
REPRESENTATIVES = ("lower", "center", "upper")


def representative_keys(
    store: BoxStore, begin: int, end: int, dim: int, representative: str
) -> np.ndarray:
    """The per-object slice-assignment key on ``dim`` for a row range."""
    if representative == "lower":
        return store.lo[begin:end, dim]
    if representative == "upper":
        return store.hi[begin:end, dim]
    if representative == "center":
        return (store.lo[begin:end, dim] + store.hi[begin:end, dim]) * 0.5
    raise ConfigurationError(
        f"unknown representative {representative!r}; expected one of "
        f"{REPRESENTATIVES}"
    )


def crack(
    store: BoxStore,
    begin: int,
    end: int,
    dim: int,
    bounds: Sequence[float],
    representative: str = "lower",
) -> list[int]:
    """Crack store rows ``[begin, end)`` on ``dim``'s representative key.

    Physically reorders the rows into ``len(bounds) + 1`` contiguous
    buckets and returns the absolute split positions (``len(bounds)``
    values); bucket ``i`` occupies ``[splits[i-1], splits[i])`` with the
    outer sentinels ``begin`` and ``end``.

    A one-bound call is relational cracking's classic two-way crack; the
    three-way slicing of Algorithm 2 is a two-bound call.  The default
    key is the lower coordinate (the paper's choice).
    """
    keys = representative_keys(store, begin, end, dim, representative)
    order, sizes = partition_order(keys, bounds)
    store.apply_order_range(begin, end, order)
    return [begin + int(c) for c in np.cumsum(sizes)[:-1]]


def crack_values(
    values: np.ndarray,
    payload: np.ndarray,
    begin: int,
    end: int,
    bound: float,
) -> int:
    """Two-way crack of a 1-d key array and its parallel payload, in place.

    Used by SFCracker on the Morton-code array (``values``) with the object
    row permutation as ``payload``.  Returns the absolute split position:
    ``values[begin:split] < bound <= values[split:end]``.
    """
    keys = values[begin:end]
    mask = keys < bound
    order = np.concatenate([np.flatnonzero(mask), np.flatnonzero(~mask)])
    values[begin:end] = keys[order]
    payload[begin:end] = payload[begin:end][order]
    return begin + int(mask.sum())


def range_dim_stats(
    store: BoxStore,
    begin: int,
    end: int,
    dim: int,
    representative: str = "lower",
) -> tuple[float, float, float, float]:
    """``(key min, key max, dim MBB lower, dim MBB upper)`` of a row range.

    One O(range) pass supplying everything slice bookkeeping needs: the
    representative-key range for slicing-type decisions and midpoints,
    plus the dimension's MBB bounds (the paper's open-ended slice box
    records ``[min lower, max upper]`` on the sliced dimension, which is
    representative-independent).
    """
    lo = store.lo[begin:end, dim]
    hi = store.hi[begin:end, dim]
    dim_lo = float(lo.min())
    dim_hi = float(hi.max())
    if representative == "lower":
        kmin, kmax = dim_lo, float(lo.max())
    elif representative == "upper":
        kmin, kmax = float(hi.min()), dim_hi
    elif representative == "center":
        centers = (lo + hi) * 0.5
        kmin, kmax = float(centers.min()), float(centers.max())
    else:
        raise ConfigurationError(
            f"unknown representative {representative!r}; expected one of "
            f"{REPRESENTATIVES}"
        )
    return kmin, kmax, dim_lo, dim_hi
