"""QUASII core: configuration, cracking kernels, slices, and the index."""

from repro.core.config import PAPER_TAU, QuasiiConfig
from repro.core.cracking import (
    REPRESENTATIVES,
    crack,
    crack_values,
    partition_order,
    range_dim_stats,
    representative_keys,
)
from repro.core.quasii import QuasiiIndex
from repro.core.slices import Slice, SliceList

__all__ = [
    "PAPER_TAU",
    "REPRESENTATIVES",
    "QuasiiConfig",
    "QuasiiIndex",
    "Slice",
    "SliceList",
    "crack",
    "crack_values",
    "partition_order",
    "range_dim_stats",
    "representative_keys",
]
