"""QUASII configuration: the single threshold τ and its per-level ladder.

QUASII has one knob (Section 5.1): the bottom-level slice capacity τ — the
paper uses τ = 60, the same as its R-Tree node capacity.  Upper levels get
geometrically larger thresholds: with ``r = ceil((n / τ) ** (1/d))``
sub-slices per slice (Equation 1), the level-``l`` threshold is

    τ_d = τ,     τ_{l-1} = r · τ_l

so the top level tolerates slices of ``r^(d-1) · τ`` objects.  A slice is
*fully refined at its level* once it holds no more than its level's
threshold; only then does querying descend into the next dimension.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Bottom-level slice capacity used throughout the paper's evaluation.
PAPER_TAU = 60


@dataclass(frozen=True)
class QuasiiConfig:
    """Resolved QUASII configuration for a concrete dataset.

    Use :meth:`for_dataset` to derive the per-level ladder from the paper's
    formula; construct directly (with explicit ``level_thresholds``) only in
    tests that need a handcrafted ladder, such as the paper's Figure 4
    walk-through (τ_x = 4, τ_y = 2).

    Attributes
    ----------
    ndim:
        Dataset dimensionality ``d`` = number of index levels.
    level_thresholds:
        ``d`` thresholds, top level first, non-increasing, ending in τ.
    fanout:
        The ``r`` of Equation 1 (sub-slices per slice), kept for reports.
    """

    ndim: int
    level_thresholds: tuple[int, ...]
    fanout: int = 0

    def __post_init__(self) -> None:
        if self.ndim < 1:
            raise ConfigurationError(f"need ndim >= 1, got {self.ndim}")
        if len(self.level_thresholds) != self.ndim:
            raise ConfigurationError(
                f"need one threshold per dimension: got "
                f"{len(self.level_thresholds)} thresholds for {self.ndim} dims"
            )
        for tau in self.level_thresholds:
            if tau < 1:
                raise ConfigurationError(
                    f"thresholds must be >= 1, got {self.level_thresholds}"
                )
        if any(
            a < b
            for a, b in zip(self.level_thresholds, self.level_thresholds[1:])
        ):
            raise ConfigurationError(
                "thresholds must be non-increasing from top to bottom, got "
                f"{self.level_thresholds}"
            )

    @classmethod
    def for_dataset(cls, n: int, ndim: int = 3, tau: int = PAPER_TAU) -> QuasiiConfig:
        """Derive the ladder from dataset size per the paper's Equation 1."""
        if n < 1:
            raise ConfigurationError(f"need a positive object count, got {n}")
        if tau < 1:
            raise ConfigurationError(f"need tau >= 1, got {tau}")
        if ndim < 1:
            raise ConfigurationError(f"need ndim >= 1, got {ndim}")
        partitions = max(1, math.ceil(n / tau))
        fanout = max(1, math.ceil(partitions ** (1.0 / ndim)))
        thresholds = [tau]
        for _ in range(ndim - 1):
            thresholds.append(thresholds[-1] * fanout)
        thresholds.reverse()
        return cls(ndim=ndim, level_thresholds=tuple(thresholds), fanout=fanout)

    def threshold(self, level: int) -> int:
        """τ for a zero-based level (0 = top/x ... d-1 = bottom)."""
        if not 0 <= level < self.ndim:
            raise ConfigurationError(
                f"level {level} out of range for {self.ndim} dims"
            )
        return self.level_thresholds[level]

    @property
    def leaf_threshold(self) -> int:
        """The bottom-level capacity τ (the paper's single parameter)."""
        return self.level_thresholds[-1]
