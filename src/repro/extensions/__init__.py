"""Extensions built on the paper's primitives.

The paper notes (Section 2) that range queries "are also the building
block for many other spatial queries (e.g., k-nearest neighbor queries)".
This package delivers on that: :func:`k_nearest` runs kNN over *any*
:class:`~repro.index.base.SpatialIndex` — including a still-converging
QUASII — via expanding-window range search.
"""

from repro.extensions.knn import KNNResult, KNNRound, k_nearest

__all__ = ["KNNResult", "KNNRound", "k_nearest"]
