"""k-nearest-neighbour search on top of the first-class query API.

Classic expanding-window kNN, restructured around result modes: each
probe round issues a **count-only** query (no ids or coordinates are
materialized — and on incremental indexes the probe still cracks, so
probes contribute to the structure like any query); once a window holds
at least ``k`` candidates, a single **materializing** round fetches ids
*with their boxes* (``mode="boxes"``), so distances are computed straight
from the result payload instead of re-resolving ids to store rows.  The
search is exact: when the k-th candidate's Euclidean distance is no
larger than the window's half-side, no unseen object can be closer (an
object outside the window has L∞ — hence Euclidean — distance greater
than the half-side).

Works with any index of this library; running it against a QUASII
instance doubles as a demonstration that ad-hoc query types benefit from
(and contribute to) the incrementally built structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.errors import QueryError
from repro.geometry.box import Box
from repro.index.base import IndexStats, SpatialIndex
from repro.queries.query import Query


def box_distances(
    lo: np.ndarray, hi: np.ndarray, point: np.ndarray
) -> np.ndarray:
    """Euclidean distance from ``point`` to each box (0 inside the box)."""
    clamped = np.clip(point, lo, hi)
    return np.sqrt(((clamped - point) ** 2).sum(axis=1))


@dataclass(frozen=True)
class KNNRound:
    """One expanding-window round's accounting.

    Attributes
    ----------
    half_side:
        The window half-side this round probed.
    mode:
        ``"count"`` for probe rounds, ``"boxes"`` for materializing ones.
    count:
        Matching objects inside the window.
    seconds:
        Wall-clock of the round's query.
    stats:
        The round's :class:`~repro.index.base.IndexStats` delta —
        objects tested, cracks, rows moved (probe rounds on incremental
        indexes do real refinement work; this is where it shows).
    """

    half_side: float
    mode: str
    count: int
    seconds: float
    stats: IndexStats


@dataclass
class KNNResult:
    """The ``k`` nearest neighbours plus the per-round cost trail.

    Sequence-compatible with the legacy ``list[(id, distance)]`` return
    (iteration, indexing, and ``len`` all see :attr:`neighbors`), so
    long-standing call sites keep working while new ones read
    :attr:`rounds`.
    """

    neighbors: list[tuple[int, float]] = field(default_factory=list)
    rounds: list[KNNRound] = field(default_factory=list)

    @property
    def n_rounds(self) -> int:
        """Number of executed window rounds (probes + materializing)."""
        return len(self.rounds)

    def total_seconds(self) -> float:
        """Wall-clock across all rounds."""
        return float(sum(r.seconds for r in self.rounds))

    def __iter__(self) -> Iterator[tuple[int, float]]:
        return iter(self.neighbors)

    def __len__(self) -> int:
        return len(self.neighbors)

    def __getitem__(self, idx):
        return self.neighbors[idx]


def k_nearest(
    index: SpatialIndex,
    point: Sequence[float],
    k: int,
    initial_half_side: float | None = None,
    growth: float = 2.0,
    max_rounds: int = 64,
) -> KNNResult:
    """The ``k`` objects nearest to ``point`` (Euclidean box distance).

    Parameters
    ----------
    index:
        Any index over a :class:`BoxStore`; it receives the expanding
        window queries (and, if incremental, refines itself on them).
    point:
        Target coordinates (length d).
    k:
        Number of neighbours (``1 <= k <= n``).
    initial_half_side:
        First window half-side; defaults to a data-derived guess that a
        cube of that size holds ~k objects under uniformity.
    growth:
        Geometric growth factor of the window per round (> 1).
    max_rounds:
        Safety bound on expansion rounds.

    Returns
    -------
    KNNResult
        ``neighbors`` holds exactly ``k`` ``(id, distance)`` pairs,
        ascending distance (ties broken by id); ``rounds`` the per-round
        stats (count-only probes plus the materializing round(s)).
    """
    store = index.store
    pt = np.asarray(point, dtype=np.float64)
    if pt.shape != (store.ndim,):
        raise QueryError(f"point must have {store.ndim} coordinates")
    if not 1 <= k <= store.n:
        raise QueryError(f"k must be in [1, {store.n}], got {k}")
    if growth <= 1.0:
        raise QueryError(f"growth must exceed 1, got {growth}")

    if initial_half_side is None:
        bounds = store.bounds()
        volume = max(bounds.volume, 1e-30)
        # Half-side such that the window would hold ~k objects if uniform.
        initial_half_side = 0.5 * (volume * k / store.n) ** (1.0 / store.ndim)
        initial_half_side = max(initial_half_side, 1e-12)

    result = KNNResult()
    half = float(initial_half_side)
    # Window counts are monotone under growth, so once one window held
    # k candidates every later one does too — probe rounds stop and
    # each remaining round is a single materializing query.
    have_enough = False
    for _ in range(max_rounds):
        window = Box(tuple(pt - half), tuple(pt + half))
        if not have_enough:
            # Probe round: count-only, nothing materialized.
            probe = index.execute(Query(window, mode="count"))
            result.rounds.append(
                KNNRound(
                    half, "count", probe.count, probe.seconds, probe.stats
                )
            )
            have_enough = probe.count >= k
        if have_enough:
            # Materializing round: ids + boxes in one payload, so
            # distances come straight off the result.
            final = index.execute(Query(window, mode="boxes"))
            result.rounds.append(
                KNNRound(
                    half, "boxes", final.count, final.seconds, final.stats
                )
            )
            dists = box_distances(final.boxes[0], final.boxes[1], pt)
            ranked = sorted(zip(dists.tolist(), final.ids.tolist()))
            kth = ranked[k - 1][0]
            if kth <= half:
                result.neighbors = [
                    (int(i), float(d)) for d, i in ranked[:k]
                ]
                return result
        half *= growth
    raise QueryError(
        f"kNN did not converge within {max_rounds} rounds "
        f"(final half-side {half:g})"
    )
