"""k-nearest-neighbour search on top of range queries.

Classic expanding-window kNN: query a cube window around the target point,
grow it geometrically until the k-th candidate's Euclidean distance is no
larger than the window's half-side.  At that point no unseen object can be
closer (an object outside the window has L∞ distance — hence Euclidean
distance — greater than the half-side), so the answer is exact.

Works with any index of this library; running it against a QUASII instance
doubles as a demonstration that ad-hoc query types benefit from (and
contribute to) the incrementally built structure.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import QueryError
from repro.geometry.box import Box
from repro.index.base import SpatialIndex
from repro.queries.range_query import RangeQuery


def box_distances(
    lo: np.ndarray, hi: np.ndarray, point: np.ndarray
) -> np.ndarray:
    """Euclidean distance from ``point`` to each box (0 inside the box)."""
    clamped = np.clip(point, lo, hi)
    return np.sqrt(((clamped - point) ** 2).sum(axis=1))


def k_nearest(
    index: SpatialIndex,
    point: Sequence[float],
    k: int,
    initial_half_side: float | None = None,
    growth: float = 2.0,
    max_rounds: int = 64,
) -> list[tuple[int, float]]:
    """The ``k`` objects nearest to ``point`` (Euclidean box distance).

    Parameters
    ----------
    index:
        Any index over a :class:`BoxStore`; it receives the expanding
        range queries (and, if incremental, refines itself on them).
    point:
        Target coordinates (length d).
    k:
        Number of neighbours (``1 <= k <= n``).
    initial_half_side:
        First window half-side; defaults to a data-derived guess that a
        cube of that size holds ~k objects under uniformity.
    growth:
        Geometric growth factor of the window per round (> 1).
    max_rounds:
        Safety bound on expansion rounds.

    Returns
    -------
    list[(id, distance)]
        Exactly ``k`` pairs, ascending distance (ties broken by id).
    """
    store = index.store
    pt = np.asarray(point, dtype=np.float64)
    if pt.shape != (store.ndim,):
        raise QueryError(f"point must have {store.ndim} coordinates")
    if not 1 <= k <= store.n:
        raise QueryError(f"k must be in [1, {store.n}], got {k}")
    if growth <= 1.0:
        raise QueryError(f"growth must exceed 1, got {growth}")

    if initial_half_side is None:
        bounds = store.bounds()
        volume = max(bounds.volume, 1e-30)
        # Half-side such that the window would hold ~k objects if uniform.
        initial_half_side = 0.5 * (volume * k / store.n) ** (1.0 / store.ndim)
        initial_half_side = max(initial_half_side, 1e-12)

    # id -> current row lookup (stores get permuted by incremental indexes,
    # and may be permuted further by the very queries we are about to run,
    # so the mapping is recomputed per round).
    half = float(initial_half_side)
    seq = 0
    for _ in range(max_rounds):
        window = Box(tuple(pt - half), tuple(pt + half))
        ids = index.query(RangeQuery(window, seq=seq))
        seq += 1
        if ids.size >= k:
            order = np.argsort(store.ids, kind="stable")
            rows = order[np.searchsorted(store.ids[order], np.sort(ids))]
            dists = box_distances(store.lo[rows], store.hi[rows], pt)
            ranked = sorted(zip(dists, np.sort(ids).tolist()))
            kth = ranked[k - 1][0]
            if kth <= half:
                return [(int(i), float(d)) for d, i in ranked[:k]]
        half *= growth
    raise QueryError(
        f"kNN did not converge within {max_rounds} rounds "
        f"(final half-side {half:g})"
    )
