"""The in-memory "data array" that every index reorganizes.

The paper stores raw spatial objects in a flat main-memory array and builds
incremental indexes by *physically reordering* that array (Figure 4, middle
row).  :class:`BoxStore` is that array: an ``(n, d)`` pair of coordinate
matrices (lower and upper corners) plus a parallel vector of stable object
identifiers.  Incremental indexes (QUASII, SFCracker, Mosaic) permute rows
in place; static indexes either reorder a copy at build time (SFC, STR
leaf packing) or reference rows by position (grid, R-Tree).

Mutation model
--------------
The store supports exactly four mutations, and every index/test invariant
is phrased against them:

* **Permutation** (:meth:`apply_order_range`) — the cracking primitive.
  Queries may only permute; the multiset of physical rows is invariant
  under any query sequence, which the test suite enforces.
* **Append** (:meth:`append`) — new rows join at the tail with fresh (or
  caller-supplied) identifiers.  Existing row positions never move, so
  position-referencing indexes (grid, R-Tree) stay valid.
* **Tombstone delete** (:meth:`delete_ids`) — rows are marked dead in the
  parallel ``live`` mask but stay physically present, so slice ranges and
  row references stay valid; scans simply skip dead rows.
* **Compaction** (:meth:`compact`) — tombstoned rows are physically
  dropped and live rows slide down in stable order, reclaiming the dead
  space that scans would otherwise pay for forever.  This is the one
  mutation that invalidates physical positions, so it returns an
  old-position → new-position remap; every index holding row references
  must absorb it (see
  :meth:`~repro.index.base.SpatialIndex.on_compaction`).

The resulting invariant is a *multiset of live rows*: after any
interleaving of queries, appends, deletes, and compactions, the live
``(id, box)`` multiset equals the initial multiset plus appended rows
minus deleted ids — regardless of physical order or tombstone layout.
:meth:`live_fingerprint` digests exactly that multiset (compaction
preserves it by construction); the
:class:`~repro.updates.ledger.UpdateLedger` checks it against the
history of applied updates.

Every append/delete/compact batch advances the :attr:`epoch` counter so
indexes holding derived state can cheaply detect staleness.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import DatasetError, GeometryError
from repro.geometry.box import Box
from repro.geometry.predicates import boxes_intersect_window


class BoxStore:
    """A columnar store of ``n`` axis-aligned boxes supporting in-place reorder.

    Parameters
    ----------
    lo, hi:
        ``(n, d)`` float64 matrices of lower/upper corners.  ``lo <= hi``
        must hold element-wise.
    ids:
        Optional length-``n`` int64 identifier vector; defaults to
        ``0..n-1``.  Identifiers are carried along every reordering so
        query results are stable regardless of physical order.
    """

    __slots__ = (
        "_lo",
        "_hi",
        "_ids",
        "_live",
        "_max_extent",
        "_epoch",
        "_n_dead",
        "_next_id",
        "_staged",
    )

    def __init__(
        self,
        lo: np.ndarray,
        hi: np.ndarray,
        ids: np.ndarray | None = None,
    ) -> None:
        lo = np.ascontiguousarray(lo, dtype=np.float64)
        hi = np.ascontiguousarray(hi, dtype=np.float64)
        # ascontiguousarray does not copy an already-suitable input, so
        # BoxStore(points, points) would alias lo and hi to one buffer —
        # and in-place reordering would then permute it twice.  Reordering
        # also requires the corner matrices to own distinct memory.
        if np.shares_memory(lo, hi):
            hi = hi.copy()
        if lo.ndim != 2 or hi.ndim != 2:
            raise DatasetError("corner matrices must be two-dimensional")
        if lo.shape != hi.shape:
            raise DatasetError(
                f"corner shape mismatch: {lo.shape} vs {hi.shape}"
            )
        if lo.shape[1] == 0:
            raise DatasetError("boxes need at least one dimension")
        if np.any(lo > hi):
            bad = int(np.argmax(np.any(lo > hi, axis=1)))
            raise GeometryError(f"row {bad}: lower corner exceeds upper corner")
        if ids is None:
            ids = np.arange(lo.shape[0], dtype=np.int64)
        else:
            ids = np.ascontiguousarray(ids, dtype=np.int64)
            if ids.shape != (lo.shape[0],):
                raise DatasetError(
                    f"ids shape {ids.shape} does not match {lo.shape[0]} rows"
                )
        self._lo = lo
        self._hi = hi
        self._ids = ids
        self._live = np.ones(lo.shape[0], dtype=bool)
        self._max_extent: np.ndarray | None = None
        self._epoch = 0
        self._n_dead = 0
        self._next_id = int(ids.max()) + 1 if ids.size else 0
        # Identifiers staged outside the store (update buffers): reserved
        # or claimed but not yet appended.  Part of the explicit-id
        # collision gate — see validate_batch / stage_ids.
        self._staged: set[int] = set()

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_boxes(
        cls, boxes: Iterable[Box], ids: Sequence[int] | None = None
    ) -> BoxStore:
        """Build a store from scalar :class:`Box` values."""
        box_list = list(boxes)
        if not box_list:
            raise DatasetError("cannot build a store from zero boxes")
        ndim = box_list[0].ndim
        for i, b in enumerate(box_list):
            if b.ndim != ndim:
                raise DatasetError(
                    f"box {i} has {b.ndim} dims, expected {ndim}"
                )
        lo = np.array([b.lo for b in box_list], dtype=np.float64)
        hi = np.array([b.hi for b in box_list], dtype=np.float64)
        id_arr = None if ids is None else np.asarray(ids, dtype=np.int64)
        return cls(lo, hi, id_arr)

    def copy(self) -> BoxStore:
        """Deep copy; the original is untouched by operations on the copy."""
        dup = BoxStore(self._lo.copy(), self._hi.copy(), self._ids.copy())
        dup._live = self._live.copy()
        dup._epoch = self._epoch
        dup._n_dead = self._n_dead
        dup._next_id = self._next_id
        dup._staged = set(self._staged)
        return dup

    # ------------------------------------------------------------------
    # Shape & access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._lo.shape[0]

    @property
    def n(self) -> int:
        """Number of stored boxes."""
        return self._lo.shape[0]

    @property
    def ndim(self) -> int:
        """Dimensionality of the stored boxes."""
        return self._lo.shape[1]

    @property
    def lo(self) -> np.ndarray:
        """``(n, d)`` lower-corner matrix (live view; do not mutate)."""
        return self._lo

    @property
    def hi(self) -> np.ndarray:
        """``(n, d)`` upper-corner matrix (live view; do not mutate)."""
        return self._hi

    @property
    def ids(self) -> np.ndarray:
        """Length-``n`` identifier vector, permuted alongside coordinates."""
        return self._ids

    @property
    def live(self) -> np.ndarray:
        """Length-``n`` bool mask; False rows are tombstoned (deleted)."""
        return self._live

    @property
    def epoch(self) -> int:
        """Update-batch counter: +1 per non-empty :meth:`append` /
        :meth:`delete_ids` batch."""
        return self._epoch

    @property
    def n_dead(self) -> int:
        """Number of tombstoned rows still physically present."""
        return self._n_dead

    @property
    def live_count(self) -> int:
        """Number of live (non-tombstoned) rows."""
        return self._lo.shape[0] - self._n_dead

    def box_at(self, row: int) -> Box:
        """The box currently stored at physical position ``row``."""
        return Box(tuple(self._lo[row]), tuple(self._hi[row]))

    def id_at(self, row: int) -> int:
        """The identifier currently stored at physical position ``row``."""
        return int(self._ids[row])

    # ------------------------------------------------------------------
    # Dataset-level measures
    # ------------------------------------------------------------------
    @property
    def max_extent(self) -> np.ndarray:
        """Per-dimension maximum object side length.

        Query extension enlarges windows by exactly this vector.  It is
        cached and grows monotonically: :meth:`append` widens it when a
        new row exceeds it, and deletes never shrink it (a too-large
        extension is merely conservative, never incorrect).  An empty
        store starts at zero (appends grow it from there).
        """
        if self._max_extent is None:
            if self.n == 0:
                self._max_extent = np.zeros(self.ndim, dtype=np.float64)
            else:
                self._max_extent = (self._hi - self._lo).max(axis=0)
        return self._max_extent

    def bounds(self) -> Box:
        """MBB of the dataset's *live* rows.

        Tombstoned rows are excluded: a deleted outlier must not keep
        the dataset MBB — and everything rebuilt from it (partitioner
        tiling, shard pruning boxes) — inflated forever.
        """
        if self.live_count == 0:
            raise DatasetError(
                "cannot compute bounds: the store has no live rows"
            )
        if self._n_dead:
            rows = np.flatnonzero(self._live)
            return Box(
                tuple(self._lo[rows].min(axis=0)),
                tuple(self._hi[rows].max(axis=0)),
            )
        return Box(tuple(self._lo.min(axis=0)), tuple(self._hi.max(axis=0)))

    def mbr_of_range(self, begin: int, end: int) -> Box:
        """MBB of the physical row range ``[begin, end)``."""
        self._check_range(begin, end)
        if begin == end:
            raise DatasetError("cannot compute the MBR of an empty range")
        return Box(
            tuple(self._lo[begin:end].min(axis=0)),
            tuple(self._hi[begin:end].max(axis=0)),
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def scan_range(
        self,
        begin: int,
        end: int,
        window_lo: np.ndarray,
        window_hi: np.ndarray,
    ) -> np.ndarray:
        """Identifiers of *live* boxes in rows ``[begin, end)`` intersecting the window."""
        self._check_range(begin, end)
        mask = boxes_intersect_window(
            self._lo[begin:end], self._hi[begin:end], window_lo, window_hi
        )
        if self._n_dead:
            mask &= self._live[begin:end]
        return self._ids[begin:end][mask]

    def count_range(
        self,
        begin: int,
        end: int,
        window_lo: np.ndarray,
        window_hi: np.ndarray,
    ) -> int:
        """Number of live boxes in rows ``[begin, end)`` intersecting the window."""
        self._check_range(begin, end)
        mask = boxes_intersect_window(
            self._lo[begin:end], self._hi[begin:end], window_lo, window_hi
        )
        if self._n_dead:
            mask &= self._live[begin:end]
        return int(mask.sum())

    # ------------------------------------------------------------------
    # Reordering (the cracking primitive)
    # ------------------------------------------------------------------
    def apply_order(self, order: np.ndarray) -> None:
        """Permute the entire store by ``order`` (a full permutation)."""
        self.apply_order_range(0, self.n, order)

    def apply_order_range(self, begin: int, end: int, order: np.ndarray) -> None:
        """Permute rows ``[begin, end)`` by ``order`` (relative indices).

        ``order`` must be a permutation of ``0..end-begin-1``; row
        ``begin + order[k]`` moves to position ``begin + k``.  This is the
        only mutation queries may apply — all cracking is built on it — so
        the multiset of rows can never change under a query sequence.
        """
        self._check_range(begin, end)
        span = end - begin
        if order.shape != (span,):
            raise DatasetError(
                f"order length {order.shape} does not match range span {span}"
            )
        sub = slice(begin, end)
        self._lo[sub] = self._lo[sub][order]
        self._hi[sub] = self._hi[sub][order]
        self._ids[sub] = self._ids[sub][order]
        if self._n_dead:
            self._live[sub] = self._live[sub][order]

    def _check_range(self, begin: int, end: int) -> None:
        if not (0 <= begin <= end <= self.n):
            raise DatasetError(
                f"invalid row range [{begin}, {end}) for store of {self.n} rows"
            )

    # ------------------------------------------------------------------
    # Updates (the insert/delete primitives)
    # ------------------------------------------------------------------
    def reserve_ids(self, count: int) -> np.ndarray:
        """Allocate ``count`` fresh identifiers without appending rows.

        Staging areas (:class:`~repro.updates.buffer.UpdateBuffer`) use
        this so a pending insert already has its final ids before the rows
        physically reach the store.
        """
        if count < 0:
            raise DatasetError(f"cannot reserve {count} ids")
        start = self._next_id
        self._next_id += count
        return np.arange(start, start + count, dtype=np.int64)

    def claim_ids(self, ids: np.ndarray) -> None:
        """Advance the id allocator past caller-supplied identifiers.

        Must be called when explicit ids are staged *outside* the store
        (e.g. buffered inserts), so later :meth:`reserve_ids` calls can
        never hand out a duplicate.
        """
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size:
            self._next_id = max(self._next_id, int(ids.max()) + 1)

    def stage_ids(self, ids: np.ndarray) -> None:
        """Register ids as staged outside the store (claims them too).

        Update buffers call this for every row they hold, fresh or
        explicit, so the collision gate (:meth:`validate_batch`) can
        reject a second insert of an id that is pending but not yet
        physically in the store — without it, the duplicate would only
        surface at merge (drain) time, after the first batch's caller
        already got its ids back.
        """
        ids = np.asarray(ids, dtype=np.int64).ravel()
        self.claim_ids(ids)
        self._staged.update(int(i) for i in ids)

    def unstage_ids(self, ids: np.ndarray) -> None:
        """Drop ids from the staged registry (drained or discarded)."""
        ids = np.asarray(ids, dtype=np.int64).ravel()
        self._staged.difference_update(int(i) for i in ids)

    @property
    def staged_count(self) -> int:
        """Number of ids currently staged outside the store."""
        return len(self._staged)

    def validate_batch(
        self,
        lo: np.ndarray,
        hi: np.ndarray,
        ids: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """Normalize and validate an insert/append batch for this store.

        The single gate shared by :meth:`append` and
        :class:`~repro.index.base.MutableSpatialIndex.insert` — lazy
        index paths stage batches long before the store sees them, and a
        batch that would fail here at merge time must be rejected up
        front, with identical rules by construction.  Returns contiguous
        float64 ``(k, d)`` corner matrices (a single length-``d`` pair is
        promoted to a batch of one) and normalized ids (or ``None``).
        """
        lo = np.ascontiguousarray(np.atleast_2d(lo), dtype=np.float64)
        hi = np.ascontiguousarray(np.atleast_2d(hi), dtype=np.float64)
        if np.shares_memory(lo, hi):
            hi = hi.copy()
        if lo.shape != hi.shape or lo.ndim != 2:
            raise DatasetError(
                f"batch corner shape mismatch: {lo.shape} vs {hi.shape}"
            )
        if lo.shape[1] != self.ndim:
            raise DatasetError(
                f"batch boxes have {lo.shape[1]} dims, store has {self.ndim}"
            )
        if not (np.isfinite(lo).all() and np.isfinite(hi).all()):
            raise GeometryError("batch corners must be finite")
        if np.any(lo > hi):
            bad = int(np.argmax(np.any(lo > hi, axis=1)))
            raise GeometryError(
                f"batch row {bad}: lower corner exceeds upper corner"
            )
        if ids is not None:
            ids = np.ascontiguousarray(ids, dtype=np.int64)
            if ids.shape != (lo.shape[0],):
                raise DatasetError(
                    f"ids shape {ids.shape} does not match "
                    f"{lo.shape[0]} batch rows"
                )
            if ids.size and (
                np.unique(ids).size != ids.size or np.isin(ids, self._ids).any()
            ):
                raise DatasetError("batch ids collide with existing ids")
            if (
                ids.size
                and self._staged
                and not self._staged.isdisjoint(int(i) for i in ids)
            ):
                raise DatasetError(
                    "batch ids collide with buffered (staged) inserts "
                    "not yet merged into the store"
                )
        return lo, hi, ids

    def append(
        self,
        lo: np.ndarray,
        hi: np.ndarray,
        ids: np.ndarray | None = None,
    ) -> np.ndarray:
        """Append a batch of boxes at the tail; returns their identifiers.

        Existing rows never move, so physical positions held by indexes
        stay valid.  ``ids`` defaults to freshly reserved identifiers;
        caller-supplied ids must not collide with any id currently in the
        store (live or tombstoned).  Advances :attr:`epoch`; a zero-row
        batch is a no-op and does not.
        """
        lo, hi, ids = self.validate_batch(lo, hi, ids)
        return self.append_validated(lo, hi, ids)

    def append_validated(
        self,
        lo: np.ndarray,
        hi: np.ndarray,
        ids: np.ndarray | None = None,
    ) -> np.ndarray:
        """:meth:`append` for a batch already through :meth:`validate_batch`.

        The :class:`~repro.index.base.MutableSpatialIndex` paths validate
        once at the API boundary and land rows here, so the gate does not
        run twice per insert.  Callers must pass the *normalized* arrays
        the gate returned.
        """
        k = lo.shape[0]
        if ids is None:
            ids = self.reserve_ids(k)
        else:
            self.claim_ids(ids)
        if k == 0:
            return ids
        self._lo = np.concatenate([self._lo, lo])
        self._hi = np.concatenate([self._hi, hi])
        self._ids = np.concatenate([self._ids, ids])
        self._live = np.concatenate([self._live, np.ones(k, dtype=bool)])
        if self._max_extent is not None:
            self._max_extent = np.maximum(
                self._max_extent, (hi - lo).max(axis=0)
            )
        self._epoch += 1
        return ids

    def find_live_rows(self, ids: np.ndarray) -> np.ndarray:
        """Physical positions of the live rows matching ``ids`` (validating).

        Every requested id must match at least one live row — an unknown
        or already-deleted id raises, keeping update ledgers exact.  The
        scan half of :meth:`delete_ids`, exposed separately so callers
        that also need the victim rows (e.g. the R-Tree's delete-time
        condensing) resolve them in a single pass over the store.
        """
        ids = np.asarray(ids, dtype=np.int64).ravel()
        if ids.size == 0:
            return np.empty(0, dtype=np.int64)
        victims = np.isin(self._ids, ids) & self._live
        found = np.unique(self._ids[victims])
        missing = np.setdiff1d(ids, found)
        if missing.size:
            raise DatasetError(
                f"cannot delete ids not live in the store: {missing[:5].tolist()}"
            )
        return np.flatnonzero(victims)

    def tombstone_rows(self, rows: np.ndarray) -> int:
        """Tombstone rows by physical position (no liveness validation).

        The mutation half of :meth:`delete_ids`; ``rows`` must be live
        positions (as returned by :meth:`find_live_rows`).  Returns the
        count and advances :attr:`epoch`; an empty batch is a no-op and
        does not.
        """
        if rows.size == 0:
            return 0
        self._live[rows] = False
        self._n_dead += int(rows.size)
        self._epoch += 1
        return int(rows.size)

    def delete_ids(self, ids: np.ndarray) -> int:
        """Tombstone every live row whose identifier is in ``ids``.

        Rows stay physically present (positions/ranges held by indexes
        remain valid); scans skip them via the ``live`` mask.  Every
        requested id must match at least one live row — deleting an
        unknown or already-deleted id raises, keeping the update ledger
        exact.  Returns the number of rows tombstoned and advances
        :attr:`epoch`.
        """
        return self.tombstone_rows(self.find_live_rows(ids))

    def live_rows(self) -> np.ndarray:
        """Physical positions of all live rows (int64, ascending)."""
        return np.flatnonzero(self._live)

    def compact(self) -> np.ndarray:
        """Physically drop tombstoned rows; returns the position remap.

        Live rows slide down in stable order (relative order preserved),
        so contiguous live ranges stay contiguous and sorted runs stay
        sorted.  The returned int64 vector has one entry per *old*
        position: the row's new position, or ``-1`` for a dropped
        (tombstoned) row.  Because compaction is stable, the new
        position of any range boundary ``b`` is the count of live rows
        in ``[0, b)`` — index consumers remap ``begin``/``end`` pairs
        with a prefix sum over ``remap >= 0``.

        The live ``(id, box)`` multiset — :meth:`live_fingerprint` — is
        invariant.  Advances :attr:`epoch` when rows were dropped; with
        no dead rows the call is a no-op returning the identity remap.
        """
        n = self.n
        if self._n_dead == 0:
            return np.arange(n, dtype=np.int64)
        keep = np.flatnonzero(self._live)
        remap = np.full(n, -1, dtype=np.int64)
        remap[keep] = np.arange(keep.size, dtype=np.int64)
        self._lo = np.ascontiguousarray(self._lo[keep])
        self._hi = np.ascontiguousarray(self._hi[keep])
        self._ids = np.ascontiguousarray(self._ids[keep])
        self._live = np.ones(keep.size, dtype=bool)
        self._n_dead = 0
        # max_extent stays: it is documented to grow monotonically, and
        # a too-large query extension is conservative, never incorrect.
        self._epoch += 1
        return remap

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _digest(self, rows: np.ndarray, with_live: bool) -> bytes:
        """Canonical digest of the given rows, id column in native int64.

        Rows are ordered by ``(id, coordinates)`` — not by id alone — so
        duplicate-id rows cannot produce order-dependent digests, and
        the id column is hashed in its own dtype: casting int64 ids to
        float64 silently collides ids above 2**53.
        """
        coords = np.hstack([self._lo[rows], self._hi[rows]])
        ids = self._ids[rows]
        # lexsort's *last* key is primary: ids, then (physical digest
        # only) the live flag, then coordinates — a total order even
        # when ids repeat.
        keys = tuple(coords.T[::-1])
        parts = [ids, coords]
        if with_live:
            live = self._live[rows]
            keys += (live,)
            parts.insert(1, live)
        order = np.lexsort(keys + (ids,))
        return b"".join(col[order].tobytes() for col in parts)

    def fingerprint(self) -> bytes:
        """Order-insensitive digest of the *physical* (id, box, live) multiset.

        Two stores that are permutations of each other have equal
        fingerprints; used by tests to assert permutation safety.
        Tombstoned rows are included (with their live flag), so the
        fingerprint is invariant under queries but not under updates or
        compaction.
        """
        return self._digest(np.arange(self.n, dtype=np.int64), with_live=True)

    def live_fingerprint(self) -> bytes:
        """Order-insensitive digest of the *live* (id, box) multiset.

        This is the store's documented invariant surface under mixed
        read/write workloads: equal across stores holding the same live
        rows, regardless of physical order, tombstones, compactions, or
        epoch.
        """
        return self._digest(np.flatnonzero(self._live), with_live=False)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BoxStore(n={self.n}, ndim={self.ndim})"
