"""The in-memory "data array" that every index reorganizes.

The paper stores raw spatial objects in a flat main-memory array and builds
incremental indexes by *physically reordering* that array (Figure 4, middle
row).  :class:`BoxStore` is that array: an ``(n, d)`` pair of coordinate
matrices (lower and upper corners) plus a parallel vector of stable object
identifiers.  Incremental indexes (QUASII, SFCracker, Mosaic) permute rows
in place; static indexes either reorder a copy at build time (SFC, STR
leaf packing) or reference rows by position (grid, R-Tree).

Only permutations are ever applied — a store's multiset of ``(id, box)``
rows is invariant under any query sequence, which the test suite enforces.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import DatasetError, GeometryError
from repro.geometry.box import Box
from repro.geometry.predicates import boxes_intersect_window


class BoxStore:
    """A columnar store of ``n`` axis-aligned boxes supporting in-place reorder.

    Parameters
    ----------
    lo, hi:
        ``(n, d)`` float64 matrices of lower/upper corners.  ``lo <= hi``
        must hold element-wise.
    ids:
        Optional length-``n`` int64 identifier vector; defaults to
        ``0..n-1``.  Identifiers are carried along every reordering so
        query results are stable regardless of physical order.
    """

    __slots__ = ("_lo", "_hi", "_ids", "_max_extent")

    def __init__(
        self,
        lo: np.ndarray,
        hi: np.ndarray,
        ids: np.ndarray | None = None,
    ) -> None:
        lo = np.ascontiguousarray(lo, dtype=np.float64)
        hi = np.ascontiguousarray(hi, dtype=np.float64)
        # ascontiguousarray does not copy an already-suitable input, so
        # BoxStore(points, points) would alias lo and hi to one buffer —
        # and in-place reordering would then permute it twice.  Reordering
        # also requires the corner matrices to own distinct memory.
        if np.shares_memory(lo, hi):
            hi = hi.copy()
        if lo.ndim != 2 or hi.ndim != 2:
            raise DatasetError("corner matrices must be two-dimensional")
        if lo.shape != hi.shape:
            raise DatasetError(
                f"corner shape mismatch: {lo.shape} vs {hi.shape}"
            )
        if lo.shape[1] == 0:
            raise DatasetError("boxes need at least one dimension")
        if np.any(lo > hi):
            bad = int(np.argmax(np.any(lo > hi, axis=1)))
            raise GeometryError(f"row {bad}: lower corner exceeds upper corner")
        if ids is None:
            ids = np.arange(lo.shape[0], dtype=np.int64)
        else:
            ids = np.ascontiguousarray(ids, dtype=np.int64)
            if ids.shape != (lo.shape[0],):
                raise DatasetError(
                    f"ids shape {ids.shape} does not match {lo.shape[0]} rows"
                )
        self._lo = lo
        self._hi = hi
        self._ids = ids
        self._max_extent: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_boxes(
        cls, boxes: Iterable[Box], ids: Sequence[int] | None = None
    ) -> BoxStore:
        """Build a store from scalar :class:`Box` values."""
        box_list = list(boxes)
        if not box_list:
            raise DatasetError("cannot build a store from zero boxes")
        ndim = box_list[0].ndim
        for i, b in enumerate(box_list):
            if b.ndim != ndim:
                raise DatasetError(
                    f"box {i} has {b.ndim} dims, expected {ndim}"
                )
        lo = np.array([b.lo for b in box_list], dtype=np.float64)
        hi = np.array([b.hi for b in box_list], dtype=np.float64)
        id_arr = None if ids is None else np.asarray(ids, dtype=np.int64)
        return cls(lo, hi, id_arr)

    def copy(self) -> BoxStore:
        """Deep copy; the original is untouched by operations on the copy."""
        return BoxStore(self._lo.copy(), self._hi.copy(), self._ids.copy())

    # ------------------------------------------------------------------
    # Shape & access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._lo.shape[0]

    @property
    def n(self) -> int:
        """Number of stored boxes."""
        return self._lo.shape[0]

    @property
    def ndim(self) -> int:
        """Dimensionality of the stored boxes."""
        return self._lo.shape[1]

    @property
    def lo(self) -> np.ndarray:
        """``(n, d)`` lower-corner matrix (live view; do not mutate)."""
        return self._lo

    @property
    def hi(self) -> np.ndarray:
        """``(n, d)`` upper-corner matrix (live view; do not mutate)."""
        return self._hi

    @property
    def ids(self) -> np.ndarray:
        """Length-``n`` identifier vector, permuted alongside coordinates."""
        return self._ids

    def box_at(self, row: int) -> Box:
        """The box currently stored at physical position ``row``."""
        return Box(tuple(self._lo[row]), tuple(self._hi[row]))

    def id_at(self, row: int) -> int:
        """The identifier currently stored at physical position ``row``."""
        return int(self._ids[row])

    # ------------------------------------------------------------------
    # Dataset-level measures
    # ------------------------------------------------------------------
    @property
    def max_extent(self) -> np.ndarray:
        """Per-dimension maximum object side length.

        Query extension enlarges windows by exactly this vector; it is
        cached because it is workload-invariant (stores are never resized).
        """
        if self._max_extent is None:
            self._max_extent = (self._hi - self._lo).max(axis=0)
        return self._max_extent

    def bounds(self) -> Box:
        """MBB of the whole dataset."""
        return Box(tuple(self._lo.min(axis=0)), tuple(self._hi.max(axis=0)))

    def mbr_of_range(self, begin: int, end: int) -> Box:
        """MBB of the physical row range ``[begin, end)``."""
        self._check_range(begin, end)
        if begin == end:
            raise DatasetError("cannot compute the MBR of an empty range")
        return Box(
            tuple(self._lo[begin:end].min(axis=0)),
            tuple(self._hi[begin:end].max(axis=0)),
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def scan_range(
        self,
        begin: int,
        end: int,
        window_lo: np.ndarray,
        window_hi: np.ndarray,
    ) -> np.ndarray:
        """Identifiers of boxes in rows ``[begin, end)`` intersecting the window."""
        self._check_range(begin, end)
        mask = boxes_intersect_window(
            self._lo[begin:end], self._hi[begin:end], window_lo, window_hi
        )
        return self._ids[begin:end][mask]

    def count_range(
        self,
        begin: int,
        end: int,
        window_lo: np.ndarray,
        window_hi: np.ndarray,
    ) -> int:
        """Number of boxes in rows ``[begin, end)`` intersecting the window."""
        self._check_range(begin, end)
        mask = boxes_intersect_window(
            self._lo[begin:end], self._hi[begin:end], window_lo, window_hi
        )
        return int(mask.sum())

    # ------------------------------------------------------------------
    # Reordering (the cracking primitive)
    # ------------------------------------------------------------------
    def apply_order(self, order: np.ndarray) -> None:
        """Permute the entire store by ``order`` (a full permutation)."""
        self.apply_order_range(0, self.n, order)

    def apply_order_range(self, begin: int, end: int, order: np.ndarray) -> None:
        """Permute rows ``[begin, end)`` by ``order`` (relative indices).

        ``order`` must be a permutation of ``0..end-begin-1``; row
        ``begin + order[k]`` moves to position ``begin + k``.  This is the
        only mutation primitive — all cracking is built on it — so the
        multiset of rows can never change.
        """
        self._check_range(begin, end)
        span = end - begin
        if order.shape != (span,):
            raise DatasetError(
                f"order length {order.shape} does not match range span {span}"
            )
        sub = slice(begin, end)
        self._lo[sub] = self._lo[sub][order]
        self._hi[sub] = self._hi[sub][order]
        self._ids[sub] = self._ids[sub][order]

    def _check_range(self, begin: int, end: int) -> None:
        if not (0 <= begin <= end <= self.n):
            raise DatasetError(
                f"invalid row range [{begin}, {end}) for store of {self.n} rows"
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def fingerprint(self) -> bytes:
        """Order-insensitive digest of the (id, box) multiset.

        Two stores that are permutations of each other have equal
        fingerprints; used by tests to assert permutation safety.
        """
        order = np.argsort(self._ids, kind="stable")
        stacked = np.hstack(
            [
                self._ids[order, None].astype(np.float64),
                self._lo[order],
                self._hi[order],
            ]
        )
        return stacked.tobytes()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BoxStore(n={self.n}, ndim={self.ndim})"
