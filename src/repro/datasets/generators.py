"""Synthetic dataset generators mirroring the paper's evaluation data.

The paper evaluates on two families of data (Section 6.1):

* **Synthetic/uniform** — boxes uniformly placed in a ``10,000``-unit cube;
  99% of objects have side lengths drawn uniformly from ``[1, 10]`` and 1%
  from ``[10, 1000]``.  :func:`make_uniform` reproduces this exactly
  (scaled object counts).
* **Neuroscience** — 450M MBBs enclosing small cylinders of a rat-brain
  microcircuit: heavily *clustered* (dense cores, sparse fringes) small
  elongated objects.  The model is proprietary, so :func:`make_neuro_like`
  builds the closest synthetic surrogate: a heavy-tailed Gaussian mixture
  of thin boxes plus a sparse uniform background.  The figures that use
  this dataset depend on its *skew* (grid configuration sensitivity,
  clustered-query convergence), which the surrogate reproduces; see
  DESIGN.md §4 for the substitution rationale.

All generators take an explicit ``seed`` and return a :class:`Dataset`
bundling the :class:`~repro.datasets.store.BoxStore` with the universe box
queries should be drawn from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.store import BoxStore
from repro.errors import ConfigurationError
from repro.geometry.box import Box

#: Universe side length used throughout the paper's synthetic setup.
PAPER_UNIVERSE_SIDE = 10_000.0


@dataclass(frozen=True)
class Dataset:
    """A generated dataset: the object store plus its sampling universe.

    Attributes
    ----------
    store:
        The data array of object MBBs.
    universe:
        The box from which the objects (and therefore queries) are drawn.
        Indexes that partition *space* (grid, Mosaic) partition this box.
    name:
        Human-readable generator tag, used in benchmark reports.
    seed:
        The RNG seed the dataset was generated with, for provenance.
    """

    store: BoxStore
    universe: Box
    name: str
    seed: int

    @property
    def n(self) -> int:
        """Number of objects."""
        return self.store.n

    @property
    def ndim(self) -> int:
        """Dimensionality."""
        return self.store.ndim


def _check_common(n: int, ndim: int, universe_side: float) -> None:
    if n <= 0:
        raise ConfigurationError(f"need a positive object count, got {n}")
    if ndim < 1:
        raise ConfigurationError(f"need ndim >= 1, got {ndim}")
    if universe_side <= 0:
        raise ConfigurationError(
            f"universe side must be positive, got {universe_side}"
        )


def _clip_to_universe(
    lo: np.ndarray, hi: np.ndarray, side: float
) -> tuple[np.ndarray, np.ndarray]:
    """Clamp boxes into ``[0, side]^d`` preserving lo <= hi."""
    lo = np.clip(lo, 0.0, side)
    hi = np.clip(hi, 0.0, side)
    hi = np.maximum(hi, lo)
    return lo, hi


def make_uniform(
    n: int,
    ndim: int = 3,
    universe_side: float = PAPER_UNIVERSE_SIDE,
    small_side: tuple[float, float] = (1.0, 10.0),
    large_side: tuple[float, float] = (10.0, 1000.0),
    large_fraction: float = 0.01,
    seed: int = 0,
) -> Dataset:
    """The paper's synthetic dataset (Section 6.1), scaled to ``n`` objects.

    Box centers are uniform in the universe; 99% of boxes draw each side
    from ``small_side`` and the remaining ``large_fraction`` from
    ``large_side`` (independently per dimension, as the paper's "length of
    each side" wording implies).
    """
    _check_common(n, ndim, universe_side)
    if not 0.0 <= large_fraction <= 1.0:
        raise ConfigurationError(
            f"large_fraction must be within [0, 1], got {large_fraction}"
        )
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.0, universe_side, size=(n, ndim))
    sides = rng.uniform(small_side[0], small_side[1], size=(n, ndim))
    n_large = int(round(n * large_fraction))
    if n_large:
        large_rows = rng.choice(n, size=n_large, replace=False)
        sides[large_rows] = rng.uniform(
            large_side[0], large_side[1], size=(n_large, ndim)
        )
    lo = centers - sides / 2.0
    hi = centers + sides / 2.0
    lo, hi = _clip_to_universe(lo, hi, universe_side)
    universe = Box((0.0,) * ndim, (universe_side,) * ndim)
    return Dataset(BoxStore(lo, hi), universe, f"uniform-{n}", seed)


def make_neuro_like(
    n: int,
    ndim: int = 3,
    universe_side: float = PAPER_UNIVERSE_SIDE,
    n_clusters: int = 40,
    background_fraction: float = 0.05,
    cluster_std_range: tuple[float, float] = (100.0, 600.0),
    segment_length: tuple[float, float] = (2.0, 30.0),
    segment_thickness: tuple[float, float] = (0.5, 4.0),
    long_fraction: float = 0.0,
    long_length: tuple[float, float] = (100.0, 400.0),
    seed: int = 0,
) -> Dataset:
    """Skewed surrogate for the paper's rat-brain neuroscience dataset.

    Structure: ``n_clusters`` Gaussian clusters with heavy-tailed
    (Zipf-like) population sizes and varying spreads — mimicking dense
    neural bundles — plus a thin uniform background.  Each object is a
    small *elongated* box (a cylinder's MBB): one random axis gets a side
    from ``segment_length``, the rest from ``segment_thickness``.
    Optionally, a ``long_fraction`` of objects draw their long axis from
    ``long_length`` instead — the rare long axon segments that make the
    *maximum* object extent (and hence the query-extension penalty) far
    exceed the typical extent.

    The properties the paper's figures rely on are reproduced: pronounced
    density skew (Figure 6b's configuration shift), small typical object
    extent, and a heavy extent tail (Figure 6a's assignment penalties).
    """
    _check_common(n, ndim, universe_side)
    if n_clusters < 1:
        raise ConfigurationError(f"need at least one cluster, got {n_clusters}")
    if not 0.0 <= background_fraction < 1.0:
        raise ConfigurationError(
            f"background_fraction must be within [0, 1), got {background_fraction}"
        )
    if not 0.0 <= long_fraction <= 1.0:
        raise ConfigurationError(
            f"long_fraction must be within [0, 1], got {long_fraction}"
        )
    rng = np.random.default_rng(seed)

    n_background = int(round(n * background_fraction))
    n_clustered = n - n_background

    # Heavy-tailed cluster populations: weight_k ∝ 1 / (k+1).
    weights = 1.0 / np.arange(1, n_clusters + 1, dtype=np.float64)
    weights /= weights.sum()
    assignments = rng.choice(n_clusters, size=n_clustered, p=weights)

    cluster_centers = rng.uniform(
        0.1 * universe_side, 0.9 * universe_side, size=(n_clusters, ndim)
    )
    cluster_stds = rng.uniform(
        cluster_std_range[0], cluster_std_range[1], size=n_clusters
    )
    centers = cluster_centers[assignments] + rng.normal(
        0.0, 1.0, size=(n_clustered, ndim)
    ) * cluster_stds[assignments, None]

    if n_background:
        background = rng.uniform(0.0, universe_side, size=(n_background, ndim))
        centers = np.vstack([centers, background])

    # Elongated boxes: pick the long axis per object.
    sides = rng.uniform(
        segment_thickness[0], segment_thickness[1], size=(n, ndim)
    )
    long_axis = rng.integers(0, ndim, size=n)
    sides[np.arange(n), long_axis] = rng.uniform(
        segment_length[0], segment_length[1], size=n
    )
    n_long = int(round(n * long_fraction))
    if n_long:
        long_rows = rng.choice(n, size=n_long, replace=False)
        sides[long_rows, long_axis[long_rows]] = rng.uniform(
            long_length[0], long_length[1], size=n_long
        )

    lo = centers - sides / 2.0
    hi = centers + sides / 2.0
    lo, hi = _clip_to_universe(lo, hi, universe_side)
    universe = Box((0.0,) * ndim, (universe_side,) * ndim)
    return Dataset(BoxStore(lo, hi), universe, f"neuro-{n}", seed)


def make_gaussian_mixture(
    n: int,
    ndim: int = 3,
    universe_side: float = PAPER_UNIVERSE_SIDE,
    n_clusters: int = 5,
    cluster_std: float = 300.0,
    side_range: tuple[float, float] = (1.0, 10.0),
    seed: int = 0,
) -> Dataset:
    """A simple equal-weight Gaussian mixture of small boxes.

    Useful for controlled skew experiments and tests; lighter-weight than
    :func:`make_neuro_like`.
    """
    _check_common(n, ndim, universe_side)
    if n_clusters < 1:
        raise ConfigurationError(f"need at least one cluster, got {n_clusters}")
    rng = np.random.default_rng(seed)
    cluster_centers = rng.uniform(
        0.1 * universe_side, 0.9 * universe_side, size=(n_clusters, ndim)
    )
    assignments = rng.integers(0, n_clusters, size=n)
    centers = cluster_centers[assignments] + rng.normal(
        0.0, cluster_std, size=(n, ndim)
    )
    sides = rng.uniform(side_range[0], side_range[1], size=(n, ndim))
    lo = centers - sides / 2.0
    hi = centers + sides / 2.0
    lo, hi = _clip_to_universe(lo, hi, universe_side)
    universe = Box((0.0,) * ndim, (universe_side,) * ndim)
    return Dataset(BoxStore(lo, hi), universe, f"gaussian-{n}", seed)


def make_points(
    n: int,
    ndim: int = 3,
    universe_side: float = PAPER_UNIVERSE_SIDE,
    seed: int = 0,
) -> Dataset:
    """Degenerate (zero-extent) boxes — pure points.

    Edge-case dataset: with zero extent, query extension degenerates to the
    plain window and replication places each object in exactly one cell.
    """
    _check_common(n, ndim, universe_side)
    rng = np.random.default_rng(seed)
    pts = rng.uniform(0.0, universe_side, size=(n, ndim))
    universe = Box((0.0,) * ndim, (universe_side,) * ndim)
    return Dataset(BoxStore(pts, pts.copy()), universe, f"points-{n}", seed)
