"""Datasets: the shared data array plus the paper's dataset generators."""

from repro.datasets.generators import (
    PAPER_UNIVERSE_SIDE,
    Dataset,
    make_gaussian_mixture,
    make_neuro_like,
    make_points,
    make_uniform,
)
from repro.datasets.io import load_dataset, save_dataset
from repro.datasets.store import BoxStore

__all__ = [
    "PAPER_UNIVERSE_SIDE",
    "BoxStore",
    "Dataset",
    "load_dataset",
    "make_gaussian_mixture",
    "make_neuro_like",
    "make_points",
    "make_uniform",
    "save_dataset",
]
