"""Persistence helpers for datasets.

Datasets are saved as ``.npz`` archives holding the corner matrices, the
identifier vector, the universe corners, and generator provenance.  This is
enough to re-run any benchmark on the exact same data without re-generating
(and is the stand-in for the paper's on-disk 21–45 GB input files).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.datasets.generators import Dataset
from repro.datasets.store import BoxStore
from repro.errors import DatasetError
from repro.geometry.box import Box

_FORMAT_VERSION = 1


def save_dataset(dataset: Dataset, path: str | Path) -> Path:
    """Write a dataset to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        lo=dataset.store.lo,
        hi=dataset.store.hi,
        ids=dataset.store.ids,
        universe_lo=np.asarray(dataset.universe.lo, dtype=np.float64),
        universe_hi=np.asarray(dataset.universe.hi, dtype=np.float64),
        name=np.str_(dataset.name),
        seed=np.int64(dataset.seed),
    )
    return path


def load_dataset(path: str | Path) -> Dataset:
    """Read a dataset previously written by :func:`save_dataset`."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"dataset file not found: {path}")
    with np.load(path, allow_pickle=False) as archive:
        try:
            version = int(archive["version"])
            lo = archive["lo"]
            hi = archive["hi"]
            ids = archive["ids"]
            universe = Box(
                tuple(archive["universe_lo"]), tuple(archive["universe_hi"])
            )
            name = str(archive["name"])
            seed = int(archive["seed"])
        except KeyError as exc:
            raise DatasetError(f"{path} is not a repro dataset archive") from exc
    if version != _FORMAT_VERSION:
        raise DatasetError(
            f"unsupported dataset format version {version} "
            f"(this build reads version {_FORMAT_VERSION})"
        )
    return Dataset(BoxStore(lo, hi, ids), universe, name, seed)
