"""Static SFC index: sort once by Z-order code, binary search per interval.

The static counterpart of SFCracker (Section 6.1): pre-processing computes
every object's Z-code (by its center cell) and fully sorts; each query is
decomposed into tightly covering code intervals, each answered with binary
search over the sorted codes, with an exact intersection filter on the
gathered candidates.  Because objects are represented by their centers,
query windows are extended by half the maximum object extent, just like
the query-extension grid.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.sfc.zorder import (
    PAPER_BITS_PER_DIM,
    ZGrid,
    adaptive_min_size,
    zrange_decompose,
)
from repro.datasets.store import BoxStore
from repro.errors import QueryError
from repro.geometry.box import Box
from repro.index.base import IndexStats, SpatialIndex
from repro.queries.query import Query, QueryPlan, QueryResult
from repro.queries.range_query import RangeQuery
from repro.util.arrays import gather_ranges


class SFCIndex(SpatialIndex):
    """Fully sorted Z-order index (the paper's "SFC").

    Parameters
    ----------
    store:
        Backing data array (referenced; a sorted row permutation is kept
        internally).
    universe:
        Space mapped onto the Z-grid.
    bits:
        Bits per dimension (paper: 10).
    """

    name = "SFC"

    def __init__(
        self,
        store: BoxStore,
        universe: Box,
        bits: int = PAPER_BITS_PER_DIM,
    ) -> None:
        super().__init__(store)
        self._grid = ZGrid(universe, bits)
        self._sorted_codes: np.ndarray | None = None
        self._sorted_rows: np.ndarray | None = None

    @property
    def grid(self) -> ZGrid:
        """The shared coordinate-to-cell mapping."""
        return self._grid

    def build(self) -> None:
        """Compute all codes and fully sort — the static pre-processing."""
        if self._built:
            return
        centers = (self._store.lo + self._store.hi) * 0.5
        codes = self._grid.codes_of(centers)
        order = np.argsort(codes, kind="stable")
        self._sorted_codes = codes[order]
        self._sorted_rows = order.astype(np.int64)
        # Build cost (comparison model): one linear code-computation pass
        # plus a full sort of the codes.
        n = self._store.n
        self.build_work = n + int(n * np.log2(max(n, 2)))
        self._built = True

    def _intervals_for(self, query: Query | RangeQuery) -> list[tuple[int, int]]:
        """Code intervals tightly covering the (extended) query window."""
        margin = self._store.max_extent / 2.0
        cell_lo = self._grid.cells_of((query.lo - margin)[None, :])[0]
        cell_hi = self._grid.cells_of((query.hi + margin)[None, :])[0]
        min_size = adaptive_min_size(cell_lo, cell_hi)
        return zrange_decompose(
            cell_lo, cell_hi, self._store.ndim, self._grid.bits, min_size
        )

    def _interval_rows(
        self, intervals: list[tuple[int, int]]
    ) -> np.ndarray:
        """Candidate rows covered by the given code intervals."""
        bounds_lo = np.array([iv[0] for iv in intervals], dtype=np.uint64)
        bounds_hi = np.array([iv[1] + 1 for iv in intervals], dtype=np.uint64)
        starts = np.searchsorted(self._sorted_codes, bounds_lo, side="left")
        ends = np.searchsorted(self._sorted_codes, bounds_hi, side="left")
        return self._sorted_rows[gather_ranges(starts, ends)]

    def _candidates(self, query: Query) -> np.ndarray:
        if not self._built:
            raise QueryError("SFC index queried before build()")
        intervals = self._intervals_for(query)
        self.stats.nodes_visited += len(intervals)
        rows = self._interval_rows(intervals)
        self.stats.objects_tested += rows.size
        return rows

    def _execute_batch(self, queries: list[Query]) -> list[QueryResult]:
        """Amortize the binary searches: two ``searchsorted`` calls cover
        every interval of every query, and the refine runs in stacked
        kernels (one per predicate present) over the whole batch."""
        if not self._built:
            raise QueryError("SFC index queried before build()")
        t0 = time.perf_counter()
        all_lo: list[int] = []
        all_hi: list[int] = []
        interval_counts: list[int] = []
        for q in queries:
            intervals = self._intervals_for(q)
            interval_counts.append(len(intervals))
            all_lo.extend(iv[0] for iv in intervals)
            all_hi.extend(iv[1] + 1 for iv in intervals)
        starts = np.searchsorted(
            self._sorted_codes, np.array(all_lo, dtype=np.uint64), side="left"
        )
        ends = np.searchsorted(
            self._sorted_codes, np.array(all_hi, dtype=np.uint64), side="left"
        )
        rows = self._sorted_rows[gather_ranges(starts, ends)]
        # Intervals were emitted in query order, so the gathered rows are
        # contiguous per query; split them at the per-query totals.
        spans = ends - starts
        offsets = np.concatenate(([0], np.cumsum(interval_counts)))
        rows_list: list[np.ndarray] = []
        per_stats: list[IndexStats] = []
        pos = 0
        for i, q in enumerate(queries):
            width = int(spans[offsets[i] : offsets[i + 1]].sum())
            rows_list.append(rows[pos : pos + width])
            pos += width
            self.stats.nodes_visited += interval_counts[i]
            self.stats.objects_tested += width
            per_stats.append(
                IndexStats(
                    nodes_visited=interval_counts[i], objects_tested=width
                )
            )
        payloads = self._refine_stacked(queries, rows_list)
        return self._wrap_batch(
            queries, payloads, per_stats, time.perf_counter() - t0
        )

    def _plan(self, query: Query) -> QueryPlan:
        """Intervals and candidate rows the query would touch."""
        if not self._built:
            raise QueryError("SFC index planned before build()")
        intervals = self._intervals_for(query)
        bounds_lo = np.array([iv[0] for iv in intervals], dtype=np.uint64)
        bounds_hi = np.array([iv[1] + 1 for iv in intervals], dtype=np.uint64)
        starts = np.searchsorted(self._sorted_codes, bounds_lo, side="left")
        ends = np.searchsorted(self._sorted_codes, bounds_hi, side="left")
        return QueryPlan(
            index=self.name,
            query=query,
            nodes=len(intervals),
            candidates=int((ends - starts).sum()),
            exact=True,
        )

    def _on_compaction(self, remap: np.ndarray) -> None:
        """Remap the sorted row array; drop entries of dead rows.

        Z-codes depend only on geometry, so the code order is untouched:
        row indices pass through ``remap`` and dropped rows' entries
        vanish from both parallel arrays.  SFC itself has no delete verb
        — this absorbs a store compacted *by its owner* (see
        :meth:`~repro.index.base.SpatialIndex.on_compaction`), after
        which the index serves the live rows again instead of failing
        the epoch check forever.
        """
        if not self._built:
            return
        rows = remap[self._sorted_rows]
        keep = rows >= 0
        self._sorted_rows = rows[keep]
        self._sorted_codes = self._sorted_codes[keep]

    def memory_bytes(self) -> int:
        """Sorted code + row arrays."""
        if not self._built:
            return 0
        return int(self._sorted_codes.nbytes + self._sorted_rows.nbytes)
