"""Z-order SFC baselines: the static index and the incremental cracker."""

from repro.baselines.sfc.sfc_index import SFCIndex
from repro.baselines.sfc.sfcracker import SFCrackerIndex
from repro.baselines.sfc.zorder import (
    PAPER_BITS_PER_DIM,
    ZGrid,
    adaptive_min_size,
    morton_decode,
    morton_encode,
    zrange_decompose,
)

__all__ = [
    "PAPER_BITS_PER_DIM",
    "SFCIndex",
    "SFCrackerIndex",
    "ZGrid",
    "adaptive_min_size",
    "morton_decode",
    "morton_encode",
    "zrange_decompose",
]
