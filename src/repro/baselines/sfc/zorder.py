"""Z-order (Morton) space-filling curve substrate.

The paper maps spatial data to one dimension with the Z-order curve using
10 bits per dimension (32-bit codes, Section 6.1) and decomposes a window
query into multiple 1-d intervals that tightly cover the window (the
Tropf–Herzog technique [43]), trading a few hundred small intervals per
query for far fewer false positives.

This module provides vectorized encode/decode over cell coordinates and
the interval decomposition.  Decomposition recursion can be coarsened via
``min_size`` (emit a covering interval for any query-intersecting aligned
cube at that size): exactness is preserved because every consumer filters
candidates against the actual window; coarsening only trades false
positives for fewer intervals — the knob the paper's optimization turns.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, GeometryError
from repro.geometry.box import Box

#: Bits per dimension used throughout the paper (10 → 1024 cells per dim).
PAPER_BITS_PER_DIM = 10


def morton_encode(cells: np.ndarray, bits: int = PAPER_BITS_PER_DIM) -> np.ndarray:
    """Interleave ``(n, d)`` integer cell coordinates into Z-order codes.

    Bit layout: code bit ``b * d + (d - 1 - k)`` holds bit ``b`` of
    dimension ``k``, i.e. within each d-bit group dimension 0 is most
    significant.  An axis-aligned cube of side ``2^m`` whose corner is
    ``2^m``-aligned therefore occupies exactly ``2^(d*m)`` consecutive
    codes — the property the range decomposition relies on.
    """
    cells = np.asarray(cells)
    if cells.ndim != 2:
        raise GeometryError("cells must be a (n, d) matrix")
    d = cells.shape[1]
    if bits < 1 or bits * d > 63:
        raise ConfigurationError(
            f"bits={bits} with d={d} does not fit a 64-bit code"
        )
    if np.any(cells < 0) or np.any(cells >= (1 << bits)):
        raise GeometryError(f"cell coordinates must lie in [0, 2^{bits})")
    cells = cells.astype(np.uint64)
    codes = np.zeros(cells.shape[0], dtype=np.uint64)
    for b in range(bits):
        for k in range(d):
            bit = (cells[:, k] >> np.uint64(b)) & np.uint64(1)
            codes |= bit << np.uint64(b * d + (d - 1 - k))
    return codes


def morton_decode(
    codes: np.ndarray, ndim: int, bits: int = PAPER_BITS_PER_DIM
) -> np.ndarray:
    """Inverse of :func:`morton_encode`: codes back to ``(n, d)`` cells."""
    codes = np.asarray(codes, dtype=np.uint64)
    if bits < 1 or bits * ndim > 63:
        raise ConfigurationError(
            f"bits={bits} with d={ndim} does not fit a 64-bit code"
        )
    cells = np.zeros((codes.shape[0], ndim), dtype=np.uint64)
    for b in range(bits):
        for k in range(ndim):
            bit = (codes >> np.uint64(b * ndim + (ndim - 1 - k))) & np.uint64(1)
            cells[:, k] |= bit << np.uint64(b)
    return cells.astype(np.int64)


class ZGrid:
    """Maps continuous coordinates to the ``2^bits``-per-dim cell grid.

    The paper assigns Z-codes "using a uniform grid"; this class is that
    grid: a fixed mapping from the universe box to integer cells, shared by
    the static SFC index and SFCracker.
    """

    def __init__(self, universe: Box, bits: int = PAPER_BITS_PER_DIM) -> None:
        if bits < 1 or bits * universe.ndim > 63:
            raise ConfigurationError(
                f"bits={bits} with d={universe.ndim} does not fit 64-bit codes"
            )
        self.universe = universe
        self.bits = bits
        self.resolution = 1 << bits
        self._lo = np.asarray(universe.lo, dtype=np.float64)
        extent = np.asarray(universe.hi, dtype=np.float64) - self._lo
        if np.any(extent <= 0):
            raise GeometryError("universe must have positive extent")
        self._scale = self.resolution / extent

    def cells_of(self, points: np.ndarray) -> np.ndarray:
        """Clamped integer cell coordinates of ``(n, d)`` points."""
        rel = (np.asarray(points, dtype=np.float64) - self._lo) * self._scale
        return np.clip(rel.astype(np.int64), 0, self.resolution - 1)

    def codes_of(self, points: np.ndarray) -> np.ndarray:
        """Z-order codes of ``(n, d)`` points."""
        return morton_encode(self.cells_of(points), self.bits)


def zrange_decompose(
    cell_lo: np.ndarray,
    cell_hi: np.ndarray,
    ndim: int,
    bits: int = PAPER_BITS_PER_DIM,
    min_size: int = 1,
) -> list[tuple[int, int]]:
    """Cover the cell-space window with disjoint Z-code intervals.

    Recursively subdivides the Z-ordered cube: an aligned sub-cube fully
    inside the window contributes its whole (contiguous) code range; a
    partially overlapping cube recurses, except that cubes at or below
    ``min_size`` contribute their covering range directly (coarsening —
    possible false positives, fewer intervals).  Adjacent output intervals
    are coalesced.

    Returns inclusive ``(lo_code, hi_code)`` pairs in increasing order.
    """
    if min_size < 1:
        raise ConfigurationError(f"min_size must be >= 1, got {min_size}")
    q_lo_arr = np.asarray(cell_lo, dtype=np.int64)
    q_hi_arr = np.asarray(cell_hi, dtype=np.int64)
    if q_lo_arr.shape != (ndim,) or q_hi_arr.shape != (ndim,):
        raise GeometryError("cell corners must be length-d vectors")
    if np.any(q_lo_arr > q_hi_arr):
        raise GeometryError("window lower cell exceeds upper cell")
    # Pure-Python integers: the recursion visits thousands of cubes per
    # query, so per-visit NumPy scalar overhead would dominate the whole
    # SFC query path.
    q_lo = tuple(int(v) for v in q_lo_arr)
    q_hi = tuple(int(v) for v in q_hi_arr)
    out: list[tuple[int, int]] = []
    fanout = 1 << ndim
    dims = range(ndim)
    offsets = [
        tuple((child >> (ndim - 1 - k)) & 1 for k in dims)
        for child in range(fanout)
    ]

    def visit(corner: tuple[int, ...], size: int, code: int) -> None:
        inside = True
        for k in dims:
            c = corner[k]
            if c > q_hi[k] or c + size - 1 < q_lo[k]:
                return
            if c < q_lo[k] or c + size - 1 > q_hi[k]:
                inside = False
        if inside or size <= min_size:
            out.append((code, code + size**ndim - 1))
            return
        half = size >> 1
        step = half**ndim
        for child in range(fanout):
            off = offsets[child]
            visit(
                tuple(corner[k] + off[k] * half for k in dims),
                half,
                code + child * step,
            )

    visit((0,) * ndim, 1 << bits, 0)

    # Coalesce adjacent intervals (recursion emits them in code order).
    merged: list[tuple[int, int]] = []
    for lo, hi in out:
        if merged and lo == merged[-1][1] + 1:
            merged[-1] = (merged[-1][0], hi)
        else:
            merged.append((lo, hi))
    return merged


def adaptive_min_size(
    cell_lo: np.ndarray, cell_hi: np.ndarray, target_cells_per_dim: int = 16
) -> int:
    """Pick a decomposition granularity bounding work per query.

    Full decomposition of a ``w``-cell-wide window visits O(surface area)
    cubes — prohibitive for the paper's 10% selectivity windows.  Choosing
    ``min_size`` so the window is ~``target_cells_per_dim`` coarse cubes
    wide keeps interval counts in the paper's observed range (hundreds)
    for any selectivity.
    """
    span = int(np.max(np.asarray(cell_hi) - np.asarray(cell_lo)) + 1)
    size = 1
    while size * target_cells_per_dim < span:
        size <<= 1
    return size
