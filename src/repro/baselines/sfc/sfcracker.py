"""SFCracker: database cracking lifted to spatial data via the Z-curve.

The paper's first incremental strawman (Section 3.1).  The multi-
dimensional data is mapped to one dimension (Z-order codes), then queries
crack the code array exactly like relational database cracking:

* the **first query** pays for computing every object's Z-code (the paper
  measures this at 12.9% of SFC's total pre-processing, growing to 43%
  once the first query's own cracks are added);
* each query is decomposed into many tightly covering 1-d intervals
  (~197 on average in the paper) and the array is cracked at *every*
  interval boundary — the expensive incremental strategy that makes
  SFCracker lose to its static counterpart after only ~13 queries.

The cracker index (piece table) is the classic sorted-boundaries
structure: piece ``i`` spans positions ``[positions[i], positions[i+1])``
and holds codes in ``[bounds[i], bounds[i+1])``, unsorted within.
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

from repro.baselines.sfc.zorder import (
    PAPER_BITS_PER_DIM,
    ZGrid,
    adaptive_min_size,
    zrange_decompose,
)
from repro.core.cracking import crack_values
from repro.datasets.store import BoxStore
from repro.geometry.box import Box
from repro.index.base import SpatialIndex
from repro.queries.query import Query, QueryPlan
from repro.util.arrays import gather_ranges


# Stateful but deliberately no on_compaction: cracked Z-order runs are
# positional, so a compaction remap invalidates them wholesale and the
# inherited raising _on_compaction default is the documented contract.
class SFCrackerIndex(SpatialIndex):  # ql: allow[QL002]
    """Incremental Z-order cracker (the paper's "SFCracker").

    Parameters
    ----------
    store:
        Backing data array (referenced; the cracker permutes its own
        parallel code/row arrays, initialized lazily by the first query).
    universe:
        Space mapped onto the Z-grid.
    bits:
        Bits per dimension (paper: 10).
    """

    name = "SFCracker"

    def __init__(
        self,
        store: BoxStore,
        universe: Box,
        bits: int = PAPER_BITS_PER_DIM,
    ) -> None:
        super().__init__(store)
        self._grid = ZGrid(universe, bits)
        self._codes: np.ndarray | None = None
        self._rows: np.ndarray | None = None
        # Piece table sentinels cover the whole code domain.
        self._bounds: list[int] = []
        self._positions: list[int] = []

    def build(self) -> None:
        """No-op — code computation deliberately happens in the first query."""
        self._built = True

    # ------------------------------------------------------------------
    def _initialize(self) -> None:
        """First-query transformation of all data to the 1-d domain."""
        centers = (self._store.lo + self._store.hi) * 0.5
        self._codes = self._grid.codes_of(centers)
        self._rows = np.arange(self._store.n, dtype=np.int64)
        # Charge the whole-dataset transformation pass to the first query,
        # exactly as the paper does (Section 6.3: 12.9% of SFC's total
        # pre-processing happens inside SFCracker's first query).
        self.stats.rows_reorganized += self._store.n
        top = 1 << (self._grid.bits * self._store.ndim)
        self._bounds = [0, top]
        self._positions = [0, self._store.n]

    def _crack_to(self, code: int) -> int:
        """Position splitting codes ``< code`` from codes ``>= code``.

        Cracks the containing piece if the boundary is new; afterwards the
        piece table records it so repeats are pure lookups.
        """
        idx = bisect_right(self._bounds, code) - 1
        if self._bounds[idx] == code:
            return self._positions[idx]
        begin = self._positions[idx]
        end = self._positions[idx + 1]
        split = crack_values(self._codes, self._rows, begin, end, code)
        self.stats.cracks += 1
        self.stats.rows_reorganized += end - begin
        self._bounds.insert(idx + 1, code)
        self._positions.insert(idx + 1, split)
        return split

    def _intervals_for(self, query: Query) -> list[tuple[int, int]]:
        """Code intervals tightly covering the (extended) query window."""
        margin = self._store.max_extent / 2.0
        cell_lo = self._grid.cells_of((query.lo - margin)[None, :])[0]
        cell_hi = self._grid.cells_of((query.hi + margin)[None, :])[0]
        min_size = adaptive_min_size(cell_lo, cell_hi)
        return zrange_decompose(
            cell_lo, cell_hi, self._store.ndim, self._grid.bits, min_size
        )

    def _candidates(self, query: Query) -> np.ndarray:
        if self._codes is None:
            self._initialize()
        intervals = self._intervals_for(query)
        self.stats.nodes_visited += len(intervals)
        starts = np.empty(len(intervals), dtype=np.int64)
        ends = np.empty(len(intervals), dtype=np.int64)
        for i, (lo, hi) in enumerate(intervals):
            # One crack per interval boundary — the multiple cracks per
            # query that Section 3.1 blames for SFCracker's overhead.
            starts[i] = self._crack_to(lo)
            ends[i] = self._crack_to(hi + 1)
        rows = self._rows[gather_ranges(starts, ends)]
        self.stats.objects_tested += rows.size
        return rows

    def _plan(self, query: Query) -> QueryPlan:
        """Intervals plus the rows the current piece table would gather.

        Planning never cracks, so candidate counts come from the pieces
        *spanning* each interval (the rows a query would pay to narrow);
        execution cracks them tighter, hence ``exact=False``.  Before
        the first query the whole array is one piece.
        """
        intervals = self._intervals_for(query)
        if self._codes is None:
            return QueryPlan(
                index=self.name,
                query=query,
                nodes=len(intervals),
                candidates=self._store.n,
                exact=False,
            )
        candidates = 0
        for lo, hi in intervals:
            left = bisect_right(self._bounds, lo) - 1
            right = bisect_right(self._bounds, hi) - 1
            candidates += self._positions[right + 1] - self._positions[left]
        return QueryPlan(
            index=self.name,
            query=query,
            nodes=len(intervals),
            candidates=candidates,
            exact=False,
        )

    # ------------------------------------------------------------------
    @property
    def piece_count(self) -> int:
        """Number of pieces in the cracker index (1 before any query)."""
        if not self._bounds:
            return 1
        return len(self._bounds) - 1

    def memory_bytes(self) -> int:
        """Code/row arrays plus the piece table."""
        if self._codes is None:
            return 0
        return int(
            self._codes.nbytes
            + self._rows.nbytes
            + 16 * len(self._bounds)
        )

    def validate_pieces(self) -> None:
        """Assert the cracker-index invariant (test/debug hook):
        piece ``i`` holds exactly the codes in ``[bounds[i], bounds[i+1])``."""
        if self._codes is None:
            return
        assert self._positions[0] == 0 and self._positions[-1] == self._store.n
        assert all(
            a < b for a, b in zip(self._bounds, self._bounds[1:])
        ), "piece bounds not strictly increasing"
        assert all(
            a <= b for a, b in zip(self._positions, self._positions[1:])
        ), "piece positions not monotone"
        for i in range(len(self._bounds) - 1):
            piece = self._codes[self._positions[i] : self._positions[i + 1]]
            assert np.all(piece >= self._bounds[i]), "code below piece bound"
            assert np.all(piece < self._bounds[i + 1]), "code above piece bound"
