"""Every baseline the paper evaluates against QUASII.

Static: :class:`ScanIndex`, :class:`RTreeIndex` (STR / Guttman),
:class:`UniformGridIndex` (replication / query extension),
:class:`SFCIndex` (sorted Z-order).

Incremental: :class:`SFCrackerIndex` (Z-order cracking, Section 3.1) and
:class:`MosaicIndex` (incremental Octree, Section 3.2).
"""

from repro.baselines.grid import UniformGridIndex
from repro.baselines.mosaic import MosaicIndex
from repro.baselines.rtree import RTreeIndex
from repro.baselines.scan import ScanIndex
from repro.baselines.sfc import SFCIndex, SFCrackerIndex

__all__ = [
    "MosaicIndex",
    "RTreeIndex",
    "SFCIndex",
    "SFCrackerIndex",
    "ScanIndex",
    "UniformGridIndex",
]
