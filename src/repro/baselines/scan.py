"""Full-scan baseline: the "no index" end of the design space.

Every query tests all ``n`` objects.  The paper uses Scan both as the
data-to-insight yardstick (the first answer arrives after exactly one pass
over the data, with zero preparation) and as the flat reference line in
every convergence plot.  Under mixed read/write workloads it doubles as
the correctness oracle: with no structure to maintain, an insert is a
plain store append and a delete a plain tombstone, so its answers are
the live-row ground truth by construction.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.store import BoxStore
from repro.index.base import MutableSpatialIndex
from repro.queries.range_query import RangeQuery


class ScanIndex(MutableSpatialIndex):
    """Answer queries by a single vectorized pass over the whole store."""

    name = "Scan"

    def __init__(self, store: BoxStore) -> None:
        super().__init__(store)

    def build(self) -> None:
        """Nothing to build — scans need no preparation at all."""
        self._built = True

    def _query(self, query: RangeQuery) -> np.ndarray:
        self.stats.objects_tested += self._store.n
        return self._store.scan_range(0, self._store.n, query.lo, query.hi)

    def _insert(
        self, lo: np.ndarray, hi: np.ndarray, ids: np.ndarray | None
    ) -> np.ndarray:
        """Appended rows are scanned like any others — nothing to update."""
        return self._store.append_validated(lo, hi, ids)

    def _on_compaction(self, remap: np.ndarray) -> None:
        """No derived state: a compacted store is just a shorter scan."""
