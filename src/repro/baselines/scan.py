"""Full-scan baseline: the "no index" end of the design space.

Every query tests all ``n`` objects.  The paper uses Scan both as the
data-to-insight yardstick (the first answer arrives after exactly one pass
over the data, with zero preparation) and as the flat reference line in
every convergence plot.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.store import BoxStore
from repro.index.base import SpatialIndex
from repro.queries.range_query import RangeQuery


class ScanIndex(SpatialIndex):
    """Answer queries by a single vectorized pass over the whole store."""

    name = "Scan"

    def __init__(self, store: BoxStore) -> None:
        super().__init__(store)

    def build(self) -> None:
        """Nothing to build — scans need no preparation at all."""
        self._built = True

    def _query(self, query: RangeQuery) -> np.ndarray:
        self.stats.objects_tested += self._store.n
        return self._store.scan_range(0, self._store.n, query.lo, query.hi)
