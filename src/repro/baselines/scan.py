"""Full-scan baseline: the "no index" end of the design space.

Every query tests all ``n`` objects.  The paper uses Scan both as the
data-to-insight yardstick (the first answer arrives after exactly one pass
over the data, with zero preparation) and as the flat reference line in
every convergence plot.  Under mixed read/write workloads it doubles as
the correctness oracle: with no structure to maintain, an insert is a
plain store append and a delete a plain tombstone, so its answers are
the live-row ground truth by construction — and the same holds for every
predicate and result mode of the first-class query layer, which is why
the property suite pins all other indexes against Scan.

Batches are answered natively: one ``(B, n)`` candidate matrix per
predicate covers the whole batch (two comparisons per dimension instead
of ``B`` kernel launches), chunked so the temporary never exceeds a few
megabytes.  Count-only batches never materialize a single id.
"""

from __future__ import annotations

import time

import numpy as np

from repro.datasets.store import BoxStore
from repro.geometry.predicates import batch_predicate_masks
from repro.index.base import IndexStats, MutableSpatialIndex
from repro.queries.query import Query, QueryResult


class ScanIndex(MutableSpatialIndex):
    """Answer queries by a single vectorized pass over the whole store."""

    name = "Scan"

    #: Cap on candidate-matrix cells per chunk (bools); keeps the
    #: batched temporaries cache-friendly instead of store-sized * B.
    _BATCH_CELLS = 8_000_000

    def __init__(self, store: BoxStore) -> None:
        super().__init__(store)

    def build(self) -> None:
        """Nothing to build — scans need no preparation at all."""
        self._built = True

    def _candidates(self, query: Query) -> None:
        self.stats.objects_tested += self._store.n
        return None  # the refine kernel tests the whole store in place

    def _execute_batch(self, queries: list[Query]) -> list[QueryResult]:
        """One candidate matrix per batch instead of one pass per query."""
        store = self._store
        n = store.n
        t0 = time.perf_counter()
        payloads: list = [None] * len(queries)
        groups: dict[str, list[int]] = {}
        for i, q in enumerate(queries):
            groups.setdefault(q.predicate, []).append(i)
        chunk = max(1, self._BATCH_CELLS // max(n, 1))
        for pred, idxs in groups.items():
            for start in range(0, len(idxs), chunk):
                part = idxs[start : start + chunk]
                win_lo = np.stack([queries[i].lo for i in part])
                win_hi = np.stack([queries[i].hi for i in part])
                masks = batch_predicate_masks(
                    pred, store.lo, store.hi, win_lo, win_hi
                )
                if store.n_dead:
                    masks &= store.live[None, :]
                # The count-only fast path is a row-sum of the candidate
                # matrix; skip it entirely for all-materializing chunks.
                counts = (
                    masks.sum(axis=1)
                    if any(queries[i].count_only for i in part)
                    else None
                )
                for j, i in enumerate(part):
                    q = queries[i]
                    if q.count_only:
                        payloads[i] = (int(counts[j]), None, None)
                    else:
                        payloads[i] = self._package(
                            q, np.flatnonzero(masks[j])
                        )
        self.stats.objects_tested += n * len(queries)
        per_stats = [IndexStats(objects_tested=n) for _ in queries]
        return self._wrap_batch(
            queries, payloads, per_stats, time.perf_counter() - t0
        )

    def _insert(
        self, lo: np.ndarray, hi: np.ndarray, ids: np.ndarray | None
    ) -> np.ndarray:
        """Appended rows are scanned like any others — nothing to update."""
        return self._store.append_validated(lo, hi, ids)

    def _on_compaction(self, remap: np.ndarray) -> None:
        """No derived state: a compacted store is just a shorter scan."""
