"""Classic dynamic R-Tree insertion (Guttman, SIGMOD'84) with quadratic split.

The paper builds its R-Tree statically with STR because all data is
available up front; it notes bulk loading "reduces overlap and decreases
pre-processing time compared to the R-Tree built by inserting one object
at a time" (Section 6.1).  This module implements that one-at-a-time
alternative so the claim is checkable in this reproduction (see the
`bench` ablations): ChooseLeaf by least enlargement, quadratic
node splitting, and upward MBR adjustment.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.rtree.node import RTreeNode
from repro.datasets.store import BoxStore
from repro.errors import ConfigurationError


def _volume(lo: np.ndarray, hi: np.ndarray) -> float:
    return float(np.prod(hi - lo))


def _enlargement(node_lo, node_hi, lo, hi) -> float:
    merged_lo = np.minimum(node_lo, lo)
    merged_hi = np.maximum(node_hi, hi)
    return _volume(merged_lo, merged_hi) - _volume(node_lo, node_hi)


class GuttmanRTree:
    """A dynamic R-Tree built by repeated insertion.

    Parameters
    ----------
    store:
        Backing store; inserted entries are store row indices.
    capacity:
        Maximum entries per node; nodes split (quadratically) beyond it.
    root:
        Optional existing tree to insert into — this is how the static
        STR-built R-Tree absorbs dynamic inserts (the classic R-Tree is
        an update-friendly structure; only its *bulk construction* was
        static in the paper).
    """

    def __init__(
        self,
        store: BoxStore,
        capacity: int = 60,
        root: RTreeNode | None = None,
    ) -> None:
        if capacity < 2:
            raise ConfigurationError(f"capacity must be >= 2, got {capacity}")
        self._store = store
        self._capacity = capacity
        self._min_fill = max(1, capacity // 3)
        self._root: RTreeNode | None = root

    @property
    def root(self) -> RTreeNode | None:
        """Root node (``None`` while empty)."""
        return self._root

    def insert_all(self) -> RTreeNode:
        """Insert every store row and return the root."""
        for row in range(self._store.n):
            self.insert(row)
        return self._root

    def insert(self, row: int) -> None:
        """Insert one store row."""
        lo = self._store.lo[row].copy()
        hi = self._store.hi[row].copy()
        if self._root is None:
            self._root = RTreeNode(lo.copy(), hi.copy(), rows=np.array([row], dtype=np.int64))
            return
        split = self._insert_into(self._root, row, lo, hi)
        if split is not None:
            old_root = self._root
            self._root = RTreeNode(
                np.minimum(old_root.lo, split.lo),
                np.maximum(old_root.hi, split.hi),
                children=[old_root, split],
            )

    # ------------------------------------------------------------------
    def _insert_into(
        self, node: RTreeNode, row: int, lo: np.ndarray, hi: np.ndarray
    ) -> RTreeNode | None:
        """Insert into the subtree; returns a sibling node if ``node`` split."""
        node.lo = np.minimum(node.lo, lo)
        node.hi = np.maximum(node.hi, hi)
        if node.is_leaf:
            node.rows = np.append(node.rows, row)
            if node.rows.size > self._capacity:
                return self._split_leaf(node)
            return None
        # ChooseLeaf: child needing least volume enlargement, ties by volume.
        best, best_key = None, None
        for child in node.children:
            key = (_enlargement(child.lo, child.hi, lo, hi), _volume(child.lo, child.hi))
            if best_key is None or key < best_key:
                best, best_key = child, key
        split = self._insert_into(best, row, lo, hi)
        if split is not None:
            node.children.append(split)
            if len(node.children) > self._capacity:
                sibling = self._split_internal(node)
                node.refresh_child_mbrs()
                return sibling
        node.refresh_child_mbrs()
        return None

    # ------------------------------------------------------------------
    # Quadratic split
    # ------------------------------------------------------------------
    def _quadratic_partition(
        self, lo: np.ndarray, hi: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Quadratic PickSeeds/PickNext partition of entry MBRs.

        Returns boolean membership masks for the two groups.
        """
        m = lo.shape[0]
        # PickSeeds: pair wasting the most area if grouped together.
        worst, seeds = -np.inf, (0, 1)
        for i in range(m):
            merged_lo = np.minimum(lo[i], lo[i + 1 :])
            merged_hi = np.maximum(hi[i], hi[i + 1 :])
            waste = (
                np.prod(merged_hi - merged_lo, axis=1)
                - _volume(lo[i], hi[i])
                - np.prod(hi[i + 1 :] - lo[i + 1 :], axis=1)
            )
            if waste.size:
                j = int(np.argmax(waste))
                if waste[j] > worst:
                    worst, seeds = float(waste[j]), (i, i + 1 + j)
        g1_lo, g1_hi = lo[seeds[0]].copy(), hi[seeds[0]].copy()
        g2_lo, g2_hi = lo[seeds[1]].copy(), hi[seeds[1]].copy()
        in_g1 = np.zeros(m, dtype=bool)
        in_g1[seeds[0]] = True
        assigned = np.zeros(m, dtype=bool)
        assigned[[seeds[0], seeds[1]]] = True
        remaining = m - 2
        while remaining:
            unassigned = np.flatnonzero(~assigned)
            g1_count = int(in_g1.sum())
            g2_count = int(assigned.sum()) - g1_count
            # Force-assign when a group needs every remaining entry to
            # reach its minimum fill.
            if g1_count + remaining <= self._min_fill:
                in_g1[unassigned] = True
                assigned[unassigned] = True
                break
            if g2_count + remaining <= self._min_fill:
                assigned[unassigned] = True
                break
            # PickNext: entry with the greatest preference difference.
            d1 = np.prod(
                np.maximum(g1_hi, hi[unassigned]) - np.minimum(g1_lo, lo[unassigned]),
                axis=1,
            ) - _volume(g1_lo, g1_hi)
            d2 = np.prod(
                np.maximum(g2_hi, hi[unassigned]) - np.minimum(g2_lo, lo[unassigned]),
                axis=1,
            ) - _volume(g2_lo, g2_hi)
            pick = int(np.argmax(np.abs(d1 - d2)))
            entry = unassigned[pick]
            to_g1 = d1[pick] < d2[pick] or (
                d1[pick] == d2[pick] and _volume(g1_lo, g1_hi) <= _volume(g2_lo, g2_hi)
            )
            assigned[entry] = True
            if to_g1:
                in_g1[entry] = True
                g1_lo = np.minimum(g1_lo, lo[entry])
                g1_hi = np.maximum(g1_hi, hi[entry])
            else:
                g2_lo = np.minimum(g2_lo, lo[entry])
                g2_hi = np.maximum(g2_hi, hi[entry])
            remaining -= 1
        return in_g1, ~in_g1

    def _split_leaf(self, node: RTreeNode) -> RTreeNode:
        rows = node.rows
        lo = self._store.lo[rows]
        hi = self._store.hi[rows]
        in_g1, in_g2 = self._quadratic_partition(lo, hi)
        node.rows = rows[in_g1]
        node.lo = lo[in_g1].min(axis=0)
        node.hi = hi[in_g1].max(axis=0)
        return RTreeNode(
            lo[in_g2].min(axis=0), hi[in_g2].max(axis=0), rows=rows[in_g2]
        )

    def _split_internal(self, node: RTreeNode) -> RTreeNode:
        children = node.children
        lo = np.stack([c.lo for c in children])
        hi = np.stack([c.hi for c in children])
        in_g1, in_g2 = self._quadratic_partition(lo, hi)
        keep = [c for c, m in zip(children, in_g1) if m]
        move = [c for c, m in zip(children, in_g1) if not m]
        node.children = keep
        node.recompute_mbr()
        sibling = RTreeNode(
            lo[in_g2].min(axis=0), hi[in_g2].max(axis=0), children=move
        )
        return sibling
