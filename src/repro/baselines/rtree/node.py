"""R-Tree node representation.

Nodes are plain Python objects; what makes queries fast is that every
internal node caches its children's MBRs as two stacked ``(k, d)`` matrices
so a visit prunes all ``k`` subtrees with one vectorized intersection test,
and every leaf stores its member *rows* as one int64 vector so the final
object test is a single store gather.
"""

from __future__ import annotations

import numpy as np


class RTreeNode:
    """One R-Tree node (internal or leaf).

    Attributes
    ----------
    lo, hi:
        This node's MBR corners, length-``d`` float64 vectors.
    children:
        Sub-nodes (internal nodes only).
    child_lo, child_hi:
        Stacked children MBRs, rebuilt whenever ``children`` changes.
    rows:
        Store row indices (leaf nodes only).
    """

    __slots__ = ("lo", "hi", "children", "child_lo", "child_hi", "rows")

    def __init__(
        self,
        lo: np.ndarray,
        hi: np.ndarray,
        children: list[RTreeNode] | None = None,
        rows: np.ndarray | None = None,
    ) -> None:
        if (children is None) == (rows is None):
            raise ValueError("a node is either internal (children) or leaf (rows)")
        self.lo = lo
        self.hi = hi
        self.children = children
        self.rows = rows
        self.child_lo: np.ndarray | None = None
        self.child_hi: np.ndarray | None = None
        if children is not None:
            self.refresh_child_mbrs()

    @property
    def is_leaf(self) -> bool:
        """True for leaf nodes (holding data rows)."""
        return self.rows is not None

    @property
    def fanout(self) -> int:
        """Number of children (internal) or member rows (leaf)."""
        if self.is_leaf:
            return int(self.rows.size)
        return len(self.children)

    def refresh_child_mbrs(self) -> None:
        """Re-stack the children MBR matrices after a structural change."""
        self.child_lo = np.stack([c.lo for c in self.children])
        self.child_hi = np.stack([c.hi for c in self.children])

    def recompute_mbr(self) -> None:
        """Tighten this node's MBR to exactly cover its children."""
        if self.is_leaf:
            raise ValueError("leaf MBRs are computed from store rows at build")
        self.refresh_child_mbrs()
        self.lo = self.child_lo.min(axis=0)
        self.hi = self.child_hi.max(axis=0)

    def height(self) -> int:
        """Levels below (and including) this node; a leaf has height 1."""
        node, h = self, 1
        while not node.is_leaf:
            node = node.children[0]
            h += 1
        return h

    def count_nodes(self) -> int:
        """Total node count of the subtree (for memory accounting)."""
        if self.is_leaf:
            return 1
        return 1 + sum(c.count_nodes() for c in self.children)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "leaf" if self.is_leaf else "internal"
        return f"RTreeNode({kind}, fanout={self.fanout})"
