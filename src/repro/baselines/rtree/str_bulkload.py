"""Sort-Tile-Recursive (STR) R-Tree bulk loading (Leutenegger et al., ICDE'97).

The paper's strongest static baseline builds its R-Tree with STR because it
"balances well the overhead of partitioning the data and query performance"
(Section 6.1).  STR packs ``n`` rectangles into ``ceil(n / c)`` leaf pages
by recursively sorting on the centers: sort on the first dimension, cut
into ``ceil((n/c)^(1/d))`` vertical slabs of equal object count, then
recurse within each slab on the remaining dimensions.  Upper levels are
built by applying the same procedure to the node MBR centers until a
single root remains.

QUASII's nested reorganization strategy is explicitly "inspired by" this
algorithm (Section 4) — STR does eagerly and completely what QUASII does
lazily and partially.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.rtree.node import RTreeNode
from repro.datasets.store import BoxStore
from repro.errors import ConfigurationError


def _tile(
    order: np.ndarray,
    keys: np.ndarray,
    dims_left: int,
    leaf_capacity: int,
    dim: int,
    work: list[int],
) -> list[np.ndarray]:
    """Recursively sort-and-slab ``order`` (indices into keys) into runs of
    at most ``leaf_capacity`` indices each.  ``work[0]`` accumulates the
    number of rows passed through sorts (machine-independent build cost)."""
    count = order.size
    if count <= leaf_capacity:
        return [order]
    # Comparison-cost model: a sort of m rows costs m*log2(m) units while
    # a (linear) crack costs m — this is what makes full sorting expensive
    # relative to incremental cracking in the paper's setting.
    work[0] += int(count * math.log2(count))
    order = order[np.argsort(keys[order, dim], kind="stable")]
    if dims_left == 1:
        cuts = range(0, count, leaf_capacity)
        return [order[i : i + leaf_capacity] for i in cuts]
    pages = math.ceil(count / leaf_capacity)
    slabs = math.ceil(pages ** (1.0 / dims_left))
    slab_size = math.ceil(count / slabs)
    runs: list[np.ndarray] = []
    for i in range(0, count, slab_size):
        runs.extend(
            _tile(
                order[i : i + slab_size],
                keys,
                dims_left - 1,
                leaf_capacity,
                dim + 1,
                work,
            )
        )
    return runs


def str_pack(
    lo: np.ndarray,
    hi: np.ndarray,
    leaf_capacity: int,
    work: list[int] | None = None,
) -> list[np.ndarray]:
    """Group ``n`` boxes into STR leaf pages.

    Returns a list of row-index arrays, each of size <= ``leaf_capacity``,
    tiling the input by recursive center sorting.  If ``work`` is given,
    ``work[0]`` accumulates rows-passed-through-sorts.
    """
    if leaf_capacity < 1:
        raise ConfigurationError(f"leaf capacity must be >= 1, got {leaf_capacity}")
    centers = (lo + hi) * 0.5
    order = np.arange(lo.shape[0], dtype=np.int64)
    if work is None:
        work = [0]
    return _tile(order, centers, lo.shape[1], leaf_capacity, 0, work)


def build_str_rtree(
    store: BoxStore, capacity: int = 60, work: list[int] | None = None
) -> RTreeNode:
    """Bulk-load a complete R-Tree over the store with node capacity ``capacity``.

    Leaf pages come from :func:`str_pack`; each upper level re-applies STR
    packing to the child MBR centers, so internal fanout is also at most
    ``capacity``.  Returns the root node.  If ``work`` is given,
    ``work[0]`` accumulates the total rows/nodes passed through sorts.
    """
    if work is None:
        work = [0]
    runs = str_pack(store.lo, store.hi, capacity, work)
    nodes = [
        RTreeNode(
            store.lo[rows].min(axis=0),
            store.hi[rows].max(axis=0),
            rows=rows,
        )
        for rows in runs
    ]
    while len(nodes) > 1:
        node_lo = np.stack([nd.lo for nd in nodes])
        node_hi = np.stack([nd.hi for nd in nodes])
        groups = str_pack(node_lo, node_hi, capacity, work)
        nodes = [
            RTreeNode(
                node_lo[g].min(axis=0),
                node_hi[g].max(axis=0),
                children=[nodes[i] for i in g],
            )
            for g in groups
        ]
    return nodes[0]
