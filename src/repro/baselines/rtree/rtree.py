"""The R-Tree index: the paper's fastest static baseline.

``build()`` runs STR bulk loading (the paper's choice, Section 6.1) or —
for the ablation comparing against one-at-a-time construction — Guttman
insertion.  Queries walk the tree depth-first, pruning all children of a
node with one vectorized MBR intersection test.

Updates (beyond the paper): the R-Tree is the classic dynamic spatial
structure, so inserts take the direct path — each appended row is placed
by Guttman ChooseLeaf/quadratic-split insertion into the existing
(STR-built) tree.  Deletes tombstone rows in the store *and* condense
the tree: dead rows are dropped from their leaves, affected leaf MBRs
are re-tightened to the surviving members, emptied nodes are pruned, and
ancestor MBRs shrink on the way back up — so post-delete queries stop
visiting dead space instead of scanning conservative boxes forever.
(Unlike Guttman's full CondenseTree, underfull nodes are not dissolved
and re-inserted; fanout may sag below the minimum fill until a rebuild,
which costs extra node visits but never correctness.)
"""

from __future__ import annotations

import numpy as np

from repro.baselines.rtree.guttman import GuttmanRTree
from repro.baselines.rtree.node import RTreeNode
from repro.baselines.rtree.str_bulkload import build_str_rtree
from repro.datasets.store import BoxStore
from repro.errors import ConfigurationError, QueryError
from repro.geometry.predicates import boxes_intersect_window
from repro.index.base import MutableSpatialIndex
from repro.queries.query import Query, QueryPlan


class RTreeIndex(MutableSpatialIndex):
    """Static R-Tree over a :class:`BoxStore`.

    Parameters
    ----------
    store:
        Backing data array (never reordered by this index; leaves hold
        row-index vectors).
    capacity:
        Node capacity; the paper uses 60 for both the R-Tree and QUASII's
        bottom threshold so their leaves are comparable.
    method:
        ``"str"`` (default, the paper's bulk loading) or ``"guttman"``
        (dynamic insertion ablation).
    """

    name = "R-Tree"

    def __init__(
        self, store: BoxStore, capacity: int = 60, method: str = "str"
    ) -> None:
        super().__init__(store)
        if method not in ("str", "guttman"):
            raise ConfigurationError(
                f"unknown build method {method!r}; use 'str' or 'guttman'"
            )
        if capacity < 2:
            raise ConfigurationError(f"capacity must be >= 2, got {capacity}")
        self._capacity = capacity
        self._method = method
        self._root: RTreeNode | None = None
        if method == "guttman":
            self.name = "R-Tree(Guttman)"

    @property
    def root(self) -> RTreeNode | None:
        """Root node after :meth:`build` (``None`` before)."""
        return self._root

    def build(self) -> None:
        """Construct the tree — the static pre-processing the paper times."""
        if self._built:
            return
        if self._store.n == 0:
            # Start-empty-then-insert: the first insert creates the root.
            self._built = True
            return
        if self._method == "str":
            work = [0]
            self._root = build_str_rtree(self._store, self._capacity, work)
            self.build_work = work[0]
        else:
            self._root = GuttmanRTree(self._store, self._capacity).insert_all()
            # Each insert descends the tree once; charge one row per level.
            self.build_work = self._store.n * self._root.height()
        self._built = True

    def _candidates(self, query: Query) -> np.ndarray:
        if self._root is None:
            if self._built:
                # Built empty, no inserts yet: nothing to test.
                return np.empty(0, dtype=np.int64)
            raise QueryError("R-Tree queried before build(); call build() first")
        out: list[np.ndarray] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.stats.nodes_visited += 1
            if node.is_leaf:
                self.stats.objects_tested += node.rows.size
                out.append(node.rows)
            else:
                mask = boxes_intersect_window(
                    node.child_lo, node.child_hi, query.lo, query.hi
                )
                for i in np.flatnonzero(mask):
                    stack.append(node.children[i])
        if not out:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(out)

    def _plan(self, query: Query) -> QueryPlan:
        """Walk the tree counting nodes and leaf rows, mutating nothing."""
        if self._root is None:
            if self._built:
                return QueryPlan(
                    index=self.name, query=query, nodes=0, candidates=0
                )
            raise QueryError("R-Tree planned before build(); call build() first")
        nodes = 0
        candidates = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            nodes += 1
            if node.is_leaf:
                candidates += int(node.rows.size)
            else:
                mask = boxes_intersect_window(
                    node.child_lo, node.child_hi, query.lo, query.hi
                )
                for i in np.flatnonzero(mask):
                    stack.append(node.children[i])
        return QueryPlan(
            index=self.name,
            query=query,
            nodes=nodes,
            candidates=candidates,
            exact=True,
        )

    def _insert(
        self, lo: np.ndarray, hi: np.ndarray, ids: np.ndarray | None
    ) -> np.ndarray:
        """Direct insert: Guttman-place each appended row into the tree.

        Before ``build()`` the rows simply join the store and are swept
        up by the bulk load.
        """
        first_row = self._store.n
        assigned = self._store.append_validated(lo, hi, ids)
        if self._built and assigned.size:
            inserter = GuttmanRTree(self._store, self._capacity, root=self._root)
            for row in range(first_row, self._store.n):
                inserter.insert(row)
            self._root = inserter.root
        return assigned

    def _delete(self, ids: np.ndarray) -> int:
        """Tombstone rows, then condense the tree along affected paths."""
        victim_rows = self._store.find_live_rows(ids)
        removed = self._store.tombstone_rows(victim_rows)
        if self._root is not None and victim_rows.size:
            victims = np.zeros(self._store.n, dtype=bool)
            victims[victim_rows] = True
            # Every leaf holding a victim row has an MBR containing that
            # row's box, so descending only into children intersecting
            # the victims' union MBB reaches all affected leaves.
            w_lo = self._store.lo[victim_rows].min(axis=0)
            w_hi = self._store.hi[victim_rows].max(axis=0)
            if self._condense(self._root, victims, w_lo, w_hi):
                self._root = None
        return removed

    def _condense(
        self,
        node: RTreeNode,
        victims: np.ndarray,
        w_lo: np.ndarray,
        w_hi: np.ndarray,
    ) -> bool:
        """Drop victim rows below ``node``, re-tightening MBRs bottom-up.

        Returns True when the subtree is left empty (caller prunes it).
        """
        if node.is_leaf:
            hit = victims[node.rows]
            if not hit.any():
                return node.rows.size == 0
            node.rows = node.rows[~hit]
            if node.rows.size == 0:
                return True
            node.lo = self._store.lo[node.rows].min(axis=0)
            node.hi = self._store.hi[node.rows].max(axis=0)
            return False
        mask = boxes_intersect_window(node.child_lo, node.child_hi, w_lo, w_hi)
        if not mask.any():
            return False
        survivors = [
            child
            for i, child in enumerate(node.children)
            if not (mask[i] and self._condense(child, victims, w_lo, w_hi))
        ]
        if not survivors:
            return True
        node.children = survivors
        node.recompute_mbr()
        return False

    def _on_compaction(self, remap: np.ndarray) -> None:
        """Remap leaf row vectors; drop any straggler dead entries.

        Delete-time condensing already removed victims from their
        leaves, so normally this only rewrites row indices.  Any dead
        row a leaf still references (e.g. a tree handed a store that was
        tombstoned before this index adopted it) is dropped here, with
        emptied nodes pruned and MBRs re-tightened on the way up.
        """
        if self._root is not None and self._remap_node(self._root, remap):
            self._root = None

    def _remap_node(self, node: RTreeNode, remap: np.ndarray) -> bool:
        """Remap the subtree; returns True when it is left empty."""
        if node.is_leaf:
            rows = remap[node.rows]
            dropped = rows.size and (rows < 0).any()
            node.rows = rows[rows >= 0]
            if node.rows.size == 0:
                return True
            if dropped:
                node.lo = self._store.lo[node.rows].min(axis=0)
                node.hi = self._store.hi[node.rows].max(axis=0)
            return False
        survivors = [c for c in node.children if not self._remap_node(c, remap)]
        if not survivors:
            return True
        if len(survivors) != len(node.children):
            node.children = survivors
            node.recompute_mbr()
        return False

    def height(self) -> int:
        """Tree height (levels); 0 for a built-but-empty tree."""
        if self._root is None:
            if self._built:
                return 0
            raise QueryError("R-Tree not built yet")
        return self._root.height()

    def memory_bytes(self) -> int:
        """Approximate structure footprint: nodes plus leaf row vectors."""
        if self._root is None:
            return 0
        d = self._store.ndim
        per_node = 120 + 2 * 8 * d
        return self._root.count_nodes() * per_node + 8 * self._store.n
