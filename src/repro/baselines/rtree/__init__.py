"""R-Tree baseline: STR bulk loading plus dynamic Guttman insertion."""

from repro.baselines.rtree.guttman import GuttmanRTree
from repro.baselines.rtree.node import RTreeNode
from repro.baselines.rtree.rtree import RTreeIndex
from repro.baselines.rtree.str_bulkload import build_str_rtree, str_pack

__all__ = [
    "GuttmanRTree",
    "RTreeIndex",
    "RTreeNode",
    "build_str_rtree",
    "str_pack",
]
