"""Uniform grid index with both object-assignment strategies (Section 3.2/6.2).

Space-oriented partitioning must decide where an object that overlaps
several cells lives:

* **replication** — the object is stored in *every* overlapping cell; the
  query must de-duplicate results, and big objects blow up memory.
* **query extension** — the object is stored only in the cell holding its
  *center*; to stay correct the query window is enlarged by half the
  maximum object extent per side, so more candidates are tested.

The paper's Figure 6a quantifies both penalties against the R-Tree;
Figure 6b shows the best cell count depends on data skew.  Both behaviours
are reproduced by this one class via the ``assignment`` switch.

Updates (beyond the paper): inserts take a *direct* path — the new rows'
cell assignments are computed immediately and kept in a small overflow
extension of the CSR layout, which queries probe alongside the main
arrays; once the overflow outgrows ``merge_threshold`` entries it is
compacted into a fresh CSR (one ``merges`` counter tick).  Deletes are
store-level tombstones filtered at candidate-test time; a store
compaction remaps CSR/overflow entries through the position map and
sheds dead ones (no cell recomputation, no re-sort).
"""

from __future__ import annotations

import time

import numpy as np

from repro.datasets.store import BoxStore
from repro.errors import ConfigurationError, QueryError
from repro.geometry.box import Box
from repro.index.base import IndexStats, MutableSpatialIndex
from repro.queries.query import Query, QueryPlan, QueryResult
from repro.util.arrays import gather_ranges

#: Assignment strategy names accepted by :class:`UniformGridIndex`.
ASSIGNMENTS = ("query_extension", "replication")


class UniformGridIndex(MutableSpatialIndex):
    """A static uniform grid over the dataset universe.

    Parameters
    ----------
    store:
        Backing data array (referenced, never reordered).
    universe:
        The partitioned space; cells are ``universe`` divided uniformly
        ``partitions_per_dim`` times per dimension.
    partitions_per_dim:
        The paper's grid configuration knob (100 for its uniform dataset,
        220 for the skewed neuroscience one — found by sweeping).
    assignment:
        ``"query_extension"`` (paper's choice for Grid/Mosaic) or
        ``"replication"``.
    merge_threshold:
        Overflow entries tolerated before insert compaction rebuilds the
        CSR arrays (the grid's ``merges`` trigger).
    """

    def __init__(
        self,
        store: BoxStore,
        universe: Box,
        partitions_per_dim: int = 100,
        assignment: str = "query_extension",
        merge_threshold: int = 4096,
    ) -> None:
        super().__init__(store)
        if assignment not in ASSIGNMENTS:
            raise ConfigurationError(
                f"unknown assignment {assignment!r}; expected one of {ASSIGNMENTS}"
            )
        if partitions_per_dim < 1:
            raise ConfigurationError(
                f"partitions_per_dim must be >= 1, got {partitions_per_dim}"
            )
        if universe.ndim != store.ndim:
            raise ConfigurationError(
                f"universe has {universe.ndim} dims, store has {store.ndim}"
            )
        self._universe = universe
        self._parts = int(partitions_per_dim)
        self._assignment = assignment
        self.name = (
            "GridQueryExt" if assignment == "query_extension" else "GridReplication"
        )
        self._uni_lo = np.asarray(universe.lo, dtype=np.float64)
        self._cell_side = (
            np.asarray(universe.hi, dtype=np.float64) - self._uni_lo
        ) / self._parts
        if np.any(self._cell_side <= 0):
            raise ConfigurationError("universe must have positive extent")
        if merge_threshold < 1:
            raise ConfigurationError(
                f"merge_threshold must be >= 1, got {merge_threshold}"
            )
        self._merge_threshold = int(merge_threshold)
        # CSR layout, filled by build():
        self._sorted_rows: np.ndarray | None = None
        self._offsets: np.ndarray | None = None
        # Overflow extension: (flat cell, row) pairs of inserted objects
        # not yet compacted into the CSR arrays.
        self._overflow_flat = np.empty(0, dtype=np.int64)
        self._overflow_rows = np.empty(0, dtype=np.int64)

    @property
    def partitions_per_dim(self) -> int:
        """Grid resolution (cells per dimension)."""
        return self._parts

    @property
    def assignment(self) -> str:
        """Active object-assignment strategy."""
        return self._assignment

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def _cell_coords(self, points: np.ndarray) -> np.ndarray:
        """Integer cell coordinates of points, clamped into the grid."""
        rel = (points - self._uni_lo) / self._cell_side
        return np.clip(rel.astype(np.int64), 0, self._parts - 1)

    def build(self) -> None:
        """Assign every live object to its cell(s) — the grid's pre-processing.

        Tombstoned rows are excluded (they can never match), so overflow
        compactions shed dead entries and the CSR stays at live size
        under sustained churn.
        """
        if self._built:
            return
        if self._store.n_dead:
            rows = self._store.live_rows()
        else:
            rows = np.arange(self._store.n, dtype=np.int64)
        rows, flat = self._assign(rows)
        order = np.argsort(flat, kind="stable")
        self._sorted_rows = rows[order]
        counts = np.bincount(flat, minlength=self._parts**self._store.ndim)
        self._offsets = np.concatenate(([0], np.cumsum(counts)))
        # Build cost (comparison model): one linear assignment pass plus a
        # sort of all entries (replication inflates the entry count).
        m = int(rows.size)
        self.build_work = m + int(m * np.log2(max(m, 2)))
        self._built = True

    def _assign(self, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(row, flat cell) pairs for the given rows under the active strategy.

        Query extension yields one entry per row (center cell);
        replication yields one per overlapped cell.
        """
        d = self._store.ndim
        if self._assignment == "query_extension":
            centers = (self._store.lo[rows] + self._store.hi[rows]) * 0.5
            cells = self._cell_coords(centers)
        else:
            rows, cells = self._replicated_assignment(rows)
        flat = np.ravel_multi_index(
            tuple(cells[:, k] for k in range(d)), (self._parts,) * d
        )
        return rows, flat

    def _replicated_assignment(
        self, rows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """(row, cell) pairs for every cell each given object overlaps."""
        if rows.size == 0:
            return rows, np.empty((0, self._store.ndim), dtype=np.int64)
        lo_cells = self._cell_coords(self._store.lo[rows])
        hi_cells = self._cell_coords(self._store.hi[rows])
        spans = hi_cells - lo_cells + 1
        copies = np.prod(spans, axis=1)
        row_list: list[np.ndarray] = []
        cell_list: list[np.ndarray] = []
        single = copies == 1
        if single.any():
            row_list.append(rows[single])
            cell_list.append(lo_cells[single])
        for k in np.flatnonzero(~single):
            ranges = [
                np.arange(lo_cells[k, dim], hi_cells[k, dim] + 1)
                for dim in range(self._store.ndim)
            ]
            mesh = np.stack(
                [g.ravel() for g in np.meshgrid(*ranges, indexing="ij")], axis=1
            )
            row_list.append(np.full(mesh.shape[0], rows[k], dtype=np.int64))
            cell_list.append(mesh)
        return np.concatenate(row_list), np.concatenate(cell_list)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def _insert(
        self, lo: np.ndarray, hi: np.ndarray, ids: np.ndarray | None
    ) -> np.ndarray:
        """Direct insert: assign the new rows to cells immediately.

        Before ``build()`` the rows simply join the store (the build pass
        will pick them up); after it they extend the overflow arrays and
        trigger a CSR compaction past ``merge_threshold``.
        """
        first_row = self._store.n
        assigned = self._store.append_validated(lo, hi, ids)
        if self._built and assigned.size:
            new_rows = np.arange(first_row, self._store.n, dtype=np.int64)
            rows, flat = self._assign(new_rows)
            self._overflow_flat = np.concatenate([self._overflow_flat, flat])
            self._overflow_rows = np.concatenate([self._overflow_rows, rows])
            if self._overflow_flat.size > self._merge_threshold:
                self._merge_overflow()
        return assigned

    def _merge_overflow(self) -> None:
        """Compact the overflow into a fresh CSR (the grid's lazy merge)."""
        prior_work = self.build_work
        self._built = False
        self._sorted_rows = None
        self._offsets = None
        self._overflow_flat = np.empty(0, dtype=np.int64)
        self._overflow_rows = np.empty(0, dtype=np.int64)
        self.build()
        # build() charges only the rebuild; keep the comparison-model
        # total cumulative across the original build and every compaction.
        self.build_work += prior_work
        self.stats.merges += 1

    def pending_updates(self) -> int:
        """Overflow entries not yet compacted into the CSR arrays."""
        return int(self._overflow_flat.size)

    def _on_compaction(self, remap: np.ndarray) -> None:
        """Remap CSR and overflow entries; drop entries of dead rows.

        Cell assignment depends only on geometry, which compaction does
        not change, so no cells are recomputed and no entries re-sorted:
        row indices pass through ``remap``, entries of dropped rows
        vanish, and the per-cell offsets shrink accordingly.
        """
        if self._sorted_rows is not None:
            # Reconstruct each entry's flat cell from the CSR offsets.
            flat = np.repeat(
                np.arange(self._offsets.size - 1, dtype=np.int64),
                np.diff(self._offsets),
            )
            rows = remap[self._sorted_rows]
            keep = rows >= 0
            self._sorted_rows = rows[keep]
            counts = np.bincount(
                flat[keep], minlength=self._parts**self._store.ndim
            )
            self._offsets = np.concatenate(([0], np.cumsum(counts)))
        if self._overflow_rows.size:
            rows = remap[self._overflow_rows]
            keep = rows >= 0
            self._overflow_rows = rows[keep]
            self._overflow_flat = self._overflow_flat[keep]

    # ------------------------------------------------------------------
    # Query: the filter step (cells -> candidate rows)
    # ------------------------------------------------------------------
    def _cells_for(self, query_lo: np.ndarray, query_hi: np.ndarray) -> np.ndarray:
        """Flat ids of every cell the (possibly extended) window overlaps."""
        d = self._store.ndim
        if self._assignment == "query_extension":
            # Centers lie within extent/2 of any point of their box, so
            # half the max extent per side keeps center assignment exact.
            margin = self._store.max_extent / 2.0
            win_lo = query_lo - margin
            win_hi = query_hi + margin
        else:
            win_lo = query_lo
            win_hi = query_hi
        lo_cell = self._cell_coords(win_lo[None, :])[0]
        hi_cell = self._cell_coords(win_hi[None, :])[0]
        # Flattened ids of all cells in the hyper-rectangle of cells.
        axes = [np.arange(lo_cell[k], hi_cell[k] + 1) for k in range(d)]
        mesh = np.meshgrid(*axes, indexing="ij")
        return np.ravel_multi_index(
            tuple(m.ravel() for m in mesh), (self._parts,) * d
        )

    def _rows_in_cells(self, flat: np.ndarray) -> np.ndarray:
        """Candidate rows stored in the given cells (CSR + overflow),
        *before* replication de-duplication."""
        candidate_pos = gather_ranges(self._offsets[flat], self._offsets[flat + 1])
        rows = self._sorted_rows[candidate_pos]
        if self._overflow_flat.size:
            # Probe the uncompacted insert overflow with the same cells.
            extra = self._overflow_rows[np.isin(self._overflow_flat, flat)]
            rows = np.concatenate([rows, extra])
        return rows

    def _candidates(self, query: Query) -> np.ndarray:
        if not self._built:
            raise QueryError("grid queried before build(); call build() first")
        flat = self._cells_for(query.lo, query.hi)
        self.stats.nodes_visited += flat.size
        rows = self._rows_in_cells(flat)
        # Candidate work is counted before de-duplication: replicated
        # copies are exactly the extra objects the paper charges this
        # strategy for (Section 6.2).
        self.stats.objects_tested += rows.size
        if self._assignment == "replication" and rows.size:
            # The de-duplication step the paper charges replication for.
            rows = np.unique(rows)
        return rows

    def _execute_batch(self, queries: list[Query]) -> list[QueryResult]:
        """One CSR gather and one stacked refine cover the whole batch.

        The per-query cell arithmetic stays a (cheap) loop, but the two
        expensive steps run once per batch instead of once per query:
        all cells of all queries go through a single ``gather_ranges`` +
        row gather, and all candidate rows are tested in one vectorized
        refine call per predicate present.
        """
        if not self._built:
            raise QueryError("grid queried before build(); call build() first")
        t0 = time.perf_counter()
        flats = [self._cells_for(q.lo, q.hi) for q in queries]
        cell_counts = np.array([f.size for f in flats], dtype=np.int64)
        all_flat = (
            np.concatenate(flats) if flats else np.empty(0, dtype=np.int64)
        )
        starts = self._offsets[all_flat]
        ends = self._offsets[all_flat + 1]
        all_rows = self._sorted_rows[gather_ranges(starts, ends)]
        spans = ends - starts
        edges = np.concatenate(([0], np.cumsum(cell_counts)))
        rows_list: list[np.ndarray] = []
        per_stats: list[IndexStats] = []
        pos = 0
        for i, q in enumerate(queries):
            # Cells were gathered in query order, so each query's rows
            # are a contiguous run of the batch gather.
            width = int(spans[edges[i] : edges[i + 1]].sum())
            rows = all_rows[pos : pos + width]
            pos += width
            if self._overflow_flat.size:
                extra = self._overflow_rows[
                    np.isin(self._overflow_flat, flats[i])
                ]
                rows = np.concatenate([rows, extra])
            self.stats.nodes_visited += int(cell_counts[i])
            self.stats.objects_tested += rows.size
            per_stats.append(
                IndexStats(
                    nodes_visited=int(cell_counts[i]),
                    objects_tested=int(rows.size),
                )
            )
            if self._assignment == "replication" and rows.size:
                rows = np.unique(rows)
            rows_list.append(rows)
        payloads = self._refine_stacked(queries, rows_list)
        return self._wrap_batch(
            queries, payloads, per_stats, time.perf_counter() - t0
        )

    def _plan(self, query: Query) -> QueryPlan:
        """Cells and candidate rows the query would touch (no counters).

        Replication counts stored *copies* here (the per-cell entry
        totals); execution de-duplicates before the refine step, so the
        replicated plan is an upper bound (``exact=False``) — computing
        the deduplicated count would cost the very gather planning
        exists to avoid.
        """
        if not self._built:
            raise QueryError("grid planned before build(); call build() first")
        flat = self._cells_for(query.lo, query.hi)
        candidates = int(
            (self._offsets[flat + 1] - self._offsets[flat]).sum()
        )
        if self._overflow_flat.size:
            candidates += int(np.isin(self._overflow_flat, flat).sum())
        return QueryPlan(
            index=self.name,
            query=query,
            nodes=int(flat.size),
            candidates=candidates,
            exact=self._assignment == "query_extension",
        )

    def memory_bytes(self) -> int:
        """CSR arrays (replication inflates ``sorted_rows``) plus overflow."""
        if not self._built:
            return 0
        return int(
            self._sorted_rows.nbytes
            + self._offsets.nbytes
            + self._overflow_flat.nbytes
            + self._overflow_rows.nbytes
        )

    def replication_factor(self) -> float:
        """Stored copies per live object (1.0 under query extension).

        Counts CSR and overflow entries of live rows only, so the metric
        stays meaningful between compactions and after deletes.
        """
        if not self._built:
            raise QueryError("grid not built yet")
        entries = np.concatenate([self._sorted_rows, self._overflow_rows])
        if self._store.n_dead:
            entries = entries[self._store.live[entries]]
        return entries.size / max(self._store.live_count, 1)
