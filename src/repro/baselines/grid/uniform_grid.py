"""Uniform grid index with both object-assignment strategies (Section 3.2/6.2).

Space-oriented partitioning must decide where an object that overlaps
several cells lives:

* **replication** — the object is stored in *every* overlapping cell; the
  query must de-duplicate results, and big objects blow up memory.
* **query extension** — the object is stored only in the cell holding its
  *center*; to stay correct the query window is enlarged by half the
  maximum object extent per side, so more candidates are tested.

The paper's Figure 6a quantifies both penalties against the R-Tree;
Figure 6b shows the best cell count depends on data skew.  Both behaviours
are reproduced by this one class via the ``assignment`` switch.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.store import BoxStore
from repro.errors import ConfigurationError, QueryError
from repro.geometry.box import Box
from repro.geometry.predicates import boxes_intersect_window
from repro.index.base import SpatialIndex
from repro.queries.range_query import RangeQuery
from repro.util.arrays import gather_ranges

#: Assignment strategy names accepted by :class:`UniformGridIndex`.
ASSIGNMENTS = ("query_extension", "replication")


class UniformGridIndex(SpatialIndex):
    """A static uniform grid over the dataset universe.

    Parameters
    ----------
    store:
        Backing data array (referenced, never reordered).
    universe:
        The partitioned space; cells are ``universe`` divided uniformly
        ``partitions_per_dim`` times per dimension.
    partitions_per_dim:
        The paper's grid configuration knob (100 for its uniform dataset,
        220 for the skewed neuroscience one — found by sweeping).
    assignment:
        ``"query_extension"`` (paper's choice for Grid/Mosaic) or
        ``"replication"``.
    """

    def __init__(
        self,
        store: BoxStore,
        universe: Box,
        partitions_per_dim: int = 100,
        assignment: str = "query_extension",
    ) -> None:
        super().__init__(store)
        if assignment not in ASSIGNMENTS:
            raise ConfigurationError(
                f"unknown assignment {assignment!r}; expected one of {ASSIGNMENTS}"
            )
        if partitions_per_dim < 1:
            raise ConfigurationError(
                f"partitions_per_dim must be >= 1, got {partitions_per_dim}"
            )
        if universe.ndim != store.ndim:
            raise ConfigurationError(
                f"universe has {universe.ndim} dims, store has {store.ndim}"
            )
        self._universe = universe
        self._parts = int(partitions_per_dim)
        self._assignment = assignment
        self.name = (
            "GridQueryExt" if assignment == "query_extension" else "GridReplication"
        )
        self._uni_lo = np.asarray(universe.lo, dtype=np.float64)
        self._cell_side = (
            np.asarray(universe.hi, dtype=np.float64) - self._uni_lo
        ) / self._parts
        if np.any(self._cell_side <= 0):
            raise ConfigurationError("universe must have positive extent")
        # CSR layout, filled by build():
        self._sorted_rows: np.ndarray | None = None
        self._offsets: np.ndarray | None = None

    @property
    def partitions_per_dim(self) -> int:
        """Grid resolution (cells per dimension)."""
        return self._parts

    @property
    def assignment(self) -> str:
        """Active object-assignment strategy."""
        return self._assignment

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def _cell_coords(self, points: np.ndarray) -> np.ndarray:
        """Integer cell coordinates of points, clamped into the grid."""
        rel = (points - self._uni_lo) / self._cell_side
        return np.clip(rel.astype(np.int64), 0, self._parts - 1)

    def build(self) -> None:
        """Assign every object to its cell(s) — the grid's pre-processing."""
        if self._built:
            return
        d = self._store.ndim
        if self._assignment == "query_extension":
            centers = (self._store.lo + self._store.hi) * 0.5
            cells = self._cell_coords(centers)
            rows = np.arange(self._store.n, dtype=np.int64)
        else:
            rows, cells = self._replicated_assignment()
        flat = np.ravel_multi_index(
            tuple(cells[:, k] for k in range(d)), (self._parts,) * d
        )
        order = np.argsort(flat, kind="stable")
        self._sorted_rows = rows[order]
        counts = np.bincount(flat, minlength=self._parts**d)
        self._offsets = np.concatenate(([0], np.cumsum(counts)))
        # Build cost (comparison model): one linear assignment pass plus a
        # sort of all entries (replication inflates the entry count).
        m = int(rows.size)
        self.build_work = m + int(m * np.log2(max(m, 2)))
        self._built = True

    def _replicated_assignment(self) -> tuple[np.ndarray, np.ndarray]:
        """(row, cell) pairs for every cell each object overlaps."""
        lo_cells = self._cell_coords(self._store.lo)
        hi_cells = self._cell_coords(self._store.hi)
        spans = hi_cells - lo_cells + 1
        copies = np.prod(spans, axis=1)
        row_list: list[np.ndarray] = []
        cell_list: list[np.ndarray] = []
        single = copies == 1
        if single.any():
            row_list.append(np.flatnonzero(single).astype(np.int64))
            cell_list.append(lo_cells[single])
        for row in np.flatnonzero(~single):
            ranges = [
                np.arange(lo_cells[row, k], hi_cells[row, k] + 1)
                for k in range(self._store.ndim)
            ]
            mesh = np.stack(
                [g.ravel() for g in np.meshgrid(*ranges, indexing="ij")], axis=1
            )
            row_list.append(np.full(mesh.shape[0], row, dtype=np.int64))
            cell_list.append(mesh)
        return np.concatenate(row_list), np.concatenate(cell_list)

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def _query(self, query: RangeQuery) -> np.ndarray:
        if not self._built:
            raise QueryError("grid queried before build(); call build() first")
        d = self._store.ndim
        if self._assignment == "query_extension":
            # Centers lie within extent/2 of any point of their box, so
            # half the max extent per side keeps center assignment exact.
            margin = self._store.max_extent / 2.0
            win_lo = query.lo - margin
            win_hi = query.hi + margin
        else:
            win_lo = query.lo
            win_hi = query.hi
        lo_cell = self._cell_coords(win_lo[None, :])[0]
        hi_cell = self._cell_coords(win_hi[None, :])[0]

        # Flattened ids of all cells in the hyper-rectangle of cells.
        axes = [np.arange(lo_cell[k], hi_cell[k] + 1) for k in range(d)]
        mesh = np.meshgrid(*axes, indexing="ij")
        flat = np.ravel_multi_index(
            tuple(m.ravel() for m in mesh), (self._parts,) * d
        )
        self.stats.nodes_visited += flat.size
        candidate_pos = gather_ranges(self._offsets[flat], self._offsets[flat + 1])
        rows = self._sorted_rows[candidate_pos]
        # Candidate work is counted before de-duplication: replicated
        # copies are exactly the extra objects the paper charges this
        # strategy for (Section 6.2).
        self.stats.objects_tested += rows.size
        if self._assignment == "replication" and rows.size:
            # The de-duplication step the paper charges replication for.
            rows = np.unique(rows)
        if rows.size == 0:
            return np.empty(0, dtype=np.int64)
        store = self._store
        mask = boxes_intersect_window(
            store.lo[rows], store.hi[rows], query.lo, query.hi
        )
        return store.ids[rows[mask]]

    def memory_bytes(self) -> int:
        """CSR arrays (replication inflates ``sorted_rows``)."""
        if not self._built:
            return 0
        return int(self._sorted_rows.nbytes + self._offsets.nbytes)

    def replication_factor(self) -> float:
        """Stored copies per object (1.0 under query extension)."""
        if not self._built:
            raise QueryError("grid not built yet")
        return self._sorted_rows.size / self._store.n
