"""Uniform grid baseline (replication and query-extension assignment)."""

from repro.baselines.grid.uniform_grid import ASSIGNMENTS, UniformGridIndex

__all__ = ["ASSIGNMENTS", "UniformGridIndex"]
