"""Mosaic: the paper's space-oriented incremental baseline (Section 3.2).

Mosaic adapts Space Odyssey's incremental indexing to main memory: it
builds an Octree top-down as a side effect of queries.  For every query it
finds the partitions overlapping the query window and splits each *once*
into ``2^d`` equal children, reassigning the partition's objects by their
centers.  Frequently queried regions thus deepen by one level per query
until they reach the capacity threshold — the repeated re-partitioning the
paper identifies as Mosaic's main overhead.

Object assignment uses the query-extension technique (the paper shows in
Section 6.2 that replication is far worse for volumetric objects), so
queries are enlarged by half the maximum object extent when collecting
candidate partitions.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.store import BoxStore
from repro.errors import ConfigurationError
from repro.geometry.box import Box
from repro.index.base import SpatialIndex
from repro.queries.query import Query, QueryPlan


class _Partition:
    """One Octree cell: spatial bounds plus member rows or children."""

    __slots__ = ("lo", "hi", "rows", "children", "depth", "born")

    def __init__(
        self,
        lo: np.ndarray,
        hi: np.ndarray,
        rows: np.ndarray,
        depth: int,
        born: int = -1,
    ) -> None:
        self.lo = lo
        self.hi = hi
        self.rows = rows
        self.children: list[_Partition] | None = None
        self.depth = depth
        # Serial of the query that created this partition; a query never
        # splits partitions it just created (one level of deepening per
        # query, as in the paper's Figure 2).
        self.born = born

    @property
    def is_leaf(self) -> bool:
        return self.children is None

    @property
    def size(self) -> int:
        return int(self.rows.size) if self.rows is not None else 0


# Stateful but deliberately no on_compaction: Mosaic cannot absorb a
# compaction remap and documents full-rebuild-on-compaction instead
# (the inherited _on_compaction raising default *is* the contract).
class MosaicIndex(SpatialIndex):  # ql: allow[QL002]
    """Incrementally built Octree (the paper's "Mosaic").

    Parameters
    ----------
    store:
        Backing data array (referenced; partitions hold row-index arrays).
    universe:
        Space the root partition covers.
    capacity:
        Partitions at or below this size stop splitting (kept equal to the
        other indexes' node capacity, 60).
    max_depth:
        Hard depth limit guarding against pathological point clusters.
    """

    name = "Mosaic"

    def __init__(
        self,
        store: BoxStore,
        universe: Box,
        capacity: int = 60,
        max_depth: int = 24,
    ) -> None:
        super().__init__(store)
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        if max_depth < 1:
            raise ConfigurationError(f"max_depth must be >= 1, got {max_depth}")
        if universe.ndim != store.ndim:
            raise ConfigurationError(
                f"universe has {universe.ndim} dims, store has {store.ndim}"
            )
        self._capacity = capacity
        self._max_depth = max_depth
        self._universe = universe
        self._centers = (store.lo + store.hi) * 0.5
        self._root = _Partition(
            np.asarray(universe.lo, dtype=np.float64),
            np.asarray(universe.hi, dtype=np.float64),
            np.arange(store.n, dtype=np.int64),
            depth=0,
        )
        self._fanout = 1 << store.ndim
        self._query_serial = 0

    def build(self) -> None:
        """No-op: Mosaic's structure emerges from queries."""
        self._built = True

    # ------------------------------------------------------------------
    def _split(self, part: _Partition) -> None:
        """Split a leaf into ``2^d`` children, reassigning rows by center."""
        d = self._store.ndim
        mid = (part.lo + part.hi) * 0.5
        centers = self._centers[part.rows]
        child_index = np.zeros(part.rows.size, dtype=np.int64)
        for k in range(d):
            child_index |= (centers[:, k] > mid[k]).astype(np.int64) << (d - 1 - k)
        order = np.argsort(child_index, kind="stable")
        sorted_rows = part.rows[order]
        counts = np.bincount(child_index, minlength=self._fanout)
        offsets = np.concatenate(([0], np.cumsum(counts)))
        children: list[_Partition] = []
        for c in range(self._fanout):
            offs = np.array(
                [(c >> (d - 1 - k)) & 1 for k in range(d)], dtype=np.int64
            )
            lo = np.where(offs == 1, mid, part.lo)
            hi = np.where(offs == 1, part.hi, mid)
            children.append(
                _Partition(
                    lo,
                    hi,
                    sorted_rows[offsets[c] : offsets[c + 1]],
                    part.depth + 1,
                    born=self._query_serial,
                )
            )
        part.children = children
        part.rows = None
        self.stats.cracks += 1
        self.stats.rows_reorganized += int(offsets[-1])

    def _candidates(self, query: Query) -> np.ndarray:
        self._query_serial += 1
        # Centers sit within extent/2 of their boxes, so half the maximum
        # extent keeps center-based assignment exact (query extension).
        margin = self._store.max_extent / 2.0
        win_lo = query.lo - margin
        win_hi = query.hi + margin
        out: list[np.ndarray] = []
        stack = [self._root]
        while stack:
            part = stack.pop()
            self.stats.nodes_visited += 1
            if np.any(part.lo > win_hi) or np.any(part.hi < win_lo):
                continue
            if part.is_leaf:
                # The per-query, one-level deepening of Figure 2: only
                # partitions that existed before this query may split.
                if (
                    part.size > self._capacity
                    and part.depth < self._max_depth
                    and part.born < self._query_serial
                ):
                    self._split(part)
                    stack.extend(part.children)
                    continue
                rows = part.rows
                if rows.size:
                    self.stats.objects_tested += rows.size
                    out.append(rows)
            else:
                stack.extend(part.children)
        if not out:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(out)

    def _plan(self, query: Query) -> QueryPlan:
        """Walk the current Octree without splitting anything.

        ``exact=False``: execution deepens overlapping partitions by one
        level, so the split's children may prune candidates the current
        leaves would test.
        """
        margin = self._store.max_extent / 2.0
        win_lo = query.lo - margin
        win_hi = query.hi + margin
        nodes = 0
        candidates = 0
        stack = [self._root]
        while stack:
            part = stack.pop()
            nodes += 1
            if np.any(part.lo > win_hi) or np.any(part.hi < win_lo):
                continue
            if part.is_leaf:
                candidates += part.size
            else:
                stack.extend(part.children)
        return QueryPlan(
            index=self.name,
            query=query,
            nodes=nodes,
            candidates=candidates,
            exact=False,
        )

    # ------------------------------------------------------------------
    def partition_count(self) -> int:
        """Number of leaf partitions currently materialized."""
        count = 0
        stack = [self._root]
        while stack:
            part = stack.pop()
            if part.is_leaf:
                count += 1
            else:
                stack.extend(part.children)
        return count

    def max_depth_reached(self) -> int:
        """Deepest materialized partition."""
        deepest = 0
        stack = [self._root]
        while stack:
            part = stack.pop()
            deepest = max(deepest, part.depth)
            if not part.is_leaf:
                stack.extend(part.children)
        return deepest

    def memory_bytes(self) -> int:
        """Partition objects plus row arrays."""
        total = 0
        stack = [self._root]
        while stack:
            part = stack.pop()
            total += 100 + 2 * 8 * self._store.ndim
            if part.is_leaf:
                total += int(part.rows.nbytes)
            else:
                stack.extend(part.children)
        return total
