"""Mosaic: incremental Octree baseline adapted from Space Odyssey."""

from repro.baselines.mosaic.mosaic import MosaicIndex

__all__ = ["MosaicIndex"]
