"""NumPy array utilities shared across index implementations."""

from __future__ import annotations

import numpy as np


def gather_ranges(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(starts[i], ends[i])`` without a Python loop.

    The grid index answers a window query by gathering many contiguous
    segments of its cell-sorted row array; doing this with ``np.repeat`` /
    ``cumsum`` instead of a per-cell loop keeps large-window queries (which
    touch tens of thousands of cells) vectorized.

    Parameters
    ----------
    starts, ends:
        Equal-length integer arrays with ``starts <= ends`` element-wise.

    Returns
    -------
    np.ndarray
        ``concatenate([arange(s, e) for s, e in zip(starts, ends)])``.
    """
    starts = np.asarray(starts, dtype=np.int64)
    ends = np.asarray(ends, dtype=np.int64)
    if starts.shape != ends.shape:
        raise ValueError("starts and ends must have the same shape")
    if starts.size == 0:
        return np.empty(0, dtype=np.int64)
    lengths = ends - starts
    if np.any(lengths < 0):
        raise ValueError("ends must be >= starts")
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    boundaries = np.cumsum(lengths)
    offsets = np.repeat(starts - np.concatenate(([0], boundaries[:-1])), lengths)
    return np.arange(total, dtype=np.int64) + offsets
