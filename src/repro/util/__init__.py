"""Small shared utilities (array tricks used by several indexes)."""

from repro.util.arrays import gather_ranges

__all__ = ["gather_ranges"]
