"""Exception hierarchy for the QUASII reproduction library.

All exceptions raised deliberately by this package derive from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` etc.)
propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GeometryError(ReproError):
    """Raised for malformed geometric inputs (e.g. lower corner > upper)."""


class ConfigurationError(ReproError):
    """Raised when an index or generator is configured inconsistently."""


class DatasetError(ReproError):
    """Raised for invalid dataset construction or I/O problems."""


class QueryError(ReproError):
    """Raised when a query is malformed or incompatible with an index."""


class ReplicationError(ReproError):
    """Raised when a replicated shard cannot serve (e.g. all replicas dead)."""


class ParallelError(ReproError):
    """Raised when the process-parallel serving tier fails unrecoverably
    (e.g. a worker process keeps dying faster than it can be respawned)."""
