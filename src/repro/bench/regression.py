"""Perf-regression gate over persisted ``BENCH_<verb>.json`` results.

The bench harness leaves a trajectory behind (one ``BENCH_<verb>.json``
per verb, committed at the repo root); this module closes the loop by
*comparing* a fresh candidate set against that baseline and failing
loudly when a headline metric regressed.  The CLI's ``diff`` verb is a
thin wrapper around :func:`run_diff`:

    python -m repro.bench soak query-api --smoke --json-out bench-results
    python -m repro.bench diff --json-out bench-results   # vs repo root

Headline metrics are the few numbers per verb worth gating on — soak
latency percentiles, query-API speedup ratios, the rebalanced engine's
balance/latency — extracted by :func:`extract_headline`.  New results
carry them directly under ``metrics.headline``; for older files the
extractor falls back to parsing the rendered tables, so a freshly built
gate can still diff against a pre-gate baseline.

A drift only *breaches* when it is both relatively large (worse than
``tolerance``, default 25% — bench runs on shared CI hardware are
noisy) and absolutely large (above a per-metric noise floor, so a
0.2 ms p99 cannot "regress 30%" by jitter alone).  Direction matters:
latencies and balance factors regress upward, speedups and throughput
regress downward.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from pathlib import Path

from repro.bench.reporting import (
    load_bench_files,
    render_table,
    validate_bench_json,
)

__all__ = [
    "Drift",
    "compare_headlines",
    "extract_headline",
    "higher_is_better",
    "noise_floor",
    "render_drift",
    "run_diff",
]

#: Default relative regression tolerance (fraction of the baseline).
DEFAULT_TOLERANCE = 0.25


def higher_is_better(name: str) -> bool:
    """Regression direction for one headline metric, by naming convention.

    Speedup ratios and throughput regress when they *drop*; latencies
    (``*_ms``) and balance factors regress when they *climb*.
    """
    return "speedup" in name or "per_second" in name


def noise_floor(name: str) -> float:
    """Minimum absolute change for a drift in ``name`` to be meaningful.

    Relative tolerances alone misfire near zero — a 0.2 ms p50 can move
    30% on scheduler jitter.  The floors are deliberately coarse: they
    exist to suppress noise, not to hide real regressions.
    """
    if name.endswith("_ms"):
        return 0.5        # half a millisecond of latency
    if "balance" in name:
        return 0.05       # balance factors live near 1.0
    if "speedup" in name:
        return 0.1        # dimensionless ratios
    if "per_second" in name:
        return 50.0       # ops/s at smoke scale runs in the thousands
    return 0.0


# ---------------------------------------------------------------------------
# Headline extraction
# ---------------------------------------------------------------------------

def extract_headline(doc: dict) -> dict[str, float]:
    """The gate-worthy metrics of one ``repro-bench/1`` document.

    Prefers the explicit ``metrics.headline`` payload (written by the
    soak/query-api/rebalance experiments); falls back to parsing the
    rendered tables so pre-headline baselines remain diffable.  Verbs
    with no recognized headline yield ``{}`` and are skipped by the
    comparison — the gate covers the serving-engine verbs, not every
    figure reproduction.
    """
    headline = doc.get("metrics", {}).get("headline")
    if isinstance(headline, dict):
        return {
            str(k): float(v)
            for k, v in headline.items()
            if isinstance(v, (int, float))
        }
    verb = doc.get("verb")
    if verb == "soak":
        return _soak_headline_from_windows(doc)
    if verb == "query-api":
        return _query_api_headline_from_tables(doc)
    if verb == "rebalance":
        return _rebalance_headline_from_tables(doc)
    return {}


def _soak_headline_from_windows(doc: dict) -> dict[str, float]:
    """Soak fallback: per-window query percentiles from ``metrics.windows``."""
    windows = doc.get("metrics", {}).get("windows", [])
    p50s, p99s = [], []
    for w in windows:
        hist = w.get("histograms", {}).get("query.seconds", {})
        if hist.get("count"):
            p50s.append(float(hist["p50"]))
            p99s.append(float(hist["p99"]))
    if not p50s:
        return {}
    p50s.sort()
    return {
        "query_p50_ms": p50s[len(p50s) // 2] * 1e3,
        "worst_window_p99_ms": max(p99s) * 1e3,
    }


def _ratio(cell: str) -> float | None:
    """Parse a table cell like ``'3.42x'`` into a float."""
    text = str(cell).strip().rstrip("x")
    try:
        return float(text)
    except ValueError:
        return None


def _query_api_headline_from_tables(doc: dict) -> dict[str, float]:
    """Query-API fallback: 'batch speedup' column of the batch table."""
    out: dict[str, float] = {}
    for table in doc.get("tables", []):
        headers = table.get("headers", [])
        if "batch speedup" not in headers:
            continue
        col = headers.index("batch speedup")
        for row in table.get("rows", []):
            value = _ratio(row[col]) if len(row) > col else None
            if value is not None:
                out[f"batch_speedup_{str(row[0]).lower()}"] = value
    return out


def _rebalance_headline_from_tables(doc: dict) -> dict[str, float]:
    """Rebalance fallback: the 'Whole run' table's rebalanced row."""
    for table in doc.get("tables", []):
        if table.get("title") != "Whole run":
            continue
        headers = table.get("headers", [])
        try:
            peak = headers.index("peak balance")
            final = headers.index("final balance")
            p50 = headers.index("p50 (ms)")
            p99 = headers.index("p99 (ms)")
        except ValueError:
            return {}
        for row in table.get("rows", []):
            if row and str(row[0]) == "rebalanced":
                return {
                    "rebalanced_peak_balance": float(row[peak]),
                    "rebalanced_final_balance": float(row[final]),
                    "rebalanced_p50_ms": float(row[p50]),
                    "rebalanced_p99_ms": float(row[p99]),
                }
    return {}


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Drift:
    """One headline metric compared baseline -> candidate."""

    verb: str
    name: str
    baseline: float
    candidate: float
    higher_is_better: bool
    #: Relative regression (positive = got worse), fraction of baseline.
    regression: float
    #: True when the regression exceeds tolerance *and* the noise floor.
    breach: bool

    @property
    def delta(self) -> float:
        return self.candidate - self.baseline


def _regression(baseline: float, candidate: float, higher: bool) -> float:
    """Signed relative regression; positive means the metric got worse."""
    if baseline == 0:
        return 0.0
    rel = (candidate - baseline) / abs(baseline)
    return -rel if higher else rel


def compare_headlines(
    baseline_docs: list[dict],
    candidate_docs: list[dict],
    tolerance: float = DEFAULT_TOLERANCE,
    noise_scale: float = 1.0,
) -> list[Drift]:
    """Diff every headline metric present in both result sets.

    Documents are matched by verb; metrics by name.  Metrics present on
    only one side are skipped (a new metric is not a regression), as
    are verbs without headline extraction.  ``noise_scale`` multiplies
    every per-metric noise floor (0 disables absolute gating).
    """
    base = {d["verb"]: extract_headline(d) for d in baseline_docs}
    cand = {d["verb"]: extract_headline(d) for d in candidate_docs}
    drifts: list[Drift] = []
    for verb in sorted(set(base) & set(cand)):
        names = sorted(set(base[verb]) & set(cand[verb]))
        for name in names:
            b, c = base[verb][name], cand[verb][name]
            higher = higher_is_better(name)
            reg = _regression(b, c, higher)
            breach = (
                reg > tolerance
                and abs(c - b) > noise_floor(name) * noise_scale
            )
            drifts.append(
                Drift(verb, name, b, c, higher, reg, breach)
            )
    return drifts


def render_drift(
    drifts: list[Drift], tolerance: float = DEFAULT_TOLERANCE
) -> str:
    """Human-readable drift table plus a one-line verdict."""
    if not drifts:
        return (
            "no comparable headline metrics between baseline and "
            "candidate (run soak/query-api/rebalance first)"
        )
    rows = []
    for d in drifts:
        rows.append(
            [
                d.verb,
                d.name,
                f"{d.baseline:.4g}",
                f"{d.candidate:.4g}",
                f"{d.delta:+.4g}",
                f"{d.regression:+.1%}",
                "better" if d.higher_is_better else "worse",
                "BREACH" if d.breach else "ok",
            ]
        )
    table = render_table(
        [
            "verb", "metric", "baseline", "candidate", "delta",
            "regression", "higher is", "verdict",
        ],
        rows,
    )
    breaches = sum(d.breach for d in drifts)
    verdict = (
        f"{breaches} of {len(drifts)} headline metric(s) regressed past "
        f"the {tolerance:.0%} tolerance"
        if breaches
        else f"all {len(drifts)} headline metric(s) within the "
        f"{tolerance:.0%} tolerance"
    )
    return f"{table}\n\n{verdict}"


def _load_valid(directory: Path, label: str) -> list[dict]:
    """Schema-valid bench documents from one directory (warn on bad)."""
    docs: list[dict] = []
    for path, doc in load_bench_files(directory):
        problems = (
            [doc] if isinstance(doc, str) else validate_bench_json(doc)
        )
        if problems:
            print(
                f"diff: skipping {label} {path.name}: {problems[0]}",
                file=sys.stderr,
            )
        else:
            docs.append(doc)
    return docs


def run_diff(
    baseline_dir: str | Path,
    candidate_dir: str | Path,
    tolerance: float = DEFAULT_TOLERANCE,
    noise_scale: float = 1.0,
    warn_only: bool = False,
    out_file: str | Path | None = None,
) -> int:
    """Compare two directories of bench results; 1 on breach, 0 otherwise.

    ``warn_only`` downgrades breaches to exit 0 (CI runs this mode on
    shared runners, where a hard gate would flake; the drift table is
    still printed and uploaded as an artifact).  ``out_file`` gets the
    rendered table for artifact upload.
    """
    baseline_dir, candidate_dir = Path(baseline_dir), Path(candidate_dir)
    baseline = _load_valid(baseline_dir, "baseline")
    candidate = _load_valid(candidate_dir, "candidate")
    drifts = compare_headlines(
        baseline, candidate, tolerance=tolerance, noise_scale=noise_scale
    )
    text = render_drift(drifts, tolerance)
    header = (
        f"perf drift: baseline={baseline_dir} ({len(baseline)} result(s)) "
        f"vs candidate={candidate_dir} ({len(candidate)} result(s))"
    )
    output = f"{header}\n\n{text}\n"
    print(output, end="")
    if out_file is not None:
        Path(out_file).write_text(output, encoding="utf-8")
    breaches = [d for d in drifts if d.breach]
    if breaches and not warn_only:
        return 1
    if breaches:
        print(
            f"diff: --warn-only set; {len(breaches)} breach(es) not fatal",
            file=sys.stderr,
        )
    return 0
