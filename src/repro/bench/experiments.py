"""Experiment definitions: one per table/figure of the paper's Section 6.

Every experiment regenerates the corresponding figure's rows/series at a
configurable :class:`Scale` (the paper's 450M-object datasets are scaled
down for pure-Python execution; DESIGN.md §4 explains why the curve
*shapes* survive scaling).  Each report prints the paper's expected shape
next to the measured numbers.

Run via ``python -m repro.bench <experiment> [--scale small]`` or the
``quasii-bench`` console script; programmatic access through
:data:`EXPERIMENTS`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

import numpy as np

from repro.baselines import (
    MosaicIndex,
    RTreeIndex,
    SFCIndex,
    SFCrackerIndex,
    ScanIndex,
    UniformGridIndex,
)
from repro.bench.metrics import (
    break_even_query,
    converged_slowdown,
    cumulative_ratio,
    data_to_insight_factor,
    sample_indices,
    smoothed_series,
    speedup_tail,
    work_break_even_query,
    work_insight_factor,
    work_ratio,
)
from repro.bench.reporting import ExperimentReport
from repro.bench.runner import RunResult, run_workload
from repro.bench.soak import soak_experiment
from repro.core import QuasiiIndex
from repro.datasets import Dataset, make_neuro_like, make_uniform
from repro.errors import ConfigurationError
from repro.queries import (
    Query,
    clustered_workload,
    drifting_hotspot_workload,
    hotspot_workload,
    mixed_workload,
    sequential_workload,
    uniform_workload,
)
from repro.sharding import (
    Fault,
    FaultInjector,
    MaintenancePolicy,
    QueryExecutor,
    ReplicatedShardedIndex,
    ShardedIndex,
)
from repro.telemetry import EventLog
from repro.updates import MixedRunResult, run_mixed_workload


@dataclass(frozen=True)
class Scale:
    """Workload sizing for one experiment run.

    The paper's values appear in parentheses in the field comments; the
    presets scale object counts down ~4 orders of magnitude while keeping
    every workload *shape* parameter (cluster counts, selectivities,
    query-per-cluster ratios) identical.
    """

    name: str
    neuro_n: int           # (450M) skewed dataset size
    uniform_n: int         # (500M) uniform dataset size
    clusters: int = 5      # (5) query clusters
    per_cluster: int = 100  # (100) queries per cluster
    clustered_fraction: float = 1e-4   # (0.01%) clustered query volume
    uniform_queries: int = 2000        # (10000) uniform workload length
    uniform_fraction: float = 1e-3     # (0.1%) uniform query volume
    selectivity_fractions: tuple[float, ...] = (1e-5, 1e-2, 1e-1)  # (0.001/1/10%)
    selectivity_queries: int = 800     # (5000) queries per selectivity
    grid_candidates: tuple[int, ...] = (8, 16, 24, 40)  # sweep candidates
    grid_uniform_parts: int = 16       # (100) tuned grid, uniform data
    grid_neuro_parts: int = 24         # (220) tuned grid, skewed data
    # Mixed read/write workload (update subsystem; beyond the paper):
    mixed_ops: int = 600               # interleaved operations per run
    mixed_write_batch: int = 16        # objects per insert/delete batch
    mixed_ratios: tuple[float, ...] = (0.0, 0.1, 0.3, 0.5)
    # Compaction experiment (delete-heavy maintenance; beyond the paper):
    compaction_queries: int = 400      # batch replayed before/after compact
    compaction_delete_fraction: float = 0.6  # rows tombstoned first
    # Sharded serving engine (sharding subsystem; beyond the paper):
    shard_counts: tuple[int, ...] = (1, 2, 4, 8)   # K sweep
    shard_workers: tuple[int, ...] = (1, 2, 4)     # thread pool widths
    shard_queries: int = 800           # batch size per configuration
    # Serving batches are high-QPS point-ish lookups: small windows keep
    # most queries inside one spatial tile, which is where fan-out
    # pruning and small per-shard crack ranges pay off.
    shard_fraction: float = 1e-4
    # Backend face-off (process-parallel serving; beyond the paper):
    # a stream of *fresh* query batches per dispatch backend at one
    # contended configuration.  A dedicated dataset size (like
    # rebalance_n) keeps per-query crack work substantial even at
    # smoke scale, and enough shards/workers that thread dispatch is
    # genuinely GIL-contended.
    backend_n: int = 60_000            # face-off dataset size
    backend_shards: int = 8            # K (>= 4: the acceptance regime)
    backend_workers: int = 4           # W (enough lanes to contend)
    backend_stream: int = 6            # batches per stream (first = warmup)
    backend_repeats: int = 3           # fresh-engine streams; median reported
    # Fraction of rows tombstoned before the stream: the face-off runs
    # in the delete-heavy window between maintenance compactions, where
    # segment publication's pack-live-rows-only step pays off.
    backend_delete_fraction: float = 0.65
    # Rebalancing experiment (drifting hotspot + skewed ingestion):
    rebalance_n: int = 100_000          # base dataset (capped by uniform_n)
    rebalance_ops: int = 900            # ops across all phases
    rebalance_phases: int = 3           # hot-region random-walk steps
    rebalance_insert_every: int = 2     # every Nth op is an insert batch
    rebalance_insert_batch: int = 256   # boxes per insert batch
    # Soak benchmark (steady-state serving trajectory; beyond the paper).
    # Time-bounded rather than op-bounded: the op stream cycles until
    # soak_seconds elapse, with windowed telemetry every soak_window.
    soak_seconds: float = 40.0          # total serving time
    soak_window: float = 4.0            # telemetry window width
    soak_ops: int = 1200                # generated op-cycle length
    soak_insert_every: int = 3          # every Nth op inserts a batch
    soak_insert_batch: int = 64         # boxes per ingestion burst
    soak_delete_every: int = 25         # ops between delete storms
    soak_delete_batch: int = 2000       # rows tombstoned per storm
    soak_slow_ms: float = 10.0          # slow-query event threshold (ms)
    # Chaos mode (soak --chaos): periodic replica kills with self-healing.
    soak_chaos_every: int = 150         # executed ops between replica kills
    soak_chaos_replication: int = 2     # replicas per shard under chaos
    # Replication experiment (replicated serving + mid-run kill):
    replication_factors: tuple[int, ...] = (1, 2, 3)  # R sweep
    replication_queries: int = 600      # queries per R configuration
    replication_insert_batch: int = 64  # post-kill ingest before recovery
    seed: int = 7


SCALES: dict[str, Scale] = {
    # Harness validation: tiny and fast.  Curve *shapes* are only
    # meaningful at "small" and above — at 20k objects the (vectorized)
    # static build is too cheap relative to per-query overheads.
    "smoke": Scale(
        name="smoke",
        neuro_n=20_000,
        uniform_n=20_000,
        clusters=3,
        per_cluster=20,
        clustered_fraction=2e-3,
        uniform_queries=200,
        uniform_fraction=2e-3,
        selectivity_queries=100,
        grid_candidates=(6, 10, 16),
        grid_uniform_parts=10,
        grid_neuro_parts=16,
        mixed_ops=200,
        mixed_write_batch=8,
        mixed_ratios=(0.0, 0.3),
        compaction_queries=100,
        shard_counts=(1, 2, 4),
        shard_workers=(1, 2),
        shard_queries=200,
        rebalance_n=60_000,
        rebalance_ops=360,
        soak_seconds=4.0,
        soak_window=0.4,
        soak_ops=600,
        soak_delete_batch=400,
        # Low enough that even a smoke soak logs a handful of slow-query
        # events, so the report's slowest-queries table is exercised.
        soak_slow_ms=1.0,
        # Frequent enough that a 4 s chaos smoke sees several kills.
        soak_chaos_every=60,
        replication_queries=200,
        replication_insert_batch=32,
    ),
    # Default: large enough that build-vs-query cost ratios have the
    # paper's sign (see EXPERIMENTS.md for the calibration discussion).
    "small": Scale(
        name="small",
        neuro_n=600_000,
        uniform_n=600_000,
        uniform_queries=2500,
        selectivity_queries=600,
        # The vectorized CSR grid only develops an interior optimum once
        # per-query cell counts reach the tens of thousands; the range
        # must extend that far for the Figure 6b sweep to turn over.
        grid_candidates=(16, 32, 64, 128, 256),
        grid_uniform_parts=64,
        grid_neuro_parts=128,
    ),
    "medium": Scale(
        name="medium",
        neuro_n=2_000_000,
        uniform_n=1_500_000,
        uniform_queries=5000,
        selectivity_queries=1200,
        grid_candidates=(16, 32, 64, 128, 256),
        grid_uniform_parts=64,
        grid_neuro_parts=128,
        soak_seconds=120.0,
        soak_window=10.0,
    ),
}


# ----------------------------------------------------------------------
# Dataset / workload / run caches (shared across experiments in one process)
# ----------------------------------------------------------------------
@lru_cache(maxsize=8)
def _neuro(scale: Scale) -> Dataset:
    # Object extents are scaled to the paper's neuroscience regime:
    # *typical* segments are small (tight R-Tree leaves), but a 1% tail of
    # long axon segments pushes the maximum extent to ~the clustered query
    # window side ((1e-4)^(1/3) * 10000 ≈ 464 units), so query extension
    # multiplies the tested volume severalfold — the Figure 6a operating
    # point (see DESIGN.md §4).
    return make_neuro_like(
        scale.neuro_n,
        seed=scale.seed,
        segment_length=(10.0, 60.0),
        segment_thickness=(2.0, 8.0),
        long_fraction=0.01,
        long_length=(150.0, 400.0),
    )


@lru_cache(maxsize=8)
def _uniform(scale: Scale, n: int | None = None) -> Dataset:
    return make_uniform(n or scale.uniform_n, seed=scale.seed)


@lru_cache(maxsize=8)
def _clustered_queries(scale: Scale):
    return clustered_workload(
        _neuro(scale).universe,
        n_clusters=scale.clusters,
        queries_per_cluster=scale.per_cluster,
        volume_fraction=scale.clustered_fraction,
        seed=scale.seed + 1,
    )


def _fresh_index(kind: str, ds: Dataset, scale: Scale):
    """A new index instance over a private copy of the dataset store."""
    store = ds.store.copy()
    if kind == "Scan":
        return ScanIndex(store)
    if kind == "QUASII":
        return QuasiiIndex(store)
    if kind == "R-Tree":
        return RTreeIndex(store)
    if kind == "SFC":
        return SFCIndex(store, ds.universe)
    if kind == "SFCracker":
        return SFCrackerIndex(store, ds.universe)
    if kind == "Mosaic":
        return MosaicIndex(store, ds.universe)
    if kind == "Grid":
        parts = (
            scale.grid_neuro_parts
            if ds.name.startswith("neuro")
            else scale.grid_uniform_parts
        )
        return UniformGridIndex(store, ds.universe, parts, "query_extension")
    if kind == "GridReplication":
        parts = (
            scale.grid_neuro_parts
            if ds.name.startswith("neuro")
            else scale.grid_uniform_parts
        )
        return UniformGridIndex(store, ds.universe, parts, "replication")
    if kind == "Sharded":
        return ShardedIndex(store, n_shards=max(scale.shard_counts), partitioner="str")
    raise ConfigurationError(f"unknown index kind {kind!r}")


_CLUSTERED_KINDS = ("Scan", "SFC", "SFCracker", "Grid", "Mosaic", "R-Tree", "QUASII")


@lru_cache(maxsize=4)
def _clustered_runs(scale: Scale) -> dict[str, RunResult]:
    """All seven systems over the clustered neuro workload (Figures 7–9)."""
    ds = _neuro(scale)
    queries = _clustered_queries(scale)
    return {
        kind: run_workload(_fresh_index(kind, ds, scale), queries)
        for kind in _CLUSTERED_KINDS
    }


@lru_cache(maxsize=4)
def _uniform_runs(scale: Scale) -> dict[str, RunResult]:
    """QUASII/R-Tree/Grid/Scan over the uniform workload (Figure 10)."""
    ds = _uniform(scale)
    queries = uniform_workload(
        ds.universe, scale.uniform_queries, scale.uniform_fraction,
        seed=scale.seed + 2,
    )
    return {
        kind: run_workload(_fresh_index(kind, ds, scale), queries)
        for kind in ("Scan", "Grid", "R-Tree", "QUASII")
    }


def _series_table(
    report: ExperimentReport,
    title: str,
    runs: dict[str, RunResult],
    cumulative: bool,
    points: int = 14,
) -> None:
    """Emit a sampled time-series table (one row per sampled query seq)."""
    n = min(r.n_queries for r in runs.values())
    picks = sample_indices(n, points)
    headers = ["query#"] + [f"{name} (ms)" for name in runs]
    rows = []
    series = {
        name: (
            r.cumulative_seconds() if cumulative else r.query_seconds()
        )
        for name, r in runs.items()
    }
    for i in picks:
        row: list[object] = [i + 1]
        for name in runs:
            if cumulative:
                value = series[name][i]
            else:
                value = smoothed_series(series[name], i)
            row.append(round(value * 1000, 3))
        rows.append(row)
    report.add_table(title, headers, rows)


# ----------------------------------------------------------------------
# Figure 6a — data-assignment penalty of space-oriented partitioning
# ----------------------------------------------------------------------
def fig6a(scale: Scale) -> ExperimentReport:
    report = ExperimentReport(
        "fig6a",
        "Space-oriented partitioning: R-Tree vs GridQueryExt vs "
        "GridReplication, clustered queries on the skewed dataset",
    )
    ds = _neuro(scale)
    # The paper's 0.01% queries return ~45k objects on 450M (hundreds of
    # R-Tree leaves); at reproduction scale the same fraction returns one
    # leaf's worth, burying the assignment effects under leaf fringe.
    # Keep the paper's *results-per-leaf* regime instead: ~20 leaves of
    # results per query.
    fraction = min(1e-2, 20.0 * 60.0 / ds.n)
    queries = clustered_workload(
        ds.universe,
        n_clusters=scale.clusters,
        queries_per_cluster=scale.per_cluster,
        volume_fraction=fraction,
        seed=scale.seed + 1,
    )
    runs = {}
    for kind in ("R-Tree", "Grid", "GridReplication"):
        runs[kind] = run_workload(_fresh_index(kind, ds, scale), queries)
    rows = []
    for kind, run in runs.items():
        rows.append(
            [
                kind,
                round(run.total_seconds(include_build=False), 4),
                run.total_objects_tested(),
                round(
                    run.total_objects_tested()
                    / max(runs["R-Tree"].total_objects_tested(), 1),
                    2,
                ),
            ]
        )
    report.add_table(
        "Query execution time (build excluded), as in Figure 6a",
        ["index", "total query time (s)", "objects tested", "x R-Tree objects"],
        rows,
    )
    qe = runs["Grid"].total_seconds(include_build=False)
    rep = runs["GridReplication"].total_seconds(include_build=False)
    rt = runs["R-Tree"].total_seconds(include_build=False)
    report.add_note(
        "paper: GridQueryExt tests ~3.1x more objects than the R-Tree "
        "(the machine-independent signal); measured: "
        f"{runs['Grid'].total_objects_tested() / max(runs['R-Tree'].total_objects_tested(), 1):.1f}x"
    )
    report.add_note(
        f"paper shape (wall-clock): R-Tree beats GridQueryExt beats "
        f"GridReplication (19.4x / 3.7x); measured: {rep / rt:.2f}x over "
        f"replication, {qe / rt:.2f}x over query extension.  Note the "
        f"substrate skew: the grid's gather is one vectorized kernel while "
        f"the R-Tree walk is Python-level, and at reproduction scale the "
        f"replication factor is mild (objects are small relative to the "
        f"tuned cells), so wall-clock ordering may invert — see "
        f"EXPERIMENTS.md"
    )
    return report


# ----------------------------------------------------------------------
# Figure 6b — grid configuration sensitivity
# ----------------------------------------------------------------------
def fig6b(scale: Scale) -> ExperimentReport:
    report = ExperimentReport(
        "fig6b",
        "Grid configuration: best partitions-per-dimension depends on the "
        "data distribution; off-configurations hurt",
    )
    datasets = {
        "Uniform": _uniform(scale),
        "Neuro": _neuro(scale),
    }
    sweep: dict[str, dict[int, float]] = {}
    for ds_name, ds in datasets.items():
        queries = clustered_workload(
            ds.universe,
            n_clusters=scale.clusters,
            queries_per_cluster=scale.per_cluster,
            volume_fraction=scale.clustered_fraction,
            seed=scale.seed + 1,
        )
        sweep[ds_name] = {}
        for parts in scale.grid_candidates:
            idx = UniformGridIndex(ds.store.copy(), ds.universe, parts)
            run = run_workload(idx, queries)
            sweep[ds_name][parts] = run.total_seconds(include_build=False)
    report.add_table(
        "Parameter sweep: total query time (s) per configuration",
        ["dataset"] + [f"{p} parts/dim" for p in scale.grid_candidates],
        [
            [ds_name] + [round(sweep[ds_name][p], 4) for p in scale.grid_candidates]
            for ds_name in datasets
        ],
    )
    best = {ds_name: min(times, key=times.get) for ds_name, times in sweep.items()}
    rows = []
    for ds_name in datasets:
        own = sweep[ds_name][best[ds_name]]
        other_cfg = best["Neuro" if ds_name == "Uniform" else "Uniform"]
        cross = sweep[ds_name][other_cfg]
        rows.append(
            [
                ds_name,
                best[ds_name],
                round(own, 4),
                other_cfg,
                round(cross, 4),
                round(cross / own, 2),
            ]
        )
    report.add_table(
        "Figure 6b: each dataset under its own vs the other dataset's best config",
        [
            "dataset",
            "best parts",
            "time @ best (s)",
            "other's parts",
            "time @ other (s)",
            "penalty x",
        ],
        rows,
    )
    report.add_note(
        "paper shape: the skewed (Neuro) dataset needs more partitions than "
        "the Uniform one, and each dataset slows down under the other's "
        f"configuration; measured best: Uniform={best['Uniform']}, "
        f"Neuro={best['Neuro']}"
    )
    return report


# ----------------------------------------------------------------------
# Figures 7 & 8 — incremental vs static, per category
# ----------------------------------------------------------------------
_PANELS = {
    "one-dimensional": ("SFC", "SFCracker", "Scan"),
    "space-oriented": ("Grid", "Mosaic", "Scan"),
    "data-oriented": ("R-Tree", "QUASII", "Scan"),
}


def fig7(scale: Scale) -> ExperimentReport:
    report = ExperimentReport(
        "fig7",
        "Convergence: per-query execution time of each incremental index "
        "vs its static counterpart and Scan (clustered workload)",
    )
    runs = _clustered_runs(scale)
    for panel, kinds in _PANELS.items():
        _series_table(
            report,
            f"Figure 7 ({panel}): per-query time",
            {k: runs[k] for k in kinds},
            cumulative=False,
        )
    for panel, (static, incremental, _) in _PANELS.items():
        slowdown = converged_slowdown(runs[incremental], runs[static], tail=50)
        report.add_note(
            f"{panel}: converged {incremental} per-query time is "
            f"{slowdown:.2f}x its static counterpart ({static}) — paper "
            f"shape: ratio approaches 1 after the clusters are refined"
        )
    report.add_note(
        "paper shape: per-cluster peaks — the first query of each cluster "
        "is slow, later queries in the cluster drop toward the static line"
    )
    return report


def fig8(scale: Scale) -> ExperimentReport:
    report = ExperimentReport(
        "fig8",
        "Cumulative execution time (including the static build step) per "
        "category (clustered workload)",
    )
    runs = _clustered_runs(scale)
    for panel, kinds in _PANELS.items():
        _series_table(
            report,
            f"Figure 8 ({panel}): cumulative time",
            {k: runs[k] for k in kinds},
            cumulative=True,
        )
    report.add_table(
        "Machine-independent work (whole run)",
        [
            "index",
            "objects tested",
            "rows reorganized",
            "queries that moved data",
        ],
        [
            [
                k,
                runs[k].total_objects_tested(),
                sum(t.rows_reorganized for t in runs[k].timings),
                runs[k].queries_with_reorganization(),
            ]
            for k in _CLUSTERED_KINDS
        ],
    )
    be_sfc = break_even_query(runs["SFCracker"], runs["SFC"])
    be_mosaic = break_even_query(runs["Mosaic"], runs["Grid"])
    be_quasii = break_even_query(runs["QUASII"], runs["R-Tree"])
    report.add_note(
        f"wall-clock break-even vs static counterpart — SFCracker: "
        f"{be_sfc or 'never'} (paper: 23), Mosaic: {be_mosaic or 'never'} "
        f"(paper: 100), QUASII: {be_quasii or 'never'} (paper: never)"
    )
    wbe_sfc = work_break_even_query(runs["SFCracker"], runs["SFC"])
    wbe_mosaic = work_break_even_query(runs["Mosaic"], runs["Grid"])
    wbe_quasii = work_break_even_query(runs["QUASII"], runs["R-Tree"])
    report.add_note(
        f"work-model break-even (rows touched, substrate-independent) — "
        f"SFCracker: {wbe_sfc or 'never'}, Mosaic: {wbe_mosaic or 'never'}, "
        f"QUASII: {wbe_quasii or 'never'}"
    )
    report.add_note(
        "paper shape: QUASII's cumulative curve stays below the R-Tree's "
        f"for the whole run; measured QUASII/R-Tree — wall-clock "
        f"{cumulative_ratio(runs['QUASII'], runs['R-Tree']):.2f}, work "
        f"{work_ratio(runs['QUASII'], runs['R-Tree']):.2f} "
        "(paper: 0.394 after 500 queries)"
    )
    return report


# ----------------------------------------------------------------------
# Figure 9 — comparative analysis of the incremental approaches
# ----------------------------------------------------------------------
def fig9a(scale: Scale) -> ExperimentReport:
    report = ExperimentReport(
        "fig9a",
        "Comparative convergence of the incremental approaches vs R-Tree "
        "and Scan (clustered workload)",
    )
    runs = _clustered_runs(scale)
    kinds = ("Scan", "R-Tree", "QUASII", "Mosaic", "SFCracker")
    _series_table(
        report,
        "Figure 9a: per-query time",
        {k: runs[k] for k in kinds},
        cumulative=False,
    )
    first = {k: runs[k].timings[0].seconds for k in kinds}
    rows = [
        [k, round(first[k] * 1000, 3), round(first[k] / first["Scan"], 2)]
        for k in ("Scan", "SFCracker", "Mosaic", "QUASII")
    ]
    report.add_table(
        "First-query (data-to-insight) cost",
        ["index", "first query (ms)", "x Scan"],
        rows,
    )
    report.add_note(
        "paper shape: first-query cost Scan < QUASII < Mosaic < SFCracker "
        "(Scan is 4.6x / 9.2x / 13.7x faster respectively); measured: "
        f"QUASII {first['QUASII'] / first['Scan']:.1f}x, "
        f"Mosaic {first['Mosaic'] / first['Scan']:.1f}x, "
        f"SFCracker {first['SFCracker'] / first['Scan']:.1f}x Scan"
    )
    report.add_note(
        "paper: converged QUASII outperforms Mosaic 3.68x and SFCracker "
        f"4.9x; measured: {speedup_tail(runs['Mosaic'], runs['QUASII'], 50):.2f}x "
        f"and {speedup_tail(runs['SFCracker'], runs['QUASII'], 50):.2f}x"
    )
    return report


def fig9b(scale: Scale) -> ExperimentReport:
    report = ExperimentReport(
        "fig9b",
        "Comparative cumulative time of the incremental approaches vs the "
        "cheapest static index (Grid)",
    )
    runs = _clustered_runs(scale)
    kinds = ("Grid", "QUASII", "Mosaic", "SFCracker")
    _series_table(
        report,
        "Figure 9b: cumulative time (build included)",
        {k: runs[k] for k in kinds},
        cumulative=True,
    )
    rows = []
    for k in ("SFCracker", "Mosaic", "QUASII"):
        rows.append(
            [
                k,
                break_even_query(runs[k], runs["Grid"]) or "never",
                work_break_even_query(runs[k], runs["Grid"]) or "never",
                round(cumulative_ratio(runs[k], runs["Grid"]), 2),
                round(work_ratio(runs[k], runs["Grid"]), 2),
                round(data_to_insight_factor(runs[k], runs["Grid"]), 1),
                round(work_insight_factor(runs[k], runs["Grid"]), 1),
            ]
        )
    report.add_table(
        "Break-even vs Grid and end-of-run ratios (time and work models)",
        [
            "index",
            "break-even (time)",
            "break-even (work)",
            "cumulative/Grid (time)",
            "cumulative/Grid (work)",
            "insight speedup (time)",
            "insight speedup (work)",
        ],
        rows,
    )
    report.add_note(
        "paper shape: SFCracker crosses Grid after ~13 queries, Mosaic "
        "after ~100; QUASII ends at 84% of Grid's cumulative time and "
        "answers its first query 5.1x sooner than Grid"
    )
    return report


# ----------------------------------------------------------------------
# Figure 10 — uniform workload
# ----------------------------------------------------------------------
def fig10(scale: Scale) -> ExperimentReport:
    report = ExperimentReport(
        "fig10",
        "Uniform workload: convergence and cumulative time, first and "
        "last stretches (QUASII vs R-Tree vs Scan, + Grid cumulative)",
    )
    runs = _uniform_runs(scale)
    n = runs["QUASII"].n_queries
    head = max(10, n // 4)
    tail = max(10, n // 20)
    per_query = {k: runs[k] for k in ("R-Tree", "QUASII", "Scan")}
    _series_table(
        report,
        f"Figure 10a: per-query time, first {head} queries",
        {
            k: RunResult(r.name, r.build_seconds, r.timings[:head])
            for k, r in per_query.items()
        },
        cumulative=False,
    )
    _series_table(
        report,
        f"Figure 10b: per-query time, last {tail} queries",
        {
            k: RunResult(r.name, r.build_seconds, r.timings[-tail:])
            for k, r in per_query.items()
        },
        cumulative=False,
    )
    cum = {k: runs[k] for k in ("R-Tree", "QUASII", "Grid", "Scan")}
    _series_table(
        report, "Figure 10c/d: cumulative time", cum, cumulative=True
    )
    quasii = runs["QUASII"]
    refined_tail = sum(
        1 for t in quasii.timings[-tail:] if t.rows_reorganized == 0
    )
    report.add_table(
        "Summary",
        ["metric", "value", "paper"],
        [
            [
                "QUASII cumulative / R-Tree",
                round(cumulative_ratio(quasii, runs["R-Tree"]), 3),
                "0.75 after 10000 queries",
            ],
            [
                "QUASII cumulative / Grid",
                round(cumulative_ratio(quasii, runs["Grid"]), 3),
                "0.638 after 10000 queries",
            ],
            [
                "data-to-insight speedup vs R-Tree",
                round(data_to_insight_factor(quasii, runs["R-Tree"]), 1),
                "10.3x",
            ],
            [
                "data-to-insight speedup vs Grid",
                round(data_to_insight_factor(quasii, runs["Grid"]), 1),
                "5.6x",
            ],
            [
                f"last-{tail} queries with zero reorganization",
                f"{refined_tail}/{tail}",
                "64/100 fully refined",
            ],
            [
                "converged QUASII / R-Tree per-query",
                round(converged_slowdown(quasii, runs["R-Tree"], tail), 3),
                "1.075 (7.5% slower)",
            ],
            [
                "QUASII work / R-Tree work (substrate-independent)",
                round(work_ratio(quasii, runs["R-Tree"]), 3),
                "0.75 (in time)",
            ],
            [
                "work-model insight factor vs R-Tree",
                round(work_insight_factor(quasii, runs["R-Tree"]), 1),
                "10.3x (in time)",
            ],
            [
                "work-model insight factor vs Grid",
                round(work_insight_factor(quasii, runs["Grid"]), 1),
                "5.6x (in time)",
            ],
        ],
    )
    return report


# ----------------------------------------------------------------------
# Figure 11 — scalability
# ----------------------------------------------------------------------
def fig11(scale: Scale) -> ExperimentReport:
    report = ExperimentReport(
        "fig11",
        "Scalability: QUASII vs R-Tree cumulative time at two dataset "
        "sizes (R-Tree split into Building and Querying)",
    )
    rows = []
    notes = []
    for mult, label in ((1, "1x"), (2, "2x")):
        n = scale.uniform_n * mult
        ds = _uniform(scale, n)
        queries = uniform_workload(
            ds.universe, scale.uniform_queries, scale.uniform_fraction,
            seed=scale.seed + 3,
        )
        rtree = run_workload(_fresh_index("R-Tree", ds, scale), queries)
        quasii = run_workload(_fresh_index("QUASII", ds, scale), queries)
        executed_during_build = int(
            np.searchsorted(quasii.cumulative_seconds(), rtree.build_seconds)
        )
        rows.append(
            [
                f"{label} ({n:,} objects)",
                round(rtree.build_seconds, 3),
                round(rtree.total_seconds() - rtree.build_seconds, 3),
                round(rtree.total_seconds(), 3),
                round(quasii.total_seconds(), 3),
                round(cumulative_ratio(quasii, rtree), 3),
                round(work_ratio(quasii, rtree), 3),
                round(data_to_insight_factor(quasii, rtree), 1),
            ]
        )
        notes.append(
            f"{label}: QUASII had executed {executed_during_build} queries "
            f"by the time the R-Tree finished building (paper: ~8000 of "
            f"10000 at both sizes)"
        )
    report.add_table(
        "Figure 11: cumulative time split",
        [
            "dataset",
            "R-Tree build (s)",
            "R-Tree query (s)",
            "R-Tree total (s)",
            "QUASII total (s)",
            "QUASII/R-Tree (time)",
            "QUASII/R-Tree (work)",
            "insight speedup",
        ],
        rows,
    )
    for note in notes:
        report.add_note(note)
    report.add_note(
        "paper shape: the QUASII/R-Tree ratio is stable as n doubles "
        "(0.75 at 500M vs 0.737 at 1B) — trends maintained with size"
    )
    return report


# ----------------------------------------------------------------------
# Figure 12 — impact of selectivity
# ----------------------------------------------------------------------
def fig12(scale: Scale) -> ExperimentReport:
    report = ExperimentReport(
        "fig12",
        "Impact of query selectivity on QUASII vs R-Tree cumulative time",
    )
    ds = _uniform(scale)
    rows = []
    for fraction in scale.selectivity_fractions:
        queries = uniform_workload(
            ds.universe, scale.selectivity_queries, fraction,
            seed=scale.seed + 4,
        )
        rtree = run_workload(_fresh_index("R-Tree", ds, scale), queries)
        quasii = run_workload(_fresh_index("QUASII", ds, scale), queries)
        rows.append(
            [
                f"{fraction * 100:g}%",
                round(rtree.build_seconds, 3),
                round(rtree.total_seconds() - rtree.build_seconds, 3),
                round(quasii.total_seconds(), 3),
                round(cumulative_ratio(quasii, rtree), 3),
                round(work_ratio(quasii, rtree), 3),
                break_even_query(quasii, rtree) or "never",
            ]
        )
    report.add_table(
        "Figure 12: cumulative time per query selectivity",
        [
            "selectivity",
            "R-Tree build (s)",
            "R-Tree query (s)",
            "QUASII total (s)",
            "QUASII/R-Tree (time)",
            "QUASII/R-Tree (work)",
            "break-even query",
        ],
        rows,
    )
    report.add_note(
        "paper shape: the QUASII/R-Tree ratio rises with selectivity "
        "(68.8% at 0.001%, 79.8% at 1%, 85.6% at 10%) — large queries "
        "reorganize lots of data, so QUASII's edge narrows"
    )
    return report


# ----------------------------------------------------------------------
# Ablations (design choices DESIGN.md calls out)
# ----------------------------------------------------------------------
def ablation_representative(scale: Scale) -> ExperimentReport:
    """Footnote 1 of Section 5.1: lower vs center vs upper representative."""
    report = ExperimentReport(
        "ablation-rep",
        "Slice-assignment representative: lower (paper) vs center vs upper "
        "coordinate — results identical, cost profile compared",
    )
    ds = _neuro(scale)
    queries = _clustered_queries(scale)
    rows = []
    for rep in ("lower", "center", "upper"):
        run = run_workload(
            QuasiiIndex(ds.store.copy(), representative=rep), queries
        )
        rows.append(
            [
                rep,
                round(run.timings[0].seconds * 1000, 2),
                round(run.total_seconds(), 3),
                round(run.tail_mean_seconds(50) * 1000, 3),
                run.total_objects_tested(),
                sum(t.rows_reorganized for t in run.timings),
            ]
        )
    report.add_table(
        "QUASII under each representative (clustered workload)",
        [
            "representative",
            "first query (ms)",
            "total (s)",
            "tail per-query (ms)",
            "objects tested",
            "rows moved",
        ],
        rows,
    )
    report.add_note(
        "paper: the alternatives 'can equally be used'; expected shape is "
        "near-identical cost for all three (the center representative "
        "halves the one-sided extension but extends on both sides)"
    )
    return report


def ablation_tau(scale: Scale) -> ExperimentReport:
    """Sensitivity of QUASII's single parameter (leaf threshold tau)."""
    report = ExperimentReport(
        "ablation-tau",
        "QUASII's only knob: leaf threshold tau (paper fixes tau = 60, the "
        "R-Tree node capacity)",
    )
    ds = _neuro(scale)
    queries = _clustered_queries(scale)
    rows = []
    for tau in (15, 60, 240):
        run = run_workload(QuasiiIndex(ds.store.copy(), tau=tau), queries)
        index = QuasiiIndex(ds.store.copy(), tau=tau)
        for q in queries:
            index.query(q)
        rows.append(
            [
                tau,
                round(run.timings[0].seconds * 1000, 2),
                round(run.total_seconds(), 3),
                round(run.tail_mean_seconds(50) * 1000, 3),
                sum(index.slice_counts()),
                round(index.memory_bytes() / 1024, 1),
            ]
        )
    report.add_table(
        "tau sweep (clustered workload)",
        [
            "tau",
            "first query (ms)",
            "total (s)",
            "tail per-query (ms)",
            "slices",
            "structure KiB",
        ],
        rows,
    )
    report.add_note(
        "expected shape: small tau → more slices, more refinement work, "
        "finer leaves (cheaper scans); large tau → fewer slices, coarser "
        "leaves (more objects tested per query); tau = 60 balances both"
    )
    return report


def ablation_split(scale: Scale) -> ExperimentReport:
    """Artificial refinement cut: midpoint (paper) vs median."""
    report = ExperimentReport(
        "ablation-split",
        "Artificial refinement cut strategy: space-balanced midpoint "
        "(paper's c = (xl+xu)/2) vs data-balanced median",
    )
    ds = _neuro(scale)
    queries = _clustered_queries(scale)
    rows = []
    for split in ("midpoint", "median"):
        index = QuasiiIndex(ds.store.copy(), artificial_split=split)
        run = run_workload(index, queries)
        counts = index.slice_counts()
        rows.append(
            [
                split,
                round(run.total_seconds(), 3),
                round(run.tail_mean_seconds(50) * 1000, 3),
                sum(t.rows_reorganized for t in run.timings),
                sum(counts),
                run.total_objects_tested(),
            ]
        )
    report.add_table(
        "Artificial-split strategies (clustered workload)",
        [
            "strategy",
            "total (s)",
            "tail per-query (ms)",
            "rows moved",
            "slices",
            "objects tested",
        ],
        rows,
    )
    report.add_note(
        "the paper chose the midpoint for its lower cost ('uniform and "
        "low-cost artificial slicing'); median splitting yields more "
        "balanced slices on skewed data at the price of a selection pass "
        "per split — on skewed clusters expect fewer slices but more "
        "reorganization work for median"
    )
    return report


def ablation_sequential(scale: Scale) -> ExperimentReport:
    """Robustness probe: sweep order vs shuffled order of the same windows.

    In relational cracking, a sequential sweep is the classic adversary:
    every query cracks the still-uncracked remainder of the array, paying
    O(remaining) again and again, where a random arrival order of the very
    same queries halves the untouched region geometrically.  The
    stochastic-cracking work the paper cites as [16] exists to fix exactly
    this.  QUASII inherits the sensitivity on its top-level dimension;
    this experiment quantifies it by replaying one set of sweep windows in
    both orders.
    """
    report = ExperimentReport(
        "ablation-sequential",
        "Workload-order robustness: the same sweep windows executed in "
        "sequential vs shuffled order (stochastic-cracking motivation, "
        "paper's reference [16])",
    )
    ds = _uniform(scale)
    # Half-overlapping windows marching once across the x axis.
    sweep = sequential_workload(
        ds.universe, 40, 1e-4, overlap=0.5, seed=scale.seed + 6
    )
    rng = np.random.default_rng(scale.seed + 7)
    shuffled = [sweep[i] for i in rng.permutation(len(sweep))]
    rows = []
    for name, queries in (("sequential sweep", sweep), ("shuffled", shuffled)):
        run = run_workload(QuasiiIndex(ds.store.copy()), queries)
        moved = sum(t.rows_reorganized for t in run.timings)
        reorganizing = run.queries_with_reorganization()
        rows.append(
            [
                name,
                round(run.total_seconds(), 3),
                moved,
                round(moved / ds.n, 2),
                reorganizing,
                round(moved / max(reorganizing, 1) / 1000, 1),
            ]
        )
    report.add_table(
        f"The same {len(sweep)} windows, two arrival orders",
        [
            "order",
            "total (s)",
            "rows moved",
            "passes over data",
            "queries that moved data",
            "krows moved / such query",
        ],
        rows,
    )
    moved_seq = rows[0][2]
    moved_shuf = rows[1][2]
    report.add_note(
        "expected shape (from cracking theory): the sweep order repeatedly "
        "cracks the large remaining slab, so it moves more rows in total "
        "than the shuffled order of the identical windows; measured: "
        f"{moved_seq:,} vs {moved_shuf:,} "
        f"({moved_seq / max(moved_shuf, 1):.2f}x).  The stochastic-cracking "
        "remedy (random auxiliary cuts) would apply to QUASII directly"
    )
    return report


def ablation_rtree_build(scale: Scale) -> ExperimentReport:
    """Section 6.1's stated reason for STR: bulk loading beats insertion."""
    report = ExperimentReport(
        "ablation-rtree",
        "R-Tree construction: STR bulk load (paper's choice) vs one-at-a-"
        "time Guttman insertion",
    )
    # Guttman insertion is O(n) Python-level inserts; cap the dataset so
    # the ablation stays tractable.
    n = min(scale.uniform_n, 60_000)
    ds = _uniform(scale, n)
    queries = uniform_workload(
        ds.universe, min(scale.uniform_queries, 300), scale.uniform_fraction,
        seed=scale.seed + 5,
    )
    rows = []
    for method in ("str", "guttman"):
        idx = RTreeIndex(ds.store.copy(), method=method)
        run = run_workload(idx, queries)
        rows.append(
            [
                method,
                round(run.build_seconds, 3),
                round(run.tail_mean_seconds(100) * 1000, 3),
                run.total_objects_tested(),
                idx.height(),
            ]
        )
    report.add_table(
        f"STR vs Guttman at {n:,} objects",
        [
            "method",
            "build (s)",
            "tail per-query (ms)",
            "objects tested",
            "height",
        ],
        rows,
    )
    report.add_note(
        "paper: bulk loading 'reduces overlap and decreases pre-processing "
        "time compared to the R-Tree built by inserting one object at a "
        "time' — both effects should be visible (build time gap is orders "
        "of magnitude; objects tested favors STR)"
    )
    return report


# ----------------------------------------------------------------------
# Mixed read/write workloads (update subsystem; beyond the paper)
# ----------------------------------------------------------------------
def mixed_workload_experiment(scale: Scale) -> ExperimentReport:
    """Throughput and update counters as the write ratio varies.

    The paper's evaluation is read-only (updates are Section 7 future
    work); this experiment drives every update-capable index through the
    same interleaved query/insert/delete stream at several write ratios,
    with Scan as the correctness oracle.  Deletes and inserts are
    balanced, so the live object count stays roughly stationary and the
    ratios isolate *update handling* cost rather than dataset growth.
    """
    report = ExperimentReport(
        "mixed-workload",
        "Mixed read/write workloads: throughput, per-op latency, and the "
        "update counters (inserts/deletes/merges) as the write ratio "
        "varies — updates are future work in the paper",
    )
    ds = _uniform(scale)
    kinds = ("Scan", "Grid", "R-Tree", "QUASII", "Sharded")
    for ratio in scale.mixed_ratios:
        ops = mixed_workload(
            ds.universe,
            n_ops=scale.mixed_ops,
            write_ratio=ratio,
            delete_fraction=0.5,
            batch_size=scale.mixed_write_batch,
            volume_fraction=scale.uniform_fraction,
            seed=scale.seed + 8,
        )
        runs: dict[str, MixedRunResult] = {}
        for kind in kinds:
            index = _fresh_index(kind, ds, scale)
            runs[kind] = run_mixed_workload(
                index, ops, victim_seed=scale.seed + 9
            )
        oracle = runs["Scan"].query_results
        rows = []
        for kind in kinds:
            run = runs[kind]
            mismatches = sum(
                0 if np.array_equal(a, b) else 1
                for a, b in zip(oracle, run.query_results)
            )
            rows.append(
                [
                    kind,
                    round(run.throughput(), 1),
                    round(run.mean_query_ms(), 3),
                    round(run.kind_seconds("insert") * 1000, 2),
                    round(run.kind_seconds("delete") * 1000, 2),
                    run.inserts,
                    run.deletes,
                    run.merges,
                    run.shards_pruned,
                    "yes" if mismatches == 0 else f"NO ({mismatches})",
                ]
            )
        report.add_table(
            f"write ratio {ratio:.0%}: {len(ops)} ops "
            f"({runs['Scan'].kind_count('query')} queries, "
            f"{runs['Scan'].kind_count('insert')} insert batches, "
            f"{runs['Scan'].kind_count('delete')} delete batches), "
            f"{runs['Scan'].final_live:,} objects live at end",
            [
                "index",
                "ops/s",
                "mean query (ms)",
                "insert time (ms)",
                "delete time (ms)",
                "inserts",
                "deletes",
                "merges",
                "shards pruned",
                "matches Scan",
            ],
            rows,
        )
    report.add_note(
        "expected shape: every index stays correct at every ratio (the "
        "'matches Scan' column); QUASII absorbs inserts via lazy merges "
        "(its merges counter tracks buffer flushes) while the grid "
        "compacts overflow rarely and the R-Tree inserts directly "
        "(merges stays 0)"
    )
    report.add_note(
        "the Sharded row routes every op through the serving engine "
        "(repro.sharding): inserts go to the least-enlargement shard, "
        "deletes to the owning shard, and queries skip shards whose MBB "
        "misses the window ('shards pruned')"
    )
    report.add_note(
        "deletes are tombstones for every index, so delete cost is flat; "
        "insert cost differs: Scan/QUASII defer placement (cheap appends) "
        "where Grid assigns cells and the R-Tree walks ChooseLeaf per "
        "object"
    )
    return report


# ----------------------------------------------------------------------
# Compaction (delete-heavy maintenance; beyond the paper)
# ----------------------------------------------------------------------
def compaction_experiment(scale: Scale) -> ExperimentReport:
    """Query cost before vs after physically reclaiming tombstoned rows.

    The delete-heavy maintenance scenario: each update-capable index
    first converges on a query batch, then a majority of the live rows
    are deleted (tombstoned) through the index, the same batch replays
    over the tombstoned store, the index compacts, and the batch replays
    once more.  The before/after delta is the price of dead rows: leaf
    and cell scans that still touch tombstones, slice/shard MBBs
    inflated by deleted objects, and CSR entries pointing at corpses.
    Compaction is charged separately (one column) — like cracking, it is
    maintenance work paid off the query path.
    """
    report = ExperimentReport(
        "compaction",
        "Physical compaction of tombstoned rows: per-query latency and "
        "scanned rows before/after reclaiming dead space under a "
        "delete-heavy workload",
    )
    ds = _uniform(scale, min(scale.uniform_n, 150_000))
    queries = uniform_workload(
        ds.universe, scale.compaction_queries, scale.uniform_fraction,
        seed=scale.seed + 12,
    )

    def replay(index) -> tuple[float, int]:
        """Median per-query ms and scanned-row total over the batch."""
        times = []
        before = index.stats.snapshot()
        for q in queries:
            t0 = time.perf_counter()
            index.query(q)
            times.append(time.perf_counter() - t0)
        scanned = index.stats.objects_tested - before.objects_tested
        return float(np.median(times)) * 1000.0, int(scanned)

    rows = []
    quasii_scan_reduction = quasii_speedup = 0.0
    for kind in ("Scan", "Grid", "R-Tree", "QUASII", "Sharded"):
        index = _fresh_index(kind, ds, scale)
        index.build()
        for q in queries:  # converge/refine before anything is measured
            index.query(q)
        store = index.store
        live = np.sort(store.ids[store.live_rows()])
        victims = np.random.default_rng(scale.seed + 13).choice(
            live,
            size=int(live.size * scale.compaction_delete_fraction),
            replace=False,
        )
        index.delete(victims)
        ms_before, scanned_before = replay(index)
        t0 = time.perf_counter()
        reclaimed = index.compact()
        compact_ms = (time.perf_counter() - t0) * 1000.0
        ms_after, scanned_after = replay(index)
        if isinstance(index, QuasiiIndex):
            index.validate_structure()
            quasii_scan_reduction = scanned_before / max(scanned_after, 1)
            quasii_speedup = ms_before / max(ms_after, 1e-9)
        rows.append(
            [
                index.name,
                len(victims),
                reclaimed,
                round(compact_ms, 2),
                scanned_before,
                scanned_after,
                round(scanned_before / max(scanned_after, 1), 2),
                round(ms_before, 3),
                round(ms_after, 3),
                round(ms_before / max(ms_after, 1e-9), 2),
                "yes" if store.n == store.live_count else "NO",
            ]
        )
    report.add_table(
        f"{len(queries)} uniform queries on {ds.n:,} objects; "
        f"{scale.compaction_delete_fraction:.0%} of rows deleted before "
        f"the tombstoned replay",
        [
            "index",
            "deleted",
            "rows reclaimed",
            "compact (ms)",
            "scanned (tombstoned)",
            "scanned (compacted)",
            "scan reduction x",
            "median q (ms, tombstoned)",
            "median q (ms, compacted)",
            "speedup x",
            "n == live",
        ],
        rows,
    )
    report.add_note(
        "expected shape: every index answers identically before and after "
        "(the live multiset is invariant) but cheaper after — Scan's and "
        "QUASII's scanned rows drop by ~the deleted fraction (leaf scans "
        "stop paying for tombstones), the grid sheds dead CSR entries, "
        "the sharded engine re-tightens its pruning MBBs; the R-Tree "
        "changes least because delete-time condensing already dropped "
        "victims from its leaves.  Measured QUASII: "
        f"{quasii_scan_reduction:.2f}x fewer scanned rows, "
        f"{quasii_speedup:.2f}x median-latency speedup"
    )
    report.add_note(
        "compaction cost (the 'compact (ms)' column) is one stable pass "
        "over the store plus an index remap — pay it once, then every "
        "later query stops touching dead space; the serving engine can "
        "instead trickle it per shard via maybe_compact(dead_fraction)"
    )
    return report


# ----------------------------------------------------------------------
# Shard scaling (sharding subsystem; beyond the paper)
# ----------------------------------------------------------------------
def shard_scaling(scale: Scale) -> ExperimentReport:
    """Batch throughput, pruning, and balance across shard/worker counts.

    The serving-engine experiment: one batch of small ("point-ish")
    uniform queries is executed at every ``(K shards, W workers)``
    combination of the scale, each over a fresh copy of the dataset.
    ``K=1 W=1`` is the sequential single-index baseline — one QUASII
    behind the engine facade — and a raw unsharded QUASII runs the same
    batch as an extra reference.  Sharding wins twice: queries prune
    shards whose MBB misses the window, and the shards they do touch
    crack sub-arrays of n/K rows instead of n (on multi-core hardware
    the thread pool additionally overlaps shard work; W=1 exercises the
    sequential fallback).  A second table contrasts the partitioners
    under skewed 90/10 hotspot traffic, where pruning and balance pull
    in opposite directions.
    """
    report = ExperimentReport(
        "shard-scaling",
        "Sharded serving engine: batch throughput vs the sequential "
        "single-index baseline across shard counts K and worker counts W",
    )
    ds = _uniform(scale)
    queries = uniform_workload(
        ds.universe, scale.shard_queries, scale.shard_fraction,
        seed=scale.seed + 10,
    )
    # Reference: the same batch through a raw (engine-less) QUASII.
    reference = QuasiiIndex(ds.store.copy())
    reference.build()
    t0 = time.perf_counter()
    for q in queries:
        reference.query(q)
    ref_seconds = time.perf_counter() - t0
    # The K=1 W=1 sequential single-index baseline always runs, and runs
    # first, regardless of what the scale's sweep tuples contain.
    configs = [(1, 1)] + [
        (k, w)
        for k in sorted(set(scale.shard_counts))
        for w in sorted(set(scale.shard_workers))
        if w <= k and (k, w) != (1, 1)
    ]
    base_seconds = 0.0
    rows: list[list[object]] = []
    best_parallel_speedup = 0.0
    for k, w in configs:
        engine = ShardedIndex(ds.store.copy(), n_shards=k, partitioner="str")
        t0 = time.perf_counter()
        engine.build()
        build_seconds = time.perf_counter() - t0
        # Backend pinned so the table means the same thing regardless of
        # any QUASII_EXECUTOR_BACKEND in the environment; the backend
        # face-off below is the deliberate comparison.
        batch = QueryExecutor(
            engine,
            max_workers=w,
            backend="sequential" if w <= 1 else "threads",
        ).run(queries)
        if (k, w) == (1, 1):
            base_seconds = batch.seconds
        fanned = engine.stats.shards_visited + engine.stats.shards_pruned
        pruned_pct = (
            100.0 * engine.stats.shards_pruned / fanned if fanned else 0.0
        )
        speedup = base_seconds / batch.seconds if batch.seconds > 0 else 0.0
        if k >= 4 and w > 1:
            best_parallel_speedup = max(best_parallel_speedup, speedup)
        label = "single-index baseline" if (k, w) == (1, 1) else batch.mode
        rows.append(
            [
                f"K={k} W={w} ({label})",
                round(build_seconds, 4),
                round(batch.seconds, 4),
                round(batch.throughput(), 1),
                f"{speedup:.2f}x",
                f"{pruned_pct:.0f}%",
                round(engine.balance_factor(), 2),
                engine.stats.shards_visited,
            ]
        )
    rows.append(
        [
            "QUASII (no engine, reference)",
            "-",
            round(ref_seconds, 4),
            round(len(queries) / ref_seconds, 1) if ref_seconds > 0 else "-",
            f"{base_seconds / ref_seconds:.2f}x" if ref_seconds > 0 else "-",
            "-",
            "-",
            "-",
        ]
    )
    report.add_table(
        f"Batch of {len(queries)} uniform queries "
        f"({scale.shard_fraction * 100:g}% volume) on {ds.n:,} objects",
        [
            "configuration",
            "partition build (s)",
            "batch (s)",
            "queries/s",
            "x baseline (K=1 W=1)",
            "shards pruned",
            "balance (max/mean)",
            "shard visits",
        ],
        rows,
    )
    report.add_note(
        "expected shape: K>=4 with W>1 beats the sequential single-index "
        "baseline on batch throughput (smaller per-shard crack ranges + "
        "MBB pruning; plus core overlap when the host has them); "
        f"measured best at K>=4, W>1: {best_parallel_speedup:.2f}x"
    )
    # Backend face-off: a delete-heavy serving stream of *fresh*
    # batches through every dispatch backend at one contended
    # configuration.  Two deliberate workload choices.  Fresh batches,
    # because repeating a frozen batch measures a fully-refined index —
    # the regime where QUASII has stopped cracking; fresh traffic keeps
    # the crack work coming.  Tombstones, because the face-off models
    # the window between maintenance compactions that every updating
    # deployment serves from: driver-side shard indexes must filter
    # dead rows out of every candidate set, while segment publication
    # packs live rows only — the worker snapshot is compacted for free.
    # Per (backend, repeat): a fresh STR-partitioned engine over a
    # dedicated backend_n-row dataset, backend_delete_fraction of its
    # rows tombstoned, one warmup batch (crack-in, spin the pool,
    # publish segments), then the timed remainder of the stream; the
    # median stream across repeats is reported.  Deleted ids and batch
    # seeds are shared across backends, so every backend serves the
    # identical traffic over the identical store state.
    bk = scale.backend_shards
    bw = min(scale.backend_workers, bk)
    bds = _uniform(scale, scale.backend_n)
    timed_batches = max(1, scale.backend_stream - 1)
    stream_queries = timed_batches * scale.shard_queries
    doomed_rng = np.random.default_rng(scale.seed + 19)
    doomed = bds.store.ids[
        doomed_rng.random(len(bds.store.ids)) < scale.backend_delete_fraction
    ]

    def _backend_stream(backend: str, repeat: int) -> float:
        engine = ShardedIndex(
            bds.store.copy(), n_shards=bk, partitioner="str"
        )
        engine.build()
        if len(doomed):
            engine.delete(doomed.tolist())
        batches = [
            uniform_workload(
                bds.universe,
                scale.shard_queries,
                scale.shard_fraction,
                seed=scale.seed + 20 + 100 * repeat + i,
            )
            for i in range(scale.backend_stream)
        ]
        with QueryExecutor(engine, max_workers=bw, backend=backend) as ex:
            ex.run(batches[0])  # warmup: crack in, spin the pool
            s0 = time.perf_counter()
            for batch in batches[1:]:
                ex.run(batch)
            return time.perf_counter() - s0

    backend_qps: dict[str, float] = {}
    backend_rows: list[list[object]] = []
    for backend in ("sequential", "threads", "processes"):
        seconds = sorted(
            _backend_stream(backend, r) for r in range(scale.backend_repeats)
        )
        median = seconds[len(seconds) // 2]
        backend_qps[backend] = stream_queries / median if median > 0 else 0.0
        backend_rows.append(
            [
                backend,
                round(median, 4),
                round(backend_qps[backend], 1),
            ]
        )
    seq_qps = backend_qps["sequential"]
    for row, backend in zip(backend_rows, ("sequential", "threads", "processes")):
        row.append(
            f"{backend_qps[backend] / seq_qps:.2f}x" if seq_qps else "-"
        )
    report.add_table(
        f"Dispatch backends: stream of {timed_batches} fresh "
        f"{scale.shard_queries}-query batches on {bds.n:,} objects, "
        f"{scale.backend_delete_fraction * 100:.0f}% tombstoned "
        f"(K={bk} W={bw}, median of {scale.backend_repeats} streams)",
        ["backend", "stream (s)", "queries/s", "x sequential"],
        backend_rows,
    )
    threads_qps = backend_qps["threads"]
    processes_qps = backend_qps["processes"]
    report.add_note(
        "expected shape: on a delete-heavy fresh-traffic stream the "
        "process backend beats thread dispatch — driver-side shard "
        "indexes (both sequential and thread serving) filter "
        "tombstoned rows out of every candidate set, while worker "
        "processes crack compact live-row-only shared-memory snapshots "
        "(and on multi-core hosts additionally overlap per-shard crack "
        "work that threads only time-slice under the GIL); measured at "
        f"K={bk} W={bw}: threads {threads_qps:.0f} q/s vs "
        f"processes {processes_qps:.0f} q/s "
        + (
            f"({processes_qps / threads_qps:.2f}x)"
            if threads_qps
            else "(threads stream did not complete)"
        )
    )
    # Headline metrics for the regression gate (names ending
    # per_second/speedup are higher-is-better with the gate's noise
    # floors; the speedup is the acceptance-critical figure).
    report.metrics = {
        "headline": {
            "threads_queries_per_second": round(threads_qps, 1),
            "processes_queries_per_second": round(processes_qps, 1),
            "process_over_thread_speedup": (
                round(processes_qps / threads_qps, 3) if threads_qps else 0.0
            ),
        }
    }
    # Partitioner face-off under skewed traffic.
    hot = hotspot_workload(
        ds.universe,
        n_queries=scale.shard_queries,
        volume_fraction=scale.shard_fraction,
        seed=scale.seed + 11,
    )
    k = max(scale.shard_counts)
    prows = []
    for pname in ("str", "round-robin"):
        engine = ShardedIndex(ds.store.copy(), n_shards=k, partitioner=pname)
        engine.build()
        batch = QueryExecutor(engine, max_workers=1).run(hot)
        fanned = engine.stats.shards_visited + engine.stats.shards_pruned
        prows.append(
            [
                pname,
                round(batch.seconds, 4),
                round(batch.throughput(), 1),
                f"{100.0 * engine.stats.shards_pruned / fanned:.0f}%"
                if fanned
                else "-",
                round(engine.balance_factor(), 2),
                sum(s.index.stats.queries for s in engine.shards),
            ]
        )
    report.add_table(
        f"Partitioners under 90/10 hotspot traffic (K={k}, sequential)",
        [
            "partitioner",
            "batch (s)",
            "queries/s",
            "shards pruned",
            "balance (max/mean)",
            "per-shard query executions",
        ],
        prows,
    )
    report.add_note(
        "expected shape: STR tiles prune most shard visits (hot queries "
        "touch one tile) while round-robin prunes nothing but balances "
        "perfectly — the spatial split wins whenever per-shard work "
        "dominates dispatch"
    )
    return report


# ----------------------------------------------------------------------
# Shard rebalancing (query-driven maintenance; beyond the paper)
# ----------------------------------------------------------------------
def rebalance_experiment(scale: Scale) -> ExperimentReport:
    """Drifting hotspot + skewed ingestion: maintained vs static engine.

    The rebalancing scenario: traffic follows a 90/10 hotspot whose hot
    region *moves* across phases, and every few operations an insert
    batch lands inside the current hot region (new data arrives where
    the traffic is).  A static STR engine keeps its build-time tiles, so
    the hot shard accretes rows — the balance factor climbs and tail
    latency with it.  The maintained engine runs the same operations
    through the same executor but with a
    :class:`~repro.sharding.MaintenancePolicy`: every ``check_every``
    ops it compacts tombstone-heavy shards and, when the balance factor
    or query-load skew drifts past threshold, splits the hot shard along
    the observed query centroids and merges the coldest one away
    (:class:`~repro.sharding.Rebalancer`).  Both engines execute the
    identical op stream, so their per-query results must match exactly —
    the report checks it.
    """
    report = ExperimentReport(
        "rebalance",
        "Query-driven shard rebalancing under a drifting hotspot with "
        "skewed ingestion: balance factor, pruning, and tail latency vs "
        "the static STR baseline",
    )
    ds = _uniform(scale, min(scale.rebalance_n, scale.uniform_n))
    k = max(scale.shard_counts)
    ops = drifting_hotspot_workload(
        ds.universe,
        n_ops=scale.rebalance_ops,
        phases=scale.rebalance_phases,
        volume_fraction=scale.shard_fraction,
        insert_every=scale.rebalance_insert_every,
        insert_batch=scale.rebalance_insert_batch,
        seed=scale.seed + 14,
    )
    per_phase = -(-len(ops) // scale.rebalance_phases)
    phase_ops = [
        ops[i : i + per_phase] for i in range(0, len(ops), per_phase)
    ]
    policy = MaintenancePolicy(
        check_every=16,
        dead_fraction=0.3,
        max_balance=1.2,
        max_query_skew=2.5,
        min_queries=16,
    )
    summary: dict[str, list[object]] = {}
    results: dict[str, list[MixedRunResult]] = {}
    phase_rows = []
    for label, maintenance in (("static STR", None), ("rebalanced", policy)):
        engine = ShardedIndex(ds.store.copy(), n_shards=k, partitioner="str")
        engine.build()
        chunks: list[MixedRunResult] = []
        peak_balance = engine.balance_factor()
        all_query_ms: list[float] = []
        for phase, chunk in enumerate(phase_ops):
            result = run_mixed_workload(
                engine, chunk, victim_seed=scale.seed + 15,
                maintenance=maintenance,
            )
            chunks.append(result)
            query_ms = np.array(
                [t.seconds for t in result.timings if t.kind == "query"],
                dtype=np.float64,
            ) * 1000.0
            all_query_ms.extend(query_ms.tolist())
            balance = engine.balance_factor()
            peak_balance = max(peak_balance, balance)
            phase_rows.append(
                [
                    phase + 1,
                    label,
                    round(balance, 2),
                    round(float(np.percentile(query_ms, 50)), 3),
                    round(float(np.percentile(query_ms, 99)), 3),
                    result.rebalances,
                    result.rows_migrated,
                    round(result.maintenance_seconds * 1000, 1),
                ]
            )
        results[label] = chunks
        query_ms_arr = np.asarray(all_query_ms)
        fanned = engine.stats.shards_visited + engine.stats.shards_pruned
        summary[label] = [
            label,
            round(peak_balance, 2),
            round(engine.balance_factor(), 2),
            round(
                100.0 * engine.stats.shards_pruned / fanned if fanned else 0.0, 0
            ),
            round(float(np.percentile(query_ms_arr, 50)), 3),
            round(float(np.percentile(query_ms_arr, 99)), 3),
            round(sum(c.total_seconds() for c in chunks), 3),
            sum(c.rebalances for c in chunks),
            sum(c.rows_migrated for c in chunks),
            round(sum(c.maintenance_seconds for c in chunks) * 1000, 1),
        ]
    n_queries = sum(c.kind_count("query") for c in results["static STR"])
    n_inserts = sum(c.kind_count("insert") for c in results["static STR"])
    report.add_table(
        f"Per phase: {len(ops)} ops ({n_queries} queries, {n_inserts} "
        f"insert batches of {scale.rebalance_insert_batch}) over "
        f"{scale.rebalance_phases} hotspot phases on {ds.n:,} objects, K={k}",
        [
            "phase",
            "engine",
            "balance @ end",
            "p50 (ms)",
            "p99 (ms)",
            "rebalances",
            "rows migrated",
            "maintenance (ms)",
        ],
        phase_rows,
    )
    report.add_table(
        "Whole run",
        [
            "engine",
            "peak balance",
            "final balance",
            "shards pruned %",
            "p50 (ms)",
            "p99 (ms)",
            "ops total (s)",
            "rebalances",
            "rows migrated",
            "maintenance (ms)",
        ],
        [summary["static STR"], summary["rebalanced"]],
    )
    static_q = [q for c in results["static STR"] for q in c.query_results]
    rebal_q = [q for c in results["rebalanced"] for q in c.query_results]
    mismatches = sum(
        0 if np.array_equal(a, b) else 1 for a, b in zip(static_q, rebal_q)
    )
    report.add_note(
        "correctness: both engines executed the identical op stream; "
        + (
            "every query returned identical results"
            if mismatches == 0
            else f"RESULTS DIVERGED on {mismatches} queries"
        )
    )
    report.add_note(
        "expected shape: skewed ingestion inflates the static engine's "
        "hot shard every phase (peak balance climbs and the fat shard "
        "drags p99) while the maintained engine splits hot shards along "
        "the observed query centroids and merges cold ones, holding "
        "balance near 1 at a bounded, off-path migration cost; measured "
        f"peak balance {summary['static STR'][1]} (static) vs "
        f"{summary['rebalanced'][1]} (rebalanced), p99 "
        f"{summary['static STR'][5]}ms vs {summary['rebalanced'][5]}ms"
    )
    report.add_note(
        "rebuilt shards are warmed up by replaying recent observed "
        "windows (Rebalancer(warmup=...)), so re-refinement happens in "
        "the maintenance budget, not as a post-split latency spike on "
        "the serving path"
    )
    # Headline metrics for the regression gate: the maintained engine's
    # whole-run balance and latency figures (balance/latency: lower is
    # better; the gate knows the direction per metric name).
    rebal = summary["rebalanced"]
    report.metrics = {
        "headline": {
            "rebalanced_peak_balance": float(rebal[1]),
            "rebalanced_final_balance": float(rebal[2]),
            "rebalanced_p50_ms": float(rebal[4]),
            "rebalanced_p99_ms": float(rebal[5]),
        }
    }
    return report


# ----------------------------------------------------------------------
# Replicated serving (replication subsystem; beyond the paper)
# ----------------------------------------------------------------------
def replication_experiment(scale: Scale) -> ExperimentReport:
    """Replicated shard serving across R, with a deterministic mid-run kill.

    One batch of small uniform queries runs at every replication factor
    in ``scale.replication_factors`` (R=1 is the unreplicated baseline),
    each over a fresh copy of the dataset.  Then the largest R repeats
    the batch with a :class:`FaultInjector` killing shard 0's primary
    replica halfway through: results must stay identical to the
    unfaulted run (failover, not data loss), and the corpse is brought
    back by ledger replay after a post-kill ingestion burst — proving
    the recovery path replays *missed* writes, not just the base
    snapshot.  The regression gate tracks p99 with and without the kill.
    """
    report = ExperimentReport(
        "replication",
        "Replicated shard serving: throughput and tail latency across "
        "replication factors R, plus a deterministic mid-run replica "
        "kill with failover and ledger-replay recovery",
    )
    ds = _uniform(scale, min(scale.rebalance_n, scale.uniform_n))
    queries = uniform_workload(
        ds.universe, scale.replication_queries, scale.shard_fraction,
        seed=scale.seed + 31,
    )
    n_shards = max(scale.shard_counts)
    kill_at = max(2, len(queries) // 2)
    factors = sorted(set(scale.replication_factors))

    def run_batch(replication: int, kill: bool):
        events = EventLog()
        engine = ReplicatedShardedIndex(
            ds.store.copy(),
            n_shards=n_shards,
            replication=replication,
            partitioner="str",
            events=events,
        )
        t0 = time.perf_counter()
        engine.build()
        build_seconds = time.perf_counter() - t0
        if kill:
            engine.attach_fault_injector(
                FaultInjector(
                    [Fault(at_op=kill_at, action="kill", sid=0, rid=0)]
                )
            )
        # Serve in executor mini-batches (the soak's serving pattern):
        # per-query seconds are equal-share within one batch, so tail
        # percentiles are only meaningful across many small batches.
        executor = QueryExecutor(engine, max_workers=2)
        results: list[np.ndarray] = []
        lat_s: list[float] = []
        seconds = 0.0
        for start in range(0, len(queries), 16):
            batch = executor.run(queries[start:start + 16])
            seconds += batch.seconds
            results.extend(batch.results)
            lat_s.extend(r.seconds for r in batch.query_results)
        lat_ms = np.asarray(lat_s, dtype=np.float64) * 1e3
        qps = len(queries) / seconds if seconds > 0 else 0.0
        return engine, events, results, build_seconds, lat_ms, seconds, qps

    rows: list[list[object]] = []
    stats: dict[int, dict[str, float]] = {}
    results: dict[int, list[np.ndarray]] = {}
    for replication in factors:
        engine, _, run_results, build_seconds, lat_ms, seconds, qps = (
            run_batch(replication, kill=False)
        )
        memory_mb = sum(s.memory_bytes() for s in engine.shards) / 1e6
        stats[replication] = {
            "qps": qps,
            "p50_ms": float(np.percentile(lat_ms, 50)),
            "p99_ms": float(np.percentile(lat_ms, 99)),
        }
        results[replication] = run_results
        rows.append(
            [
                f"R={replication}",
                round(build_seconds, 4),
                round(seconds, 4),
                round(qps, 1),
                round(stats[replication]["p50_ms"], 3),
                round(stats[replication]["p99_ms"], 3),
                round(memory_mb, 1),
            ]
        )
    report.add_table(
        f"Batch of {len(queries)} uniform queries "
        f"({scale.shard_fraction * 100:g}% volume) on {ds.n:,} objects, "
        f"K={n_shards} shards",
        [
            "replication",
            "build (s)",
            "batch (s)",
            "queries/s",
            "p50 (ms)",
            "p99 (ms)",
            "memory (MB)",
        ],
        rows,
    )
    report.add_note(
        "expected shape: replication buys fault tolerance, not batch "
        "speed — replicas of one shard split that shard's reads, so a "
        "uniform batch sees near-flat latency while memory scales with R "
        "(the win is availability and hot-tile headroom; see the "
        "rebalancer's replica-aware skew gate)"
    )

    rmax = factors[-1]
    killed: dict[str, float] = {}
    if rmax >= 2:
        engine, events, kill_results, _, lat_ms, _, qps = run_batch(
            rmax, kill=True
        )
        mismatches = sum(
            0 if np.array_equal(np.sort(a), np.sort(b)) else 1
            for a, b in zip(results[rmax], kill_results)
        )
        failovers = len(events.recent(kind="replica.failover"))
        assert engine.dead_replicas() == [(0, 0)], (
            "the scheduled kill did not land where scheduled"
        )
        # Post-kill ingestion: the dead replica misses these writes and
        # must get them back from the ledger's op log at recovery.
        rng = np.random.default_rng(scale.seed + 32)
        ndim = ds.store.ndim
        ulo = np.asarray(ds.universe.lo, dtype=np.float64)
        uhi = np.asarray(ds.universe.hi, dtype=np.float64)
        blo = rng.uniform(ulo, uhi, size=(scale.replication_insert_batch, ndim))
        bhi = np.minimum(blo + rng.uniform(0.1, 2.0, size=blo.shape), uhi)
        engine.insert(blo, bhi)
        replayed = engine.shards[0].replica_set.ledger.log_length
        engine.recover_replica(0, 0)
        recovered = events.recent(kind="replica.recover")
        replica_set = engine.shards[0].replica_set
        fingerprints = {
            r.store.live_fingerprint() for r in replica_set.replicas
        }
        killed = {
            "qps": qps,
            "p99_ms": float(np.percentile(lat_ms, 99)),
        }
        report.add_table(
            f"Mid-run kill at query {kill_at} (R={rmax}: shard 0 primary)",
            [
                "run",
                "queries/s",
                "p99 (ms)",
                "result mismatches",
                "failovers",
                "replayed ops",
            ],
            [
                [
                    "unfaulted",
                    round(stats[rmax]["qps"], 1),
                    round(stats[rmax]["p99_ms"], 3),
                    0,
                    0,
                    "-",
                ],
                [
                    "killed + recovered",
                    round(killed["qps"], 1),
                    round(killed["p99_ms"], 3),
                    mismatches,
                    failovers,
                    replayed,
                ],
            ],
        )
        report.add_note(
            "correctness under failure: the killed run answered the "
            + (
                "identical result set for every query"
                if mismatches == 0
                else f"WRONG result on {mismatches} queries"
            )
            + f"; recovery replayed {replayed} ledger op(s) and "
            + (
                "all replicas ended fingerprint-identical"
                if len(fingerprints) == 1
                else "REPLICAS DIVERGED after recovery"
            )
        )
        assert recovered and recovered[-1].payload["replayed_ops"] == replayed

    report.metrics = {
        "config": {
            "n_objects": int(ds.n),
            "n_shards": int(n_shards),
            "n_queries": len(queries),
            "replication_factors": list(factors),
            "kill_at": kill_at,
        },
        # Headline metrics the regression gate compares run-over-run
        # (latencies lower-better, queries_per_second higher-better;
        # "rmax"/"killed" keep the key set stable across scales).
        "headline": {
            "r1_p99_ms": stats[factors[0]]["p99_ms"],
            "rmax_p99_ms": stats[rmax]["p99_ms"],
            "rmax_queries_per_second": stats[rmax]["qps"],
            **(
                {
                    "killed_p99_ms": killed["p99_ms"],
                    "killed_queries_per_second": killed["qps"],
                }
                if killed
                else {}
            ),
        },
    }
    return report


# ----------------------------------------------------------------------
# Query API (first-class queries; beyond the paper)
# ----------------------------------------------------------------------
def query_api_experiment(scale: Scale) -> ExperimentReport:
    """Native batch execution, predicate mix, and count-only speedups.

    Three measurements over the first-class query layer:

    1. **Batch vs loop** — the same uniform query batch through
       ``execute_batch`` (one candidate matrix / stacked refine per
       batch, per-shard sub-batches for the sharded engine) vs an
       equivalent Python loop of ``execute`` calls, per index.  Fresh
       index copies per mode so incremental refinement cannot leak
       between the runs.
    2. **Predicate mix** — intersects / within / contains / covers-point
       batches on every index, checked for exact count agreement with
       the Scan oracle.
    3. **Count-only speedup** — ``mode="count"`` vs ``mode="ids"``
       batches: the short-circuit never materializes ids, which on the
       vectorized paths reduces a query to a row-sum of the candidate
       matrix.
    """
    report = ExperimentReport(
        "query-api",
        "First-class query API: native batch throughput vs per-query "
        "loops, predicate mix agreement, and the count-only short-circuit",
    )
    ds = _uniform(scale)
    n_queries = min(scale.uniform_queries, 400)
    queries = [
        Query(q.window, seq=q.seq)
        for q in uniform_workload(
            ds.universe, n_queries, scale.uniform_fraction,
            seed=scale.seed + 16,
        )
    ]
    kinds = ("Scan", "Grid", "SFC", "QUASII", "Sharded")

    def fresh(kind: str):
        index = _fresh_index(kind, ds, scale)
        index.build()
        return index

    rows = []
    speedups: dict[str, float] = {}
    for kind in kinds:
        loop_index = fresh(kind)
        t0 = time.perf_counter()
        loop_results = [loop_index.execute(q) for q in queries]
        loop_seconds = time.perf_counter() - t0
        batch_index = fresh(kind)
        t0 = time.perf_counter()
        batch_results = batch_index.execute_batch(queries)
        batch_seconds = time.perf_counter() - t0
        mismatches = sum(
            0 if np.array_equal(np.sort(a.ids), np.sort(b.ids)) else 1
            for a, b in zip(loop_results, batch_results)
        )
        speedups[kind] = loop_seconds / batch_seconds if batch_seconds else 0.0
        rows.append(
            [
                kind,
                round(loop_seconds, 4),
                round(batch_seconds, 4),
                round(len(queries) / batch_seconds, 1) if batch_seconds else "-",
                f"{speedups[kind]:.2f}x",
                "yes" if mismatches == 0 else f"NO ({mismatches})",
            ]
        )
    report.add_table(
        f"Batch of {len(queries)} uniform queries "
        f"({scale.uniform_fraction * 100:g}% volume) on {ds.n:,} objects",
        [
            "index",
            "execute loop (s)",
            "execute_batch (s)",
            "batch queries/s",
            "batch speedup",
            "batch == loop",
        ],
        rows,
    )
    report.add_note(
        "expected shape: execute_batch beats the loop on every index — "
        "Scan answers the whole batch from (B, n) candidate matrices, "
        "Grid/SFC refine all candidates in one stacked kernel per "
        "predicate, the sharded engine fans out one sub-batch per shard; "
        f"measured Scan {speedups['Scan']:.2f}x, Grid {speedups['Grid']:.2f}x"
    )

    # Predicate mix: every predicate on every index vs the Scan oracle.
    mix: dict[str, list[Query]] = {
        "intersects": queries[:50],
        "within": [
            Query(q.window, predicate="within", seq=q.seq)
            for q in queries[:50]
        ],
        "contains": [
            Query(q.window, predicate="contains", seq=q.seq)
            for q in queries[:50]
        ],
        "covers_point": [
            Query.point(q.window.center, seq=q.seq) for q in queries[:50]
        ],
    }
    oracle_index = fresh("Scan")
    oracle_counts = {
        pred: [r.count for r in oracle_index.execute_batch(qs)]
        for pred, qs in mix.items()
    }
    prows = []
    for kind in kinds:
        index = fresh(kind)
        cells: list[object] = [kind]
        agree = True
        for pred, qs in mix.items():
            t0 = time.perf_counter()
            results = index.execute_batch(qs)
            ms = (time.perf_counter() - t0) / len(qs) * 1000
            counts = [r.count for r in results]
            agree = agree and counts == oracle_counts[pred]
            cells.append(f"{sum(counts)} ({ms:.3f}ms)")
        cells.append("yes" if agree else "NO")
        prows.append(cells)
    report.add_table(
        "Predicate mix: total matches (mean ms/query) per predicate",
        ["index"] + list(mix) + ["matches Scan"],
        prows,
    )

    # Count-only short-circuit.
    crows = []
    count_speedups: dict[str, float] = {}
    for kind in ("Scan", "Grid", "QUASII"):
        ids_index = fresh(kind)
        t0 = time.perf_counter()
        ids_index.execute_batch(queries)
        ids_seconds = time.perf_counter() - t0
        count_index = fresh(kind)
        count_queries = [
            Query(q.window, mode="count", seq=q.seq) for q in queries
        ]
        t0 = time.perf_counter()
        count_index.execute_batch(count_queries)
        count_seconds = time.perf_counter() - t0
        count_speedups[kind] = (
            ids_seconds / count_seconds if count_seconds else 0.0
        )
        crows.append(
            [
                kind,
                round(ids_seconds, 4),
                round(count_seconds, 4),
                f"{ids_seconds / count_seconds:.2f}x" if count_seconds else "-",
            ]
        )
    report.add_table(
        "Count-only short-circuit (same batch, mode='count')",
        ["index", "ids batch (s)", "count batch (s)", "count speedup"],
        crows,
    )
    report.add_note(
        "count mode stops at the predicate mask (a row-sum on the "
        "vectorized paths) — no ids or coordinates are ever gathered; "
        "useful for selectivity probes (the kNN extension's expanding "
        "rounds) and existence checks"
    )
    # Headline metrics the regression gate (repro.bench.regression)
    # compares run-over-run; all are speedup ratios (higher is better).
    report.metrics = {
        "headline": {
            **{
                f"batch_speedup_{kind.lower()}": round(speedups[kind], 4)
                for kind in kinds
            },
            **{
                f"count_speedup_{kind.lower()}": round(ratio, 4)
                for kind, ratio in count_speedups.items()
            },
        }
    }
    return report


# ----------------------------------------------------------------------
# Headline numbers
# ----------------------------------------------------------------------
def headline(scale: Scale) -> ExperimentReport:
    report = ExperimentReport(
        "headline",
        "The paper's headline claims, recomputed end-to-end",
    )
    cruns = _clustered_runs(scale)
    uruns = _uniform_runs(scale)
    rows = [
        [
            "data-to-insight reduction vs R-Tree (clustered)",
            f"{data_to_insight_factor(cruns['QUASII'], cruns['R-Tree']):.1f}x",
            "11.4x",
        ],
        [
            "data-to-insight reduction vs Grid (clustered)",
            f"{data_to_insight_factor(cruns['QUASII'], cruns['Grid']):.1f}x",
            "5.1x",
        ],
        [
            "QUASII cumulative / R-Tree (clustered)",
            f"{cumulative_ratio(cruns['QUASII'], cruns['R-Tree']):.2f}",
            "0.394",
        ],
        [
            "QUASII cumulative / R-Tree (uniform)",
            f"{cumulative_ratio(uruns['QUASII'], uruns['R-Tree']):.2f}",
            "0.75",
        ],
        [
            "converged slowdown vs R-Tree (uniform tail)",
            f"{converged_slowdown(uruns['QUASII'], uruns['R-Tree'], 100):.2f}x",
            "1.075x",
        ],
        [
            "converged speedup over Mosaic",
            f"{speedup_tail(cruns['Mosaic'], cruns['QUASII'], 50):.2f}x",
            "3.68x",
        ],
        [
            "converged speedup over SFCracker",
            f"{speedup_tail(cruns['SFCracker'], cruns['QUASII'], 50):.2f}x",
            "4.9x",
        ],
        [
            "QUASII break-even vs R-Tree (clustered, time)",
            str(break_even_query(cruns["QUASII"], cruns["R-Tree"]) or "never"),
            "never",
        ],
        [
            "QUASII break-even vs R-Tree (clustered, work model)",
            str(work_break_even_query(cruns["QUASII"], cruns["R-Tree"]) or "never"),
            "never",
        ],
        [
            "QUASII work / R-Tree work (clustered)",
            f"{work_ratio(cruns['QUASII'], cruns['R-Tree']):.2f}",
            "(0.394 in time)",
        ],
        [
            "work-model insight factor vs R-Tree",
            f"{work_insight_factor(cruns['QUASII'], cruns['R-Tree']):.1f}x",
            "11.4x (time)",
        ],
    ]
    report.add_table("Headline comparison", ["metric", "measured", "paper"], rows)
    return report


#: Registry: experiment id -> (function, description).
EXPERIMENTS: dict[str, tuple[Callable[[Scale], ExperimentReport], str]] = {
    "fig6a": (fig6a, "data-assignment penalty (R-Tree vs grids)"),
    "fig6b": (fig6b, "grid configuration sensitivity"),
    "fig7": (fig7, "incremental vs static: convergence"),
    "fig8": (fig8, "incremental vs static: cumulative time"),
    "fig9a": (fig9a, "comparative convergence of incrementals"),
    "fig9b": (fig9b, "comparative cumulative time of incrementals"),
    "fig10": (fig10, "uniform workload convergence + cumulative"),
    "fig11": (fig11, "scalability across dataset sizes"),
    "fig12": (fig12, "impact of query selectivity"),
    "mixed-workload": (
        mixed_workload_experiment,
        "mixed read/write workloads (update subsystem)",
    ),
    "compaction": (
        compaction_experiment,
        "physical compaction: query cost before/after reclaiming tombstones",
    ),
    "query-api": (
        query_api_experiment,
        "first-class query API: batch vs loop, predicates, count-only",
    ),
    "shard-scaling": (
        shard_scaling,
        "sharded serving engine: fan-out throughput, pruning, balance",
    ),
    "rebalance": (
        rebalance_experiment,
        "query-driven shard rebalancing under a drifting hotspot",
    ),
    "replication": (
        replication_experiment,
        "replicated shard serving: R sweep, mid-run replica kill, "
        "ledger-replay recovery",
    ),
    "soak": (
        soak_experiment,
        "steady-state soak: windowed latency histograms with "
        "maintenance-pause span attribution",
    ),
    "headline": (headline, "paper headline numbers"),
    "ablation-rep": (ablation_representative, "representative coordinate ablation"),
    "ablation-tau": (ablation_tau, "leaf threshold sensitivity"),
    "ablation-split": (ablation_split, "artificial split: midpoint vs median"),
    "ablation-sequential": (ablation_sequential, "random vs sequential access"),
    "ablation-rtree": (ablation_rtree_build, "STR vs Guttman construction"),
}


def run_experiment(
    name: str, scale: Scale | str = "small", **kwargs
) -> ExperimentReport:
    """Run one experiment by id; accepts a scale preset name or object.

    Extra keyword arguments are forwarded to the experiment function —
    used by the CLI to thread per-verb options (e.g. the soak's
    ``serve_metrics`` port) without widening every experiment signature.
    """
    if isinstance(scale, str):
        try:
            scale = SCALES[scale]
        except KeyError:
            raise ConfigurationError(
                f"unknown scale {scale!r}; choose from {sorted(SCALES)}"
            ) from None
    try:
        func, _ = EXPERIMENTS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None
    return func(scale, **kwargs)
