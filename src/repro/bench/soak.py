"""Steady-state soak benchmark: latency histograms over time.

Every other experiment reports one aggregate per configuration; a
serving engine's real behavior is a *trajectory* — p99 is fine until a
compaction pass stalls the loop for 40 ms, and an aggregate over the
whole run averages the stall away.  The soak drives a time-bounded
mixed workload (drifting 90/10 hotspot traffic, skewed ingestion
bursts, periodic delete storms) through the full serving stack — a
:class:`~repro.sharding.QueryExecutor` over a
:class:`~repro.sharding.ShardedIndex` with maintenance enabled — with
telemetry on, and reports per-window latency histograms next to the
maintenance spans that ran inside each window.  A maintenance pause is
then *visible* (a p99 spike in one window) and *attributable* (the
``maintenance.compact``/``maintenance.rebalance`` span in the same
window, with its duration and the rows it touched).

The op stream is generated once and cycled — the workload *shape* is
deterministic under ``scale.seed``; only how far the loop gets within
``scale.soak_seconds`` depends on the machine.  Delete victims resolve
deterministically from the executed-op counter via
:func:`~repro.updates.executor.resolve_delete_victims`, exactly like
the mixed-workload runner.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

import numpy as np

from repro.baselines.scan import ScanIndex
from repro.bench.reporting import ExperimentReport
from repro.datasets.generators import make_uniform
from repro.queries.query import as_query
from repro.queries.workloads import WorkloadOp, drifting_hotspot_workload
from repro.sharding.executor import QueryExecutor
from repro.sharding.maintenance import MaintenancePolicy
from repro.sharding.replication import ReplicatedShardedIndex
from repro.sharding.sharded_index import ShardedIndex
from repro.telemetry import (
    EventLog,
    MetricsServer,
    Telemetry,
    TimeSeriesRecorder,
)
from repro.telemetry.naming import (
    DELETE_SECONDS,
    INSERT_SECONDS,
    OPS,
    QUERY_SECONDS,
    SHARDS_BALANCE,
    STORE_DEAD_FRACTION,
    STORE_LIVE,
    record_stats_delta,
    stats_metric,
)
from repro.updates.executor import resolve_delete_victims

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycle)
    from repro.bench.experiments import Scale

#: Queries accumulate into executor mini-batches of this size; a write
#: op flushes the pending batch first, preserving op order.
QUERY_BATCH = 16


def _soak_ops(universe, scale: "Scale") -> list[WorkloadOp]:
    """One cycle of the soak op stream (queries + inserts + deletes).

    Drifting-hotspot traffic with skewed ingestion, then a delete storm
    spliced in every ``soak_delete_every`` operations — the engine must
    crack, absorb, reclaim, and rebalance all at once.
    """
    base = drifting_hotspot_workload(
        universe,
        n_ops=scale.soak_ops,
        phases=scale.rebalance_phases,
        volume_fraction=scale.shard_fraction,
        insert_every=scale.soak_insert_every,
        insert_batch=scale.soak_insert_batch,
        seed=scale.seed + 23,
    )
    ops: list[WorkloadOp] = []
    for i, op in enumerate(base):
        if i and i % scale.soak_delete_every == 0:
            ops.append(
                WorkloadOp(
                    kind="delete", seq=len(ops), count=scale.soak_delete_batch
                )
            )
        ops.append(op)
    return ops


def soak_experiment(
    scale: "Scale", serve_metrics: int | None = None, chaos: bool = False
) -> ExperimentReport:
    """Run the soak for ``scale.soak_seconds``; report the trajectory.

    With ``serve_metrics`` set (a port; ``0`` picks an ephemeral one), a
    :class:`~repro.telemetry.MetricsServer` exposes the live registry,
    span ring, and event log for the duration of the run — the CLI's
    ``--serve-metrics`` flag, so a running soak is scrapeable mid-flight.
    Queries slower than ``scale.soak_slow_ms`` land in a structured
    :class:`~repro.telemetry.EventLog` as ``slow_query`` events; the
    report ends with the slowest of them, fully attributed.

    With ``chaos`` on (the CLI's ``--chaos`` flag), the engine serves
    from ``scale.soak_chaos_replication`` replicas per shard, a
    deterministic replica kill fires every ``scale.soak_chaos_every``
    executed ops (always leaving each shard at least one live replica),
    and the maintenance scheduler heals corpses by ledger replay
    (``recover_replicas=True``).  Every query's result is verified
    against a Scan oracle — the run reports the mismatch count (which
    must be zero) next to the kill/recovery tallies, so the chaos soak
    doubles as an end-to-end correctness harness under failure.
    """
    report = ExperimentReport(
        "soak",
        "Steady-state serving soak: windowed latency histograms with "
        "maintenance-pause span attribution (drifting hotspot + "
        "ingestion bursts + delete storms, maintenance on"
        + (", replica-kill chaos with oracle verification" if chaos else "")
        + ")",
    )
    ds = make_uniform(
        min(scale.rebalance_n, scale.uniform_n), seed=scale.seed
    )
    if chaos:
        engine: ShardedIndex = ReplicatedShardedIndex(
            ds.store.copy(),
            n_shards=max(scale.shard_counts),
            replication=scale.soak_chaos_replication,
            partitioner="str",
        )
    else:
        engine = ShardedIndex(
            ds.store.copy(),
            n_shards=max(scale.shard_counts),
            partitioner="str",
        )
    engine.build()
    # The oracle's store starts as the same copy, so both sides assign
    # identical id streams and every query is exactly comparable.
    oracle = ScanIndex(ds.store.copy()) if chaos else None
    telemetry = Telemetry()
    events = EventLog()
    policy = MaintenancePolicy(
        check_every=16,
        dead_fraction=0.15,
        max_balance=1.2,
        max_query_skew=2.5,
        min_queries=16,
        recover_replicas=chaos,
    )
    slow_threshold = scale.soak_slow_ms / 1e3
    executor = QueryExecutor(
        engine,
        max_workers=2,
        maintenance=policy,
        telemetry=telemetry,
        events=events,
        slow_query_threshold=slow_threshold,
    )
    scheduler = executor.scheduler
    assert scheduler is not None
    server: MetricsServer | None = None
    if serve_metrics is not None:
        server = MetricsServer(
            telemetry, port=serve_metrics, events=events
        ).start()
        report.add_note(
            f"live metrics served at {server.url} for the duration of the "
            "run (/metrics, /snapshot.json, /spans, /events, /healthz)"
        )
    recorder = TimeSeriesRecorder(telemetry.registry, window=scale.soak_window)
    registry = telemetry.registry
    ops_counter = registry.counter(OPS)
    insert_hist = registry.histogram(INSERT_SECONDS)
    delete_hist = registry.histogram(DELETE_SECONDS)
    live_gauge = registry.gauge(STORE_LIVE)
    dead_gauge = registry.gauge(STORE_DEAD_FRACTION)
    balance_gauge = registry.gauge(SHARDS_BALANCE)

    ops = _soak_ops(ds.universe, scale)
    state = {"live": engine.store.ids[engine.store.live_rows()].copy()}
    pending: list = []
    chaos_rng = np.random.default_rng(scale.seed + 77)
    chaos_state = {"kills": 0, "verified": 0, "mismatches": 0}

    def flush_queries() -> None:
        if not pending:
            return
        result = executor.run([as_query(q) for q in pending])
        if oracle is not None:
            for window, got in zip(pending, result.results):
                expect = oracle.query(window)
                chaos_state["verified"] += 1
                if not np.array_equal(np.sort(got), np.sort(expect)):
                    chaos_state["mismatches"] += 1
        pending.clear()

    def chaos_tick() -> None:
        # Deterministic periodic kill: a random live replica of a random
        # shard, but never the shard's last one — availability outages
        # are the fault-injection suites' territory; the chaos soak
        # proves *degraded* serving stays correct while healing.
        flush_queries()
        sid = int(chaos_rng.integers(engine.n_shards))
        replica_set = engine.shards[sid].replica_set
        live = replica_set.live_replicas()
        if len(live) >= 2:
            rid = int(chaos_rng.choice([r.rid for r in live]))
            engine.kill_replica(sid, rid)
            chaos_state["kills"] += 1

    def write_tick(op: WorkloadOp, seq: int) -> None:
        # Writes tick the same scheduler the executor ticks for queries,
        # inside a stats bracket, so maintenance triggered by a delete
        # storm is attributed to the op that caused it.
        before = engine.stats.snapshot()
        t0 = time.perf_counter()
        if op.kind == "insert":
            assigned = engine.insert(op.lo, op.hi)
            insert_hist.record(time.perf_counter() - t0)
            state["live"] = np.concatenate([state["live"], assigned])
            if oracle is not None:
                mirrored = oracle.insert(op.lo, op.hi)
                assert np.array_equal(mirrored, assigned), (
                    "oracle id stream diverged from the engine's"
                )
        else:
            victims = resolve_delete_victims(
                state["live"], op.count, seq, scale.seed
            )
            if victims.size:
                engine.delete(victims)
                if oracle is not None:
                    oracle.delete(victims)
                state["live"] = state["live"][
                    ~np.isin(state["live"], victims)
                ]
            delete_hist.record(time.perf_counter() - t0)
        scheduler.after_ops(1)
        record_stats_delta(registry, engine.stats.delta_since(before))

    start = time.perf_counter()
    deadline = start + scale.soak_seconds
    recorder.tick(start)
    executed = 0
    i = 0
    now = start
    try:
        while now < deadline:
            op = ops[i % len(ops)]
            i += 1
            if chaos and executed and executed % scale.soak_chaos_every == 0:
                chaos_tick()
            if op.kind == "query":
                pending.append(op.query)
                if len(pending) >= QUERY_BATCH:
                    flush_queries()
            else:
                flush_queries()
                write_tick(op, executed)
            executed += 1
            ops_counter.inc()
            store = engine.store
            live_gauge.set(store.live_count)
            dead_gauge.set(store.n_dead / store.n if store.n else 0.0)
            balance_gauge.set(engine.balance_factor())
            now = time.perf_counter()
            recorder.tick(now)
        flush_queries()
    finally:
        if server is not None:
            server.stop()
    now = time.perf_counter()
    recorder.flush(now)
    elapsed = now - start

    # -- span attribution: which window did each maintenance pass land in
    def window_of(t: float) -> int:
        return min(
            int((t - start) / scale.soak_window),
            max(len(recorder.windows) - 1, 0),
        )

    def plain(value):
        # Span attrs may carry numpy scalars; JSON needs builtins.
        if isinstance(value, (bool, str)):
            return value
        if isinstance(value, float):
            return float(value)
        return int(value)

    work_spans = [
        {
            "name": r.name,
            "start": r.start - start,
            "seconds": r.seconds,
            "window": window_of(r.start),
            "attrs": {k: plain(v) for k, v in r.attrs.items()},
        }
        for r in telemetry.tracer.records
        if r.name in ("maintenance.compact", "maintenance.rebalance")
        and (r.attrs.get("rows_reclaimed") or r.attrs.get("applied"))
    ]

    # -- tables ------------------------------------------------------------
    rows = []
    for w in recorder.windows:
        qh = w.histograms.get(QUERY_SECONDS)
        check = w.histograms.get("span.maintenance.check")
        rows.append(
            [
                w.index,
                f"{w.start - start:.1f}-{w.end - start:.1f}s",
                w.counters.get(OPS, 0),
                qh.count if qh else 0,
                (qh.percentile(50) * 1e3) if qh and qh.count else 0.0,
                (qh.percentile(99) * 1e3) if qh and qh.count else 0.0,
                (qh.max * 1e3) if qh and qh.count else 0.0,
                w.counters.get(stats_metric("cracks"), 0),
                w.counters.get(stats_metric("compactions"), 0),
                w.counters.get(stats_metric("rebalances"), 0),
                (check.sum * 1e3) if check else 0.0,
            ]
        )
    report.add_table(
        "latency trajectory (per window)",
        [
            "w", "interval", "ops", "queries", "q_p50_ms", "q_p99_ms",
            "q_max_ms", "cracks", "compact", "rebal", "maint_ms",
        ],
        rows,
    )
    report.add_table(
        "maintenance spans (work performed)",
        ["span", "window", "t_ms", "dur_ms", "rows"],
        [
            [
                s["name"],
                s["window"],
                s["start"] * 1e3,
                s["seconds"] * 1e3,
                s["attrs"].get("rows_reclaimed")
                or s["attrs"].get("rows_migrated")
                or 0,
            ]
            for s in work_spans
        ],
    )
    qh_total = registry.histogram(QUERY_SECONDS)
    report.add_table(
        "overall",
        ["ops", "queries", "q_p50_ms", "q_p99_ms", "q_max_ms",
         "compact_passes", "rows_reclaimed", "rebalances", "rows_migrated",
         "maint_s", "elapsed_s"],
        [[
            executed,
            qh_total.count,
            qh_total.percentile(50) * 1e3,
            qh_total.percentile(99) * 1e3,
            qh_total.max * 1e3,
            scheduler.report.compaction_passes,
            scheduler.report.rows_reclaimed,
            scheduler.report.rebalances,
            scheduler.report.rows_migrated,
            scheduler.report.seconds,
            elapsed,
        ]],
    )

    # -- slowest queries (structured slow_query events) --------------------
    slow = sorted(
        events.recent("slow_query"),
        key=lambda e: e.payload["seconds"],
        reverse=True,
    )
    top_slow = slow[:8]
    report.add_table(
        f"slowest queries (> {scale.soak_slow_ms:g} ms threshold; "
        f"{len(slow)} slow_query event(s) in the log)",
        [
            "seq", "ms", "rows", "predicate", "mode", "window",
            "batch_ms", "visited", "pruned",
        ],
        [
            [
                e.payload["seq"],
                round(e.payload["seconds"] * 1e3, 3),
                e.payload["count"],
                e.payload["predicate"],
                e.payload["batch_mode"],
                "x".join(
                    f"{hi - lo:.0f}"
                    for lo, hi in zip(
                        e.payload["window_lo"], e.payload["window_hi"]
                    )
                ),
                round(e.payload["batch_seconds"] * 1e3, 2),
                e.payload["shards_visited"],
                e.payload["shards_pruned"]
                if e.payload["shards_pruned"] is not None
                else "-",
            ]
            for e in top_slow
        ],
    )

    # -- notes -------------------------------------------------------------
    windowed_p99 = [
        (w.index, w.histograms[QUERY_SECONDS].percentile(99))
        for w in recorder.windows
        if QUERY_SECONDS in w.histograms
        and w.histograms[QUERY_SECONDS].count
    ]
    if windowed_p99:
        worst = max(windowed_p99, key=lambda t: t[1])
        best = min(windowed_p99, key=lambda t: t[1])
        report.add_note(
            f"query p99 ranges {best[1] * 1e3:.2f} ms (window {best[0]}) to "
            f"{worst[1] * 1e3:.2f} ms (window {worst[0]}) across "
            f"{len(recorder.windows)} windows"
        )
        in_worst = [s for s in work_spans if s["window"] == worst[0]]
        if in_worst:
            top = max(in_worst, key=lambda s: s["seconds"])
            report.add_note(
                f"worst window {worst[0]} contained {top['name']} "
                f"({top['seconds'] * 1e3:.2f} ms) — the pause is attributed, "
                "not mysterious"
            )
    if work_spans:
        top = max(work_spans, key=lambda s: s["seconds"])
        report.add_note(
            f"{len(work_spans)} maintenance pass(es) did work; slowest was "
            f"{top['name']} at {top['seconds'] * 1e3:.2f} ms in window "
            f"{top['window']}"
        )
    else:
        report.add_note(
            "no maintenance pass did work this run — lengthen soak_seconds "
            "or lower the policy thresholds"
        )
    if telemetry.tracer.dropped:
        report.add_note(
            f"{telemetry.tracer.dropped} span record(s) dropped past the "
            "tracer cap (registry histograms still complete)"
        )
    if top_slow:
        worst_q = top_slow[0]
        report.add_note(
            f"slowest query (seq {worst_q.payload['seq']}) took "
            f"{worst_q.payload['seconds'] * 1e3:.2f} ms in a "
            f"{worst_q.payload['batch_mode']} batch of "
            f"{worst_q.payload['batch_queries']} "
            f"({worst_q.payload['batch_seconds'] * 1e3:.2f} ms total)"
        )
    else:
        report.add_note(
            f"no query exceeded the {scale.soak_slow_ms:g} ms slow-query "
            "threshold — lower scale.soak_slow_ms to exercise the event log"
        )
    if events.dropped:
        report.add_note(
            f"{events.dropped} event(s) dropped past the event-log ring "
            "(emitted counter still complete)"
        )
    replica_events: dict[str, int] = {}
    if chaos:
        for record in events.recent():
            if record.kind.startswith("replica."):
                replica_events[record.kind] = (
                    replica_events.get(record.kind, 0) + 1
                )
        report.add_note(
            f"chaos: {chaos_state['kills']} replica kill(s), "
            f"{scheduler.report.replicas_recovered} ledger-replay "
            f"recover(ies); {chaos_state['verified']} quer(ies) verified "
            f"against the Scan oracle with {chaos_state['mismatches']} "
            "mismatch(es)"
        )

    # -- machine-readable trajectory --------------------------------------
    report.metrics = {
        "window_seconds": scale.soak_window,
        "soak_seconds": scale.soak_seconds,
        "elapsed_seconds": elapsed,
        "ops_executed": executed,
        "windows": [w.to_dict(origin=start) for w in recorder.windows],
        "spans": work_spans,
        "maintenance": {
            "checks": scheduler.report.checks,
            "compaction_passes": scheduler.report.compaction_passes,
            "rows_reclaimed": scheduler.report.rows_reclaimed,
            "rebalances": scheduler.report.rebalances,
            "rows_migrated": scheduler.report.rows_migrated,
            "seconds": scheduler.report.seconds,
        },
        "config": {
            "n_objects": int(ds.store.n),
            "n_shards": int(engine.n_shards),
            "check_every": policy.check_every,
            "dead_fraction": policy.dead_fraction,
            "max_balance": policy.max_balance,
            "query_batch": QUERY_BATCH,
            "slow_query_threshold_ms": scale.soak_slow_ms,
        },
        "slow_queries": [e.to_dict() for e in top_slow],
        "chaos": {
            "enabled": chaos,
            "replication": (
                scale.soak_chaos_replication if chaos else 1
            ),
            "kills": chaos_state["kills"],
            "recoveries": scheduler.report.replicas_recovered,
            "verified_queries": chaos_state["verified"],
            "mismatches": chaos_state["mismatches"],
            "replica_events": replica_events,
        },
        "events": {
            "emitted": events.emitted,
            "dropped": events.dropped,
            "slow_query_threshold_ms": scale.soak_slow_ms,
        },
        # Headline metrics the regression gate compares run-over-run
        # (all latencies: lower is better).
        "headline": {
            "query_p50_ms": qh_total.percentile(50) * 1e3,
            "query_p99_ms": qh_total.percentile(99) * 1e3,
            "worst_window_p99_ms": (
                max(p99 for _, p99 in windowed_p99) * 1e3
                if windowed_p99
                else 0.0
            ),
            "ops_per_second": executed / elapsed if elapsed else 0.0,
        },
    }
    return report
