"""Report rendering and persistence for experiments.

Every experiment produces an :class:`ExperimentReport`: a set of titled
tables (the "rows/series the paper reports") plus free-form notes that
state the expected shape from the paper next to the measured outcome,
and an optional machine-readable ``metrics`` payload (time-series
windows, span attributions) for experiments that produce more than
tables.

Reports render to plain text for humans *and* persist to
``BENCH_<verb>.json`` files under a shared schema
(:data:`BENCH_SCHEMA`, documented in docs/OBSERVABILITY.md), so every
bench run leaves a perf-trajectory data point behind instead of
vanishing into a CI log.  :func:`validate_bench_json` is the single
gatekeeper — the CLI's ``report`` verb and CI both use it.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

#: Schema identifier stamped into every persisted bench result.
BENCH_SCHEMA = "repro-bench/1"

#: Filename pattern for persisted results (``verb`` is the experiment id).
BENCH_FILENAME = "BENCH_{verb}.json"


@dataclass
class Table:
    """One printable table."""

    title: str
    headers: list[str]
    rows: list[list[str]]


@dataclass
class ExperimentReport:
    """Everything an experiment run produced."""

    experiment: str
    description: str
    tables: list[Table] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: Machine-readable payload persisted verbatim into the JSON result
    #: (must be JSON-serializable).  The soak experiment puts its
    #: windowed histograms and span attributions here.
    metrics: dict = field(default_factory=dict)

    def add_table(
        self, title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]
    ) -> None:
        """Append a table, stringifying all cells."""
        self.tables.append(
            Table(title, [str(h) for h in headers], [[_fmt(c) for c in r] for r in rows])
        )

    def add_note(self, note: str) -> None:
        """Append a free-form observation line."""
        self.notes.append(note)

    def render(self) -> str:
        """Render the full report as plain text."""
        out: list[str] = []
        bar = "=" * 72
        out.append(bar)
        out.append(f"{self.experiment}: {self.description}")
        out.append(bar)
        for table in self.tables:
            out.append("")
            out.append(f"-- {table.title}")
            out.append(render_table(table.headers, table.rows))
        if self.notes:
            out.append("")
            for note in self.notes:
                out.append(f"* {note}")
        out.append("")
        return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 1:
            return f"{cell:.3f}"
        return f"{cell:.5f}"
    return str(cell)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Fixed-width ASCII table."""
    cols = len(headers)
    widths = [len(h) for h in headers]
    for row in rows:
        for i in range(cols):
            widths[i] = max(widths[i], len(row[i]) if i < len(row) else 0)

    def line(cells: Sequence[str]) -> str:
        return "  ".join(
            str(cells[i]).rjust(widths[i]) if i else str(cells[i]).ljust(widths[i])
            for i in range(cols)
        )

    sep = "  ".join("-" * w for w in widths)
    body = [line(headers), sep]
    body.extend(line(r) for r in rows)
    return "\n".join(body)


# ---------------------------------------------------------------------------
# Persistence: BENCH_<verb>.json under the repro-bench/1 schema
# ---------------------------------------------------------------------------

def to_json_dict(
    report: ExperimentReport, scale: str, elapsed_seconds: float
) -> dict:
    """The ``repro-bench/1`` document for one experiment run."""
    return {
        "schema": BENCH_SCHEMA,
        "verb": report.experiment,
        "scale": scale,
        "created_unix": time.time(),
        "elapsed_seconds": float(elapsed_seconds),
        "description": report.description,
        "tables": [
            {"title": t.title, "headers": list(t.headers), "rows": [list(r) for r in t.rows]}
            for t in report.tables
        ],
        "notes": list(report.notes),
        "metrics": report.metrics,
    }


def write_bench_json(
    report: ExperimentReport,
    directory: str | Path,
    scale: str,
    elapsed_seconds: float,
) -> Path:
    """Persist one run as ``<directory>/BENCH_<verb>.json`` (overwrite).

    The document is validated before writing — a bench verb that would
    persist a malformed trajectory point fails at the source, not in CI.
    """
    doc = to_json_dict(report, scale, elapsed_seconds)
    problems = validate_bench_json(doc)
    if problems:
        raise ValueError(
            f"refusing to persist invalid bench result: {'; '.join(problems)}"
        )
    path = Path(directory) / BENCH_FILENAME.format(verb=report.experiment)
    path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return path


def validate_bench_json(doc: object) -> list[str]:
    """Check a document against the ``repro-bench/1`` schema.

    Returns a list of human-readable problems (empty = valid).  Soak
    results get extra scrutiny: a trajectory point without time windows
    or span attributions is useless to the next reader, so the schema
    requires at least 3 windowed snapshots and a span list.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"document is {type(doc).__name__}, expected object"]
    if doc.get("schema") != BENCH_SCHEMA:
        problems.append(
            f"schema is {doc.get('schema')!r}, expected {BENCH_SCHEMA!r}"
        )
    for key, kind in (
        ("verb", str),
        ("scale", str),
        ("description", str),
        ("created_unix", (int, float)),
        ("elapsed_seconds", (int, float)),
        ("tables", list),
        ("notes", list),
        ("metrics", dict),
    ):
        if not isinstance(doc.get(key), kind):
            problems.append(f"field {key!r} missing or not {kind}")
    if problems:
        return problems
    if not doc["verb"]:
        problems.append("field 'verb' is empty")
    if doc["elapsed_seconds"] < 0:
        problems.append("field 'elapsed_seconds' is negative")
    for i, table in enumerate(doc["tables"]):
        where = f"tables[{i}]"
        if not isinstance(table, dict):
            problems.append(f"{where} is not an object")
            continue
        headers = table.get("headers")
        if not isinstance(table.get("title"), str):
            problems.append(f"{where}.title missing or not a string")
        if not isinstance(headers, list) or not headers:
            problems.append(f"{where}.headers missing or empty")
            continue
        rows = table.get("rows")
        if not isinstance(rows, list):
            problems.append(f"{where}.rows missing or not a list")
            continue
        for j, row in enumerate(rows):
            if not isinstance(row, list) or len(row) != len(headers):
                problems.append(
                    f"{where}.rows[{j}] does not match the header width"
                )
    if not all(isinstance(n, str) for n in doc["notes"]):
        problems.append("field 'notes' must contain only strings")
    if doc["verb"] == "soak":
        windows = doc["metrics"].get("windows")
        if not isinstance(windows, list) or len(windows) < 3:
            problems.append(
                "soak metrics must contain >= 3 time-windowed snapshots"
            )
        else:
            for i, w in enumerate(windows):
                if not isinstance(w, dict) or not {
                    "start", "end", "histograms", "counters"
                } <= set(w):
                    problems.append(f"metrics.windows[{i}] is malformed")
        if not isinstance(doc["metrics"].get("spans"), list):
            problems.append("soak metrics must contain a 'spans' list")
    return problems


def load_bench_files(directory: str | Path) -> list[tuple[Path, object]]:
    """All ``BENCH_*.json`` files in ``directory`` with parsed contents.

    Unparseable files are returned with the raw decode error string in
    place of a document so the caller can report them as invalid rather
    than crash.
    """
    out: list[tuple[Path, object]] = []
    for path in sorted(Path(directory).glob("BENCH_*.json")):
        try:
            out.append((path, json.loads(path.read_text(encoding="utf-8"))))
        except (OSError, json.JSONDecodeError) as exc:
            out.append((path, f"unreadable: {exc}"))
    return out


def render_trajectory(docs: Sequence[dict]) -> str:
    """Summarize persisted bench results (the ``report`` verb's output).

    One row per result: verb, scale, age, runtime, headline size —
    enough to see at a glance which trajectory points exist and when
    they were taken.  Soak results additionally surface their worst-
    window p99 and slowest maintenance span.
    """
    now = time.time()
    rows: list[list[str]] = []
    soak_notes: list[str] = []
    for doc in sorted(docs, key=lambda d: d.get("created_unix", 0.0)):
        age_h = (now - doc["created_unix"]) / 3600.0
        rows.append(
            [
                doc["verb"],
                doc["scale"],
                f"{age_h:.1f}h ago",
                f"{doc['elapsed_seconds']:.1f}s",
                str(len(doc["tables"])),
                str(len(doc["metrics"].get("windows", []))),
            ]
        )
        if doc["verb"] == "soak":
            windows = doc["metrics"].get("windows", [])
            p99s = [
                w["histograms"]["query.seconds"]["p99"]
                for w in windows
                if w.get("histograms", {}).get("query.seconds", {}).get("count")
            ]
            if p99s:
                soak_notes.append(
                    f"soak ({doc['scale']}): query p99 per window "
                    f"{min(p99s) * 1e3:.2f}..{max(p99s) * 1e3:.2f} ms "
                    f"across {len(windows)} windows"
                )
            spans = doc["metrics"].get("spans", [])
            if spans:
                worst = max(spans, key=lambda s: s.get("seconds", 0.0))
                soak_notes.append(
                    f"soak ({doc['scale']}): slowest maintenance span "
                    f"{worst['name']} at {worst['seconds'] * 1e3:.2f} ms "
                    f"in window {worst.get('window', '?')}"
                )
    report = ExperimentReport(
        "report", "perf trajectory from persisted BENCH_*.json results"
    )
    report.add_table(
        "trajectory",
        ["verb", "scale", "age", "runtime", "tables", "windows"],
        rows,
    )
    for note in soak_notes:
        report.add_note(note)
    if not rows:
        report.add_note("no BENCH_*.json files found — run some bench verbs first")
    return report.render()
