"""Plain-text report rendering for experiments.

Every experiment produces an :class:`ExperimentReport`: a set of titled
tables (the "rows/series the paper reports") plus free-form notes that
state the expected shape from the paper next to the measured outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class Table:
    """One printable table."""

    title: str
    headers: list[str]
    rows: list[list[str]]


@dataclass
class ExperimentReport:
    """Everything an experiment run produced."""

    experiment: str
    description: str
    tables: list[Table] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_table(
        self, title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]
    ) -> None:
        """Append a table, stringifying all cells."""
        self.tables.append(
            Table(title, [str(h) for h in headers], [[_fmt(c) for c in r] for r in rows])
        )

    def add_note(self, note: str) -> None:
        """Append a free-form observation line."""
        self.notes.append(note)

    def render(self) -> str:
        """Render the full report as plain text."""
        out: list[str] = []
        bar = "=" * 72
        out.append(bar)
        out.append(f"{self.experiment}: {self.description}")
        out.append(bar)
        for table in self.tables:
            out.append("")
            out.append(f"-- {table.title}")
            out.append(render_table(table.headers, table.rows))
        if self.notes:
            out.append("")
            for note in self.notes:
                out.append(f"* {note}")
        out.append("")
        return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 1:
            return f"{cell:.3f}"
        return f"{cell:.5f}"
    return str(cell)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Fixed-width ASCII table."""
    cols = len(headers)
    widths = [len(h) for h in headers]
    for row in rows:
        for i in range(cols):
            widths[i] = max(widths[i], len(row[i]) if i < len(row) else 0)

    def line(cells: Sequence[str]) -> str:
        return "  ".join(
            str(cells[i]).rjust(widths[i]) if i else str(cells[i]).ljust(widths[i])
            for i in range(cols)
        )

    sep = "  ".join("-" * w for w in widths)
    body = [line(headers), sep]
    body.extend(line(r) for r in rows)
    return "\n".join(body)
