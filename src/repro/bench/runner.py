"""Workload runner: per-query wall-clock timing plus work counters.

The paper's evaluation reports two time series per index (Figures 7–10):
individual query execution time ("convergence") and cumulative execution
time *including the static build step*.  :func:`run_workload` produces
both, along with per-query deltas of the machine-independent counters
(cracks, rows moved, objects tested) so reports can show *why* a curve
behaves the way it does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.index.base import SpatialIndex
from repro.queries.query import as_query
from repro.queries.range_query import RangeQuery


@dataclass(frozen=True)
class QueryTiming:
    """Measurements for one executed query."""

    seq: int
    seconds: float
    results: int
    objects_tested: int
    cracks: int
    rows_reorganized: int


@dataclass
class RunResult:
    """A full workload execution for one index.

    Attributes
    ----------
    name:
        Index display name.
    build_seconds:
        Static pre-processing wall-clock time (0 for incremental indexes).
    timings:
        One :class:`QueryTiming` per executed query, in order.
    build_work:
        Rows processed by the build step (machine-independent cost).
    """

    name: str
    build_seconds: float
    timings: list[QueryTiming] = field(default_factory=list)
    build_work: int = 0

    @property
    def n_queries(self) -> int:
        """Number of executed queries."""
        return len(self.timings)

    def query_seconds(self) -> np.ndarray:
        """Per-query wall-clock seconds (the convergence series)."""
        return np.array([t.seconds for t in self.timings], dtype=np.float64)

    def cumulative_seconds(self, include_build: bool = True) -> np.ndarray:
        """Cumulative seconds after each query (the cumulative series)."""
        base = self.build_seconds if include_build else 0.0
        return base + np.cumsum(self.query_seconds())

    def total_seconds(self, include_build: bool = True) -> float:
        """Total time for the whole run."""
        if not self.timings:
            return self.build_seconds if include_build else 0.0
        return float(self.cumulative_seconds(include_build)[-1])

    def first_answer_seconds(self) -> float:
        """Data-to-insight time: build plus the first query."""
        first = self.timings[0].seconds if self.timings else 0.0
        return self.build_seconds + first

    def tail_mean_seconds(self, tail: int = 100) -> float:
        """Mean per-query seconds over the last ``tail`` queries
        (converged performance)."""
        if not self.timings:
            return 0.0
        return float(self.query_seconds()[-tail:].mean())

    def total_objects_tested(self) -> int:
        """Sum of candidate objects tested across all queries."""
        return sum(t.objects_tested for t in self.timings)

    def queries_with_reorganization(self) -> int:
        """How many queries physically moved data (incremental cost)."""
        return sum(1 for t in self.timings if t.rows_reorganized > 0)

    def query_work(self) -> np.ndarray:
        """Per-query rows touched (tested + moved) — the uniform cost model."""
        return np.array(
            [t.objects_tested + t.rows_reorganized for t in self.timings],
            dtype=np.int64,
        )

    def cumulative_work(self, include_build: bool = True) -> np.ndarray:
        """Cumulative rows touched after each query, optionally including
        build work.  Machine-independent analogue of
        :meth:`cumulative_seconds`, immune to the Python-vs-C++ constant
        factors discussed in EXPERIMENTS.md."""
        base = self.build_work if include_build else 0
        return base + np.cumsum(self.query_work())

    def total_work(self, include_build: bool = True) -> int:
        """Total rows touched for the whole run."""
        if not self.timings:
            return self.build_work if include_build else 0
        return int(self.cumulative_work(include_build)[-1])


def run_workload(
    index: SpatialIndex,
    queries: list[RangeQuery],
    build: bool = True,
) -> RunResult:
    """Build (optionally) then execute every query, timing each step.

    Counter deltas are taken around each query so the per-query numbers are
    self-contained even though :class:`IndexStats` accumulates globally.
    """
    build_seconds = 0.0
    if build and not index.is_built:
        t0 = time.perf_counter()
        index.build()
        build_seconds = time.perf_counter() - t0
    result = RunResult(
        name=index.name,
        build_seconds=build_seconds,
        build_work=index.build_work,
    )
    for q in queries:
        # The first-class API carries the per-query counter delta and
        # timing itself; the harness just records them.  (Sharded
        # engines report fleet work through the same delta after their
        # post-query roll-up.)
        res = index.execute(as_query(q))
        result.timings.append(
            QueryTiming(
                seq=q.seq,
                seconds=res.seconds,
                results=res.count,
                objects_tested=res.stats.objects_tested,
                cracks=res.stats.cracks,
                rows_reorganized=res.stats.rows_reorganized,
            )
        )
    return result
