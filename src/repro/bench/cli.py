"""Command-line entry point: ``quasii-bench`` / ``repro-bench`` /
``python -m repro.bench``.

Examples::

    quasii-bench headline                 # the paper's headline numbers
    quasii-bench fig7 fig8 --scale smoke  # quick versions of two figures
    quasii-bench query-api                # batch vs loop, predicates, count-only
    quasii-bench shard-scaling            # sharded serving engine sweep
    quasii-bench mixed-workload           # update subsystem, incl. sharded
    quasii-bench compaction               # reclaim tombstoned rows: before/after
    quasii-bench rebalance                # shard rebalancing vs static STR
    quasii-bench soak --smoke             # latency-over-time serving soak
    quasii-bench soak --smoke --serve-metrics 9464  # + live /metrics endpoint
    quasii-bench soak --smoke --chaos     # + replica kills, oracle-verified
    quasii-bench replication --smoke      # replicated serving + mid-run kill
    quasii-bench report                   # trajectory from saved BENCH_*.json
    quasii-bench diff --json-out bench-results      # regression gate vs baseline
    quasii-bench all --scale small        # every figure at default scale

Every run persists its result as ``BENCH_<verb>.json`` (schema
``repro-bench/1``; see docs/OBSERVABILITY.md) into ``--json-out``,
which defaults to the repository root — so each bench invocation leaves
a perf-trajectory data point the ``report`` verb (and the next reader)
can pick up.  Experiment ids, their tables, and the meaning of each
reported metric are documented in docs/BENCH.md.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.bench.experiments import EXPERIMENTS, SCALES, run_experiment
from repro.bench.regression import DEFAULT_TOLERANCE, run_diff
from repro.bench.reporting import (
    load_bench_files,
    render_trajectory,
    validate_bench_json,
    write_bench_json,
)

#: CLI verbs that are not experiments (check_docs allows these in the
#: BENCH.md verb table alongside EXPERIMENTS and SCALES).
EXTRA_VERBS: dict[str, str] = {
    "report": "render a perf-trajectory summary from saved BENCH_*.json files",
    "diff": (
        "compare headline metrics in --json-out against a baseline "
        "directory; non-zero exit on regression past --tolerance"
    ),
}


def default_json_dir() -> Path:
    """The repository root (nearest ancestor with a pyproject.toml).

    Falls back to the current directory when run outside a checkout
    (e.g. from an installed wheel).
    """
    here = Path.cwd().resolve()
    for candidate in (here, *here.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return here


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="quasii-bench",
        description=(
            "Regenerate the tables/figures of 'QUASII: QUery-Aware Spatial "
            "Incremental Index' (EDBT 2018) on scaled-down workloads."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=(
            "experiment ids ('all' for everything, 'report' for a "
            "trajectory summary of saved results): "
            + ", ".join(sorted(EXPERIMENTS))
        ),
    )
    parser.add_argument(
        "--scale",
        default="small",
        choices=sorted(SCALES),
        help="workload size preset (default: small)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="shorthand for --scale smoke",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="also append the rendered reports to this file",
    )
    parser.add_argument(
        "--json-out",
        default=None,
        metavar="DIR",
        help=(
            "directory for persisted BENCH_<verb>.json results "
            "(default: the repository root)"
        ),
    )
    parser.add_argument(
        "--serve-metrics",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "soak only: serve live /metrics, /snapshot.json, /spans, "
            "/events, /healthz on this port for the duration of the run "
            "(0 = ephemeral)"
        ),
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help=(
            "soak only: serve from replicated shards, kill a replica every "
            "scale.soak_chaos_every ops (self-healing by ledger replay), "
            "and verify every query against a Scan oracle"
        ),
    )
    diff_group = parser.add_argument_group("diff verb")
    diff_group.add_argument(
        "--baseline",
        default=None,
        metavar="DIR",
        help=(
            "baseline directory of BENCH_*.json files for 'diff' "
            "(default: the repository root — the committed trajectory)"
        ),
    )
    diff_group.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=(
            "relative headline-metric regression that counts as a breach "
            f"(default: {DEFAULT_TOLERANCE})"
        ),
    )
    diff_group.add_argument(
        "--noise-floor",
        type=float,
        default=1.0,
        metavar="SCALE",
        help=(
            "multiplier on the per-metric absolute noise floors "
            "(0 disables absolute gating; default: 1.0)"
        ),
    )
    diff_group.add_argument(
        "--warn-only",
        action="store_true",
        help="print the drift table but exit 0 even on breaches",
    )
    diff_group.add_argument(
        "--drift-out",
        default=None,
        metavar="FILE",
        help="also write the rendered drift table to this file",
    )
    return parser


def run_report_verb(json_dir: Path) -> int:
    """Validate and summarize every ``BENCH_*.json`` in ``json_dir``.

    Prints the trajectory summary; returns 1 when any file fails schema
    validation (CI uses this as the gate), 0 otherwise.
    """
    loaded = load_bench_files(json_dir)
    invalid = 0
    docs = []
    for path, doc in loaded:
        problems = (
            [doc] if isinstance(doc, str) else validate_bench_json(doc)
        )
        if problems:
            invalid += 1
            for problem in problems:
                print(f"{path.name}: {problem}", file=sys.stderr)
        else:
            docs.append(doc)
    print(render_trajectory(docs))
    if invalid:
        print(
            f"report: {invalid} of {len(loaded)} result file(s) failed "
            "schema validation",
            file=sys.stderr,
        )
        return 1
    print(f"[report over {len(docs)} result file(s) in {json_dir}]")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    scale = "smoke" if args.smoke else args.scale
    requested = list(args.experiments)
    want_report = "report" in requested
    want_diff = "diff" in requested
    requested = [n for n in requested if n not in EXTRA_VERBS]
    names = list(EXPERIMENTS) if "all" in requested else requested
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(
            "available: "
            + ", ".join(sorted([*EXPERIMENTS, *EXTRA_VERBS])),
            file=sys.stderr,
        )
        return 2
    json_dir = (
        Path(args.json_out) if args.json_out else default_json_dir()
    )
    json_dir.mkdir(parents=True, exist_ok=True)
    chunks: list[str] = []
    for name in names:
        # Per-verb extras ride through run_experiment's kwargs; only the
        # soak knows how to serve live metrics mid-run or inject chaos.
        kwargs: dict = {}
        if name == "soak":
            if args.serve_metrics is not None:
                kwargs["serve_metrics"] = args.serve_metrics
            if args.chaos:
                kwargs["chaos"] = True
        t0 = time.perf_counter()
        report = run_experiment(name, scale, **kwargs)
        elapsed = time.perf_counter() - t0
        text = report.render()
        chunks.append(text)
        print(text)
        json_path = write_bench_json(report, json_dir, scale, elapsed)
        print(
            f"[{name} completed in {elapsed:.1f}s at scale '{scale}' "
            f"-> {json_path}]\n"
        )
    if args.output:
        with open(args.output, "a", encoding="utf-8") as fh:
            fh.write("\n".join(chunks))
            fh.write("\n")
    status = 0
    if want_report:
        status = run_report_verb(json_dir)
    if want_diff:
        baseline_dir = (
            Path(args.baseline) if args.baseline else default_json_dir()
        )
        diff_status = run_diff(
            baseline_dir,
            json_dir,
            tolerance=args.tolerance,
            noise_scale=args.noise_floor,
            warn_only=args.warn_only,
            out_file=args.drift_out,
        )
        status = status or diff_status
    return status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
