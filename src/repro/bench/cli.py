"""Command-line entry point: ``quasii-bench`` / ``python -m repro.bench``.

Examples::

    quasii-bench headline                 # the paper's headline numbers
    quasii-bench fig7 fig8 --scale smoke  # quick versions of two figures
    quasii-bench query-api                # batch vs loop, predicates, count-only
    quasii-bench shard-scaling            # sharded serving engine sweep
    quasii-bench mixed-workload           # update subsystem, incl. sharded
    quasii-bench compaction               # reclaim tombstoned rows: before/after
    quasii-bench rebalance                # shard rebalancing vs static STR
    quasii-bench all --scale small        # every figure at default scale

Every experiment id, its tables, and the meaning of each reported
metric are documented in docs/BENCH.md.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.experiments import EXPERIMENTS, SCALES, run_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="quasii-bench",
        description=(
            "Regenerate the tables/figures of 'QUASII: QUery-Aware Spatial "
            "Incremental Index' (EDBT 2018) on scaled-down workloads."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=(
            "experiment ids ('all' for everything): "
            + ", ".join(sorted(EXPERIMENTS))
        ),
    )
    parser.add_argument(
        "--scale",
        default="small",
        choices=sorted(SCALES),
        help="workload size preset (default: small)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="also append the rendered reports to this file",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    names = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2
    chunks: list[str] = []
    for name in names:
        t0 = time.perf_counter()
        report = run_experiment(name, args.scale)
        elapsed = time.perf_counter() - t0
        text = report.render()
        chunks.append(text)
        print(text)
        print(f"[{name} completed in {elapsed:.1f}s at scale '{args.scale}']\n")
    if args.output:
        with open(args.output, "a", encoding="utf-8") as fh:
            fh.write("\n".join(chunks))
            fh.write("\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
