"""Benchmark harness: regenerates every figure of the paper's evaluation."""

from repro.bench.experiments import EXPERIMENTS, SCALES, Scale, run_experiment
from repro.bench.metrics import (
    break_even_query,
    converged_slowdown,
    cumulative_ratio,
    data_to_insight_factor,
    speedup_tail,
)
from repro.bench.reporting import (
    BENCH_SCHEMA,
    ExperimentReport,
    load_bench_files,
    render_trajectory,
    to_json_dict,
    validate_bench_json,
    write_bench_json,
)
from repro.bench.runner import QueryTiming, RunResult, run_workload
from repro.bench.soak import soak_experiment

__all__ = [
    "BENCH_SCHEMA",
    "EXPERIMENTS",
    "ExperimentReport",
    "QueryTiming",
    "RunResult",
    "SCALES",
    "Scale",
    "break_even_query",
    "converged_slowdown",
    "cumulative_ratio",
    "data_to_insight_factor",
    "load_bench_files",
    "render_trajectory",
    "run_experiment",
    "run_workload",
    "soak_experiment",
    "speedup_tail",
    "to_json_dict",
    "validate_bench_json",
    "write_bench_json",
]
