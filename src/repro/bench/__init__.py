"""Benchmark harness: regenerates every figure of the paper's evaluation."""

from repro.bench.experiments import EXPERIMENTS, SCALES, Scale, run_experiment
from repro.bench.metrics import (
    break_even_query,
    converged_slowdown,
    cumulative_ratio,
    data_to_insight_factor,
    speedup_tail,
)
from repro.bench.reporting import ExperimentReport
from repro.bench.runner import QueryTiming, RunResult, run_workload

__all__ = [
    "EXPERIMENTS",
    "ExperimentReport",
    "QueryTiming",
    "RunResult",
    "SCALES",
    "Scale",
    "break_even_query",
    "converged_slowdown",
    "cumulative_ratio",
    "data_to_insight_factor",
    "run_experiment",
    "run_workload",
    "speedup_tail",
]
