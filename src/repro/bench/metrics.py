"""Derived metrics matching the paper's evaluation vocabulary.

* **data-to-insight time** — time until the *first* query is answered,
  including any build step (the paper's headline 11.4x reduction);
* **break-even point** — the query index at which an incremental index's
  cumulative time first exceeds its static counterpart's (SFCracker: ~13,
  Mosaic: ~100, QUASII: never in the paper's runs);
* **convergence** — ratio of converged per-query time to the static
  index's per-query time (QUASII reaches ~1x of the R-Tree).
"""

from __future__ import annotations

import numpy as np

from repro.bench.runner import RunResult


def data_to_insight_factor(incremental: RunResult, static: RunResult) -> float:
    """How much faster the first answer arrives with the incremental index.

    ``> 1`` means the incremental index answered its first query sooner
    than the static one finished building + answering its first query.
    """
    inc = incremental.first_answer_seconds()
    if inc <= 0:
        return float("inf")
    return static.first_answer_seconds() / inc


def break_even_query(incremental: RunResult, static: RunResult) -> int | None:
    """First 1-based query index where the incremental cumulative time
    exceeds the static one (build included), or None if it never does."""
    n = min(incremental.n_queries, static.n_queries)
    inc = incremental.cumulative_seconds()[:n]
    sta = static.cumulative_seconds()[:n]
    above = np.flatnonzero(inc > sta)
    if above.size == 0:
        return None
    return int(above[0]) + 1


def cumulative_ratio(incremental: RunResult, static: RunResult) -> float:
    """Incremental total time as a fraction of the static total time."""
    sta = static.total_seconds()
    if sta <= 0:
        return float("inf")
    return incremental.total_seconds() / sta


def work_break_even_query(incremental: RunResult, static: RunResult) -> int | None:
    """Break-even in the uniform work model (rows touched), or None.

    Machine-independent counterpart of :func:`break_even_query` — this is
    the comparison that transfers directly to the paper's C++ setting,
    because it is immune to the NumPy-vs-interpreter constant factors that
    skew small-scale wall-clock numbers (see EXPERIMENTS.md).
    """
    n = min(incremental.n_queries, static.n_queries)
    inc = incremental.cumulative_work()[:n]
    sta = static.cumulative_work()[:n]
    above = np.flatnonzero(inc > sta)
    if above.size == 0:
        return None
    return int(above[0]) + 1


def work_ratio(incremental: RunResult, static: RunResult) -> float:
    """Total rows touched by the incremental index relative to the static
    one (build included)."""
    sta = static.total_work()
    if sta <= 0:
        return float("inf")
    return incremental.total_work() / sta


def work_insight_factor(incremental: RunResult, static: RunResult) -> float:
    """Data-to-insight factor in the uniform work model: rows the static
    index touches before its first answer relative to the incremental."""
    inc = incremental.build_work + (
        incremental.query_work()[0] if incremental.timings else 0
    )
    if inc <= 0:
        return float("inf")
    sta = static.build_work + (static.query_work()[0] if static.timings else 0)
    return sta / inc


def converged_slowdown(
    incremental: RunResult, static: RunResult, tail: int = 100
) -> float:
    """Tail-mean per-query time of the incremental index relative to the
    static one (1.0 = parity, the paper's convergence goal)."""
    sta = static.tail_mean_seconds(tail)
    if sta <= 0:
        return float("inf")
    return incremental.tail_mean_seconds(tail) / sta


def speedup_tail(slow: RunResult, fast: RunResult, tail: int = 100) -> float:
    """Tail-mean speedup of ``fast`` over ``slow`` (the paper's 3.68x /
    4.9x comparative numbers)."""
    f = fast.tail_mean_seconds(tail)
    if f <= 0:
        return float("inf")
    return slow.tail_mean_seconds(tail) / f


def sample_indices(n: int, points: int = 15) -> list[int]:
    """Roughly geometric sample of query indices for printing series."""
    if n <= 0:
        return []
    if n <= points:
        return list(range(n))
    picks = np.unique(
        np.round(np.geomspace(1, n, points)).astype(int) - 1
    )
    return [int(p) for p in picks]


def smoothed_series(values: np.ndarray, index: int, window: int = 5) -> float:
    """Mean of ``values`` in a small window around ``index`` (stabilizes
    per-query series the way the paper's log-scale plots do visually)."""
    lo = max(0, index - window // 2)
    hi = min(len(values), index + window // 2 + 1)
    return float(values[lo:hi].mean())
