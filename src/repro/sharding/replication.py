"""Replicated shard serving: R replicas per shard, faults, ledger recovery.

QUASII's splitting fixes *data* hotspots; this module addresses the
*traffic* hotspot splitting cannot fix (ROADMAP open item 2, the LiLIS
framing): when queries concentrate on one tile, splitting it just moves
the load, but serving the tile from R independent replicas divides it.

Three pieces, each a first-class object rather than a monkeypatch:

* :class:`ReplicaSet` — R replicas of one shard, each a private
  :class:`~repro.datasets.store.BoxStore` plus its own index (replicas
  crack independently, so their physical layouts diverge while their
  live ``(id, box)`` multisets stay identical).  Reads route to the
  least-loaded live replica (automatic failover: dead replicas are
  never picked); writes apply to every live replica *through* the
  per-shard :class:`~repro.updates.ledger.UpdateLedger`, which doubles
  as the replication stream.  A dead replica recovers by replaying the
  ledger into a fresh store (:meth:`ReplicaSet.recover`) and is proven
  identical to its peers by the order-insensitive
  ``BoxStore.live_fingerprint`` plus ``UpdateLedger.assert_matches``.
* :class:`FaultInjector` — a deterministic, seed-driven failure
  schedule: kill/stall/slow a chosen replica at a chosen operation
  count.  It is ticked on the engine's routing path (exactly once per
  query or update, on the coordinating thread), so the same seed always
  produces the same failure interleaving — failures are test *inputs*.
* :class:`ReplicatedShardedIndex` — the :class:`ShardedIndex` engine
  with every shard replaced by a :class:`ReplicatedShard`.  The whole
  :class:`~repro.index.base.MutableSpatialIndex` contract (queries,
  routed updates, compaction, rebalancing, migration) is preserved; the
  executor's shard affinity extends to replicas because the serving
  replica is picked once per shard per batch
  (:meth:`ReplicatedShard.serving_index`), keeping every incremental
  index single-threaded.

The ledger-as-replication-stream invariant: every applied write is
recorded in the shard's ledger *before* it reaches any replica, so the
ledger's base snapshot plus its op log is always a superset-in-time of
any replica's state, and replay reconstructs exactly the live multiset
every live replica holds.  See docs/ARCHITECTURE.md (Replication).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.datasets.store import BoxStore
from repro.errors import ConfigurationError, DatasetError, ReplicationError
from repro.index.base import MutableSpatialIndex, SpatialIndex
from repro.queries.query import Query
from repro.queries.range_query import RangeQuery
from repro.sharding.shard import Shard
from repro.sharding.sharded_index import IndexFactory, ShardedIndex
from repro.telemetry.events import EventLog
from repro.updates.ledger import UpdateLedger

#: Fault actions the injector understands.
FAULT_ACTIONS = ("kill", "stall", "slow")

#: Builds (store, index) for one replica; the engine passes its own
#: factory-enforcing helper here so replicas and shards are built alike.
ReplicaFactory = Callable[[BoxStore], tuple[BoxStore, SpatialIndex]]


@dataclass(frozen=True)
class Fault:
    """One scheduled failure: *what* happens to *which* replica *when*.

    Attributes
    ----------
    at_op:
        Global engine operation count (queries + updates, 1-based) at
        which the fault fires.
    action:
        ``"kill"`` (dead until recovered), ``"stall"`` (excluded from
        read routing for ``duration`` routing decisions; still receives
        writes), or ``"slow"`` (a synthetic load multiplier, so
        least-loaded routing deprioritizes the replica without any
        wall-clock sleeping — determinism over realism).
    sid / rid:
        Target shard and replica.
    duration:
        Stall length, counted in routing decisions for the shard.
    factor:
        Slow-down multiplier applied to the replica's effective load.
    """

    at_op: int
    action: str
    sid: int
    rid: int
    duration: int = 4
    factor: float = 4.0

    def __post_init__(self) -> None:
        if self.action not in FAULT_ACTIONS:
            raise ConfigurationError(
                f"unknown fault action {self.action!r}; "
                f"expected one of {FAULT_ACTIONS}"
            )
        if self.at_op < 1:
            raise ConfigurationError(
                f"fault at_op must be >= 1, got {self.at_op}"
            )
        if self.duration < 0:
            raise ConfigurationError(
                f"fault duration must be >= 0, got {self.duration}"
            )
        if self.factor < 1.0:
            raise ConfigurationError(
                f"fault factor must be >= 1.0, got {self.factor}"
            )


class FaultInjector:
    """A deterministic failure schedule, ticked once per engine operation.

    The injector is pure clockwork: :meth:`advance` ticks the operation
    counter and returns the faults whose ``at_op`` has arrived.  It
    never touches the engine itself — the engine applies the returned
    faults — so the schedule is inspectable (:attr:`schedule`), the
    same instance replays identically after :meth:`reset`, and
    :meth:`random` builds the same schedule for the same seed.
    """

    def __init__(self, faults: Sequence[Fault] = ()) -> None:
        self._faults: tuple[Fault, ...] = tuple(
            sorted(faults, key=lambda f: f.at_op)
        )
        self._ops = 0
        self._cursor = 0

    @classmethod
    def random(
        cls,
        seed: int,
        n_faults: int,
        n_shards: int,
        replication: int,
        max_op: int,
        actions: Sequence[str] = FAULT_ACTIONS,
    ) -> FaultInjector:
        """A seed-driven schedule: same arguments, same faults, always."""
        if n_faults < 0:
            raise ConfigurationError(f"need n_faults >= 0, got {n_faults}")
        if max_op < 1:
            raise ConfigurationError(f"need max_op >= 1, got {max_op}")
        rng = np.random.default_rng(seed)
        faults = [
            Fault(
                at_op=int(rng.integers(1, max_op + 1)),
                action=str(rng.choice(list(actions))),
                sid=int(rng.integers(n_shards)),
                rid=int(rng.integers(replication)),
                duration=int(rng.integers(1, 9)),
                factor=float(rng.uniform(2.0, 8.0)),
            )
            for _ in range(n_faults)
        ]
        return cls(faults)

    @property
    def schedule(self) -> tuple[Fault, ...]:
        """The full fault schedule, ordered by firing op."""
        return self._faults

    @property
    def ops_seen(self) -> int:
        """Operations ticked so far."""
        return self._ops

    @property
    def exhausted(self) -> bool:
        """Whether every scheduled fault has fired."""
        return self._cursor >= len(self._faults)

    def advance(self) -> list[Fault]:
        """Advance the op clock by one; return the faults due now."""
        self._ops += 1
        due: list[Fault] = []
        while (
            self._cursor < len(self._faults)
            and self._faults[self._cursor].at_op <= self._ops
        ):
            due.append(self._faults[self._cursor])
            self._cursor += 1
        return due

    def reset(self) -> None:
        """Rewind the clock so the same schedule replays from op 1."""
        self._ops = 0
        self._cursor = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FaultInjector(n_faults={len(self._faults)}, ops={self._ops})"
        )


class ShardReplica:
    """One replica of a shard: a private store+index plus health state.

    ``state`` is ``"live"`` or ``"dead"``; stall and slow are routing
    modifiers on a live replica, not states of their own (a stalled
    replica still applies writes, a slowed one still serves — just
    later in the least-loaded order).
    """

    __slots__ = (
        "rid",
        "store",
        "index",
        "state",
        "reads_served",
        "writes_applied",
        "stall_remaining",
        "slow_factor",
    )

    def __init__(self, rid: int, store: BoxStore, index: SpatialIndex) -> None:
        self.rid = rid
        self.store = store
        self.index = index
        self.state = "live"
        #: Read batches this replica served (the load measure routing
        #: minimizes; frozen while dead — the no-dead-reads invariant).
        self.reads_served = 0
        #: Write batches applied (ledger stream position, effectively).
        self.writes_applied = 0
        #: Routing decisions this replica still sits out (stall fault).
        self.stall_remaining = 0
        #: Synthetic load multiplier (slow fault; 1.0 = healthy).
        self.slow_factor = 1.0

    @property
    def alive(self) -> bool:
        return self.state == "live"

    def effective_load(self) -> float:
        """Reads served, scaled by the slow penalty (routing key)."""
        return (self.reads_served + 1) * self.slow_factor

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ShardReplica(rid={self.rid}, state={self.state!r}, "
            f"reads={self.reads_served}, writes={self.writes_applied})"
        )


class ReplicaSet:
    """R replicas of one shard behind least-loaded routing + the ledger.

    Parameters
    ----------
    sid:
        The owning shard id (event payloads and error messages).
    replicas:
        The initial replica fleet; all live, identical live multisets.
    ledger:
        The shard's replication stream: seeded from the initial rows,
        it records every write *before* replicas apply it and replays
        into a fresh store at recovery time.
    factory:
        Builds ``(store, index)`` over a recovered store — the engine's
        contract-enforcing ``_make_shard_index``.
    on_event:
        Optional callback ``(kind, **payload)`` for ``replica.*``
        telemetry events (the engine wires its event log here).
    """

    def __init__(
        self,
        sid: int,
        replicas: list[ShardReplica],
        ledger: UpdateLedger,
        factory: ReplicaFactory,
        on_event: Callable[..., object] | None = None,
    ) -> None:
        if not replicas:
            raise ConfigurationError("a replica set needs >= 1 replica")
        self.sid = sid
        self.replicas = replicas
        self.ledger = ledger
        self._factory = factory
        self._on_event = on_event

    def _emit(self, kind: str, **payload: object) -> None:
        if self._on_event is not None:
            self._on_event(kind, **payload)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def replication(self) -> int:
        """Configured replica count R."""
        return len(self.replicas)

    def live_replicas(self) -> list[ShardReplica]:
        """All live replicas, rid order."""
        return [r for r in self.replicas if r.alive]

    def dead_rids(self) -> list[int]:
        """Rids currently dead (recover targets)."""
        return [r.rid for r in self.replicas if not r.alive]

    def primary(self) -> ShardReplica | None:
        """The lowest-rid live replica (maintenance reads it), or None."""
        for r in self.replicas:
            if r.alive:
                return r
        return None

    # ------------------------------------------------------------------
    # Read routing
    # ------------------------------------------------------------------
    def pick(self) -> ShardReplica:
        """The least-loaded live replica for one read batch.

        Dead replicas are never candidates (automatic failover);
        stalled replicas sit out until their stall drains, unless every
        live replica is stalled — a stall delays, it must not fabricate
        an outage.  Raises :class:`ReplicationError` with zero live
        replicas instead of hanging or serving stale state.
        """
        live = self.live_replicas()
        if not live:
            raise ReplicationError(
                f"shard {self.sid}: all {self.replication} replicas are "
                "dead; recover via ledger replay before serving reads"
            )
        routable = [r for r in live if r.stall_remaining == 0]
        for r in live:
            if r.stall_remaining:
                r.stall_remaining -= 1
        pool = routable or live
        chosen = min(pool, key=lambda r: (r.effective_load(), r.rid))
        chosen.reads_served += 1
        return chosen

    # ------------------------------------------------------------------
    # Write application (the replication stream)
    # ------------------------------------------------------------------
    def apply_insert(
        self, lo: np.ndarray, hi: np.ndarray, ids: np.ndarray
    ) -> None:
        """Record the insert in the ledger, then apply to live replicas.

        Ledger-first ordering is the stream invariant: a replica killed
        between the record and its apply simply misses the write and
        recovers it at replay time.  Dead replicas receive nothing.
        """
        self.ledger.record_insert(lo, hi, ids)
        for r in self.replicas:
            if r.alive:
                r.index.insert(lo, hi, ids)
                r.writes_applied += 1

    def apply_delete(self, ids: np.ndarray) -> None:
        """Record the delete in the ledger, then apply to live replicas."""
        self.ledger.record_delete(ids)
        for r in self.replicas:
            if r.alive:
                r.index.delete(ids)
                r.writes_applied += 1

    # ------------------------------------------------------------------
    # Faults
    # ------------------------------------------------------------------
    def kill(self, rid: int) -> bool:
        """Mark a replica dead; no-op (False) if already dead."""
        r = self.replicas[rid]
        if not r.alive:
            return False
        r.state = "dead"
        self._emit("replica.kill", sid=self.sid, rid=rid)
        return True

    def stall(self, rid: int, duration: int) -> bool:
        """Exclude a live replica from routing for ``duration`` picks."""
        r = self.replicas[rid]
        if not r.alive:
            return False
        r.stall_remaining = max(r.stall_remaining, int(duration))
        self._emit(
            "replica.stall", sid=self.sid, rid=rid, duration=int(duration)
        )
        return True

    def slow(self, rid: int, factor: float) -> bool:
        """Scale a live replica's effective load by ``factor``."""
        r = self.replicas[rid]
        if not r.alive:
            return False
        r.slow_factor = max(r.slow_factor, float(factor))
        self._emit(
            "replica.slow", sid=self.sid, rid=rid, factor=float(factor)
        )
        return True

    # ------------------------------------------------------------------
    # Recovery: ledger replay into a fresh store
    # ------------------------------------------------------------------
    def recover(self, rid: int) -> ShardReplica:
        """Rebuild a dead replica from the ledger; prove it identical.

        Replays base snapshot + op log into a fresh store, asserts the
        result matches the ledger's live mirror, and fingerprint-checks
        it against a live peer (order-insensitive ``live_fingerprint``:
        peers crack independently, so physical layouts differ while the
        live multiset must not).  Live peers are flushed first so their
        buffered writes are physically comparable.  Once every replica
        is live again the ledger folds its log into the base snapshot
        (:meth:`UpdateLedger.truncate`), bounding future replays.
        Idempotent: recovering a live replica is a no-op.
        """
        target = self.replicas[rid]
        if target.alive:
            return target
        replayed = self.ledger.log_length
        for r in self.replicas:
            if r.alive and isinstance(r.index, MutableSpatialIndex):
                r.index.flush_updates()
        store = self.ledger.rebuild_store()
        self.ledger.assert_matches(store)
        peer = self.primary()
        if peer is not None and (
            peer.store.live_fingerprint() != store.live_fingerprint()
        ):
            raise ReplicationError(
                f"shard {self.sid}: recovered replica {rid} diverged from "
                f"live peer {peer.rid} (live fingerprints differ)"
            )
        shard_store, index = self._factory(store)
        index.build()
        fresh = ShardReplica(rid, shard_store, index)
        self.replicas[rid] = fresh
        if not self.dead_rids():
            self.ledger.truncate()
        self._emit(
            "replica.recover",
            sid=self.sid,
            rid=rid,
            replayed_ops=replayed,
            live_rows=shard_store.live_count,
        )
        return fresh

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        states = "".join(r.state[0] for r in self.replicas)
        return f"ReplicaSet(sid={self.sid}, replicas={states!r})"


class ReplicatedShard(Shard):
    """A :class:`Shard` whose reads fan across a :class:`ReplicaSet`.

    ``store``/``index`` always point at the current *primary* (lowest
    live rid), so every maintenance/rebalancing consumer of the plain
    shard contract keeps working unchanged; :meth:`serving_index`
    overrides the read seam to pick the least-loaded live replica.
    """

    __slots__ = ("replica_set",)

    def __init__(self, sid: int, replica_set: ReplicaSet) -> None:
        primary = replica_set.primary()
        if primary is None:
            raise ConfigurationError(
                f"shard {sid}: cannot construct with zero live replicas"
            )
        self.replica_set = replica_set
        super().__init__(sid, primary.store, primary.index)

    def serving_index(self) -> SpatialIndex:
        """The least-loaded live replica's index (failover routing)."""
        return self.replica_set.pick().index

    def work_counter(self, name: str) -> int:
        """Fleet work summed across *all* replicas (dead ones included:
        their pre-kill work already happened and must stay counted
        until recovery swaps the replica out)."""
        return sum(
            int(getattr(r.index.stats, name))
            for r in self.replica_set.replicas
        )

    def sync_primary(self) -> bool:
        """Re-point ``store``/``index`` at the current primary.

        Returns True (and emits ``replica.failover``) when the previous
        primary died and a live replica took over; re-pointing after a
        recovery (old primary still live) is silent — no failover
        happened, the read path never lost service.
        """
        rs = self.replica_set
        primary = rs.primary()
        if primary is None or primary.index is self.index:
            return False
        old = next(
            (r for r in rs.replicas if r.index is self.index), None
        )
        self.store = primary.store
        self.index = primary.index
        if old is None or not old.alive:
            rs._emit(
                "replica.failover",
                sid=self.sid,
                to_rid=primary.rid,
                from_rid=None if old is None else old.rid,
            )
            return True
        return False

    def memory_bytes(self) -> int:
        """Footprint across all replicas' stores and indexes."""
        total = 0
        for r in self.replica_set.replicas:
            total += int(
                r.store.lo.nbytes
                + r.store.hi.nbytes
                + r.store.ids.nbytes
                + r.store.live.nbytes
            ) + r.index.memory_bytes()
        return total

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ReplicatedShard(sid={self.sid}, n={self.store.n}, "
            f"replicas={self.replica_set.replication})"
        )


class ReplicatedShardedIndex(ShardedIndex):
    """A :class:`ShardedIndex` serving every shard from R replicas.

    Parameters
    ----------
    store, n_shards, partitioner, index_factory:
        As for :class:`ShardedIndex`; the factory builds *every*
        replica's index, so replicas are structurally homogeneous.
    replication:
        Replica count R per shard (R=1 degenerates to the base engine's
        behavior plus the ledger/recovery machinery).
    fault_injector:
        Optional :class:`FaultInjector`, ticked once per engine
        operation (query routing, insert, delete) on the coordinating
        thread; due faults are applied before the operation proceeds.
    events:
        Optional :class:`~repro.telemetry.events.EventLog` receiving
        the canonical ``replica.*`` events.
    """

    def __init__(
        self,
        store: BoxStore,
        n_shards: int = 4,
        replication: int = 2,
        partitioner: str = "str",
        index_factory: IndexFactory | None = None,
        fault_injector: FaultInjector | None = None,
        events: EventLog | None = None,
    ) -> None:
        super().__init__(
            store,
            n_shards=n_shards,
            partitioner=partitioner,
            index_factory=index_factory,
        )
        if replication < 1:
            raise ConfigurationError(
                f"need replication >= 1, got {replication}"
            )
        self._replication = int(replication)
        self._fault_injector = fault_injector
        self._events = events
        self.name = (
            f"Replicated[{self._partitioner.name}x{self._n_shards}"
            f"xR{self._replication}]"
        )

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    @property
    def replication_factor(self) -> int:
        """Replicas per shard (the rebalancer's skew gate reads this)."""
        return self._replication

    @property
    def fault_injector(self) -> FaultInjector | None:
        """The attached injector, if any."""
        return self._fault_injector

    def attach_fault_injector(self, injector: FaultInjector) -> None:
        """Attach (or replace) the failure schedule; the executor's
        ``fault_injector`` parameter lands here."""
        self._fault_injector = injector

    def attach_event_log(self, events: EventLog) -> None:
        """Attach an event log for ``replica.*`` events (keeps an
        already-attached log — the constructor wins over the executor)."""
        if self._events is None:
            self._events = events

    def _emit_replica_event(self, kind: str, **payload: object) -> None:
        if self._events is not None:
            self._events.emit(kind, **payload)

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def _build_one_replica(
        self,
        rid: int,
        lo: np.ndarray,
        hi: np.ndarray,
        ids: np.ndarray,
        via_insert: bool,
    ) -> ShardReplica:
        """One replica over a private copy of the rows.

        ``via_insert`` mirrors :meth:`ShardedIndex.rebuild_shard`: a
        mutable factory gets the start-empty/insert/flush path so the
        batch lands bulk-loaded instead of as one coarse slice.
        """
        if via_insert:
            d = self._store.ndim
            empty = np.empty((0, d), dtype=np.float64)
            shard_store, index = self._make_shard_index(
                BoxStore(empty, empty.copy())
            )
            if isinstance(index, MutableSpatialIndex):
                index.build()
                if ids.size:
                    index.insert(lo.copy(), hi.copy(), ids.copy())
                    index.flush_updates()
                return ShardReplica(rid, shard_store, index)
        shard_store, index = self._make_shard_index(
            BoxStore(lo.copy(), hi.copy(), ids.copy())
        )
        index.build()
        return ShardReplica(rid, shard_store, index)

    def _make_replicated_shard(
        self,
        sid: int,
        lo: np.ndarray,
        hi: np.ndarray,
        ids: np.ndarray,
        via_insert: bool = False,
    ) -> ReplicatedShard:
        replicas = [
            self._build_one_replica(rid, lo, hi, ids, via_insert)
            for rid in range(self._replication)
        ]
        ledger = UpdateLedger(replicas[0].store)
        replica_set = ReplicaSet(
            sid,
            replicas,
            ledger,
            factory=self._make_shard_index,
            on_event=self._emit_replica_event,
        )
        return ReplicatedShard(sid, replica_set)

    def build(self) -> None:
        """Partition the store and build R replicas per shard."""
        if self._built:
            return
        store = self._store
        rows = store.live_rows()
        owners = self._partitioner.assign(
            store.lo[rows], store.hi[rows], self._n_shards
        )
        for sid in range(self._n_shards):
            mine = rows[owners == sid]
            self._shards.append(
                self._make_replicated_shard(
                    sid,
                    store.lo[mine].copy(),
                    store.hi[mine].copy(),
                    store.ids[mine].copy(),
                )
            )
        copied = sum(s.store.n for s in self._shards)
        if copied != rows.size:
            raise ConfigurationError(
                f"partitioner {self._partitioner.name!r} assigned {copied} "
                f"of {rows.size} rows to shards 0..{self._n_shards - 1}"
            )
        ids = store.ids[rows]
        self._owner = dict(zip(ids.tolist(), owners.tolist()))
        self._seen_epoch = store.epoch
        self._built = True
        self.profile.rebaseline(self._shards)

    # ------------------------------------------------------------------
    # Fault seam: ticked on the routing path, applied on the coordinator
    # ------------------------------------------------------------------
    def _tick_faults(self) -> None:
        injector = self._fault_injector
        if injector is None or not self._built:
            return
        for fault in injector.advance():
            self.apply_fault(fault)

    def apply_fault(self, fault: Fault) -> bool:
        """Apply one fault now; returns whether it changed anything."""
        if not 0 <= fault.sid < self._n_shards:
            raise ConfigurationError(
                f"fault targets shard {fault.sid}; engine has "
                f"{self._n_shards} shards"
            )
        if not 0 <= fault.rid < self._replication:
            raise ConfigurationError(
                f"fault targets replica {fault.rid}; shards have "
                f"{self._replication} replicas"
            )
        if fault.action == "kill":
            return self.kill_replica(fault.sid, fault.rid)
        if fault.action == "stall":
            return self.stall_replica(fault.sid, fault.rid, fault.duration)
        return self.slow_replica(fault.sid, fault.rid, fault.factor)

    def _replicated(self, sid: int) -> ReplicatedShard:
        shard = self._shards[sid]
        assert isinstance(shard, ReplicatedShard)
        return shard

    def kill_replica(self, sid: int, rid: int) -> bool:
        """Kill one replica; promotes a new primary if needed."""
        shard = self._replicated(sid)
        changed = shard.replica_set.kill(rid)
        if changed:
            shard.sync_primary()
        return changed

    def stall_replica(self, sid: int, rid: int, duration: int) -> bool:
        """Stall one replica out of read routing for ``duration`` picks."""
        return self._replicated(sid).replica_set.stall(rid, duration)

    def slow_replica(self, sid: int, rid: int, factor: float) -> bool:
        """Scale one replica's effective load by ``factor``."""
        return self._replicated(sid).replica_set.slow(rid, factor)

    def dead_replicas(self) -> list[tuple[int, int]]:
        """All currently-dead ``(sid, rid)`` pairs."""
        out = []
        for shard in self._shards:
            if isinstance(shard, ReplicatedShard):
                out.extend(
                    (shard.sid, rid)
                    for rid in shard.replica_set.dead_rids()
                )
        return out

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover_replica(self, sid: int, rid: int) -> ShardReplica:
        """Ledger-replay one dead replica back to life.

        Folds the outgoing replica's unsynced work into the engine's
        stats first, then recalibrates the fleet work baseline: the
        fresh replica starts with zeroed index counters, and
        :meth:`sync_shard_work` must never see that as a negative
        delta.
        """
        shard = self._replicated(sid)
        self.sync_shard_work()
        replica = shard.replica_set.recover(rid)
        shard.sync_primary()
        for name in self._WORK_COUNTERS:
            self._work_seen[name] = sum(
                s.work_counter(name) for s in self._shards
            )
        return replica

    def recover_all(self) -> int:
        """Recover every dead replica fleet-wide; returns the count."""
        recovered = 0
        for sid, rid in self.dead_replicas():
            self.recover_replica(sid, rid)
            recovered += 1
        return recovered

    # ------------------------------------------------------------------
    # Reads: tick the fault clock exactly once per query
    # ------------------------------------------------------------------
    def plan_shards(self, query: Query | RangeQuery) -> list[Shard]:
        self._tick_faults()
        return super().plan_shards(query)

    # ------------------------------------------------------------------
    # Writes: ledger-first application to every live replica
    # ------------------------------------------------------------------
    def _insert(
        self, lo: np.ndarray, hi: np.ndarray, ids: np.ndarray | None
    ) -> np.ndarray:
        if not self._built:
            return self._store.append_validated(lo, hi, ids)
        self._tick_faults()
        self._require_mutable_shards()
        assigned = self._store.append_validated(lo, hi, ids)
        if not assigned.size:
            return assigned
        stack_lo, stack_hi = self._mbb_stacks()
        targets = self._partitioner.route(
            lo,
            hi,
            stack_lo,
            stack_hi,
            np.asarray(self.shard_sizes(), dtype=np.int64),
        )
        for sid in np.unique(targets):
            shard = self._replicated(int(sid))
            mine = targets == sid
            shard.replica_set.apply_insert(lo[mine], hi[mine], assigned[mine])
            shard.expand(lo[mine], hi[mine])
        self._stack_lo = self._stack_hi = None
        for obj_id, sid in zip(assigned.tolist(), targets.tolist()):
            self._owner[obj_id] = int(sid)
        self.sync_shard_work()
        return assigned

    def _delete(self, ids: np.ndarray) -> int:
        if not self._built:
            return self._store.delete_ids(ids)
        self._tick_faults()
        self._require_mutable_shards()
        id_list = np.unique(ids).tolist()
        missing = [i for i in id_list if i not in self._owner]
        if missing:
            raise DatasetError(
                f"cannot delete ids not live in any shard: {missing[:5]}"
            )
        removed = self._store.delete_ids(np.asarray(id_list, dtype=np.int64))
        by_shard: dict[int, list[int]] = {}
        for obj_id in id_list:
            by_shard.setdefault(self._owner.pop(obj_id), []).append(obj_id)
        for sid, victims in by_shard.items():
            self._replicated(sid).replica_set.apply_delete(
                np.asarray(victims, dtype=np.int64)
            )
        self.sync_shard_work()
        return removed

    # ------------------------------------------------------------------
    # Compaction / flush across replicas
    # ------------------------------------------------------------------
    def _compact_shard(self, shard: Shard) -> int:
        """Compact every *live* replica of the shard together.

        Replicas share one live multiset, so their dead fractions move
        in lockstep; compacting them together keeps the reinsert-id
        gates consistent across the set.  Dead replicas are skipped —
        recovery rebuilds them tombstone-free anyway.  Returns the
        primary's reclaimed count (the base class's accounting unit).
        """
        if not isinstance(shard, ReplicatedShard):
            return super()._compact_shard(shard)
        reclaimed = 0
        primary_pending = 0
        for r in shard.replica_set.replicas:
            if not r.alive:
                continue
            index = r.index
            if isinstance(index, MutableSpatialIndex):
                got = index.compact()
                pending = index.pending_updates()
            else:
                got = r.store.n_dead
                if got:
                    index.on_compaction(r.store.compact())
                pending = 0
            if index is shard.index:
                reclaimed = got
                primary_pending = pending
        if reclaimed and primary_pending == 0:
            shard.refresh_mbb()
        return reclaimed

    def flush_updates(self) -> int:
        """Flush every live replica's buffer fleet-wide.

        Returns the primary-replica total (one logical count per shard,
        matching the base engine's accounting) while still physically
        flushing every live replica — rebalancing pools rows from
        primary stores, and recovery fingerprints replicas against
        flushed peers.
        """
        if not self._built:
            return 0
        flushed = 0
        for shard in self._shards:
            if not isinstance(shard, ReplicatedShard):
                continue
            for r in shard.replica_set.replicas:
                if r.alive and isinstance(r.index, MutableSpatialIndex):
                    got = r.index.flush_updates()
                    if r.index is shard.index:
                        flushed += got
        if flushed:
            self.sync_shard_work()
        return flushed

    # ------------------------------------------------------------------
    # Rebalancing verbs: whole replica sets move together
    # ------------------------------------------------------------------
    def migrate_into(
        self, sid: int, lo: np.ndarray, hi: np.ndarray, ids: np.ndarray
    ) -> None:
        self._require_mutable_shards()
        shard = self._replicated(sid)
        shard.replica_set.apply_insert(lo, hi, ids)
        shard.expand(lo, hi)
        for obj_id in ids.tolist():
            self._owner[int(obj_id)] = sid
        self._stack_lo = self._stack_hi = None

    def rebuild_shard(
        self, sid: int, lo: np.ndarray, hi: np.ndarray, ids: np.ndarray
    ) -> None:
        """Replace shard ``sid`` with a fresh replica set over the rows.

        The new set starts fully live with a fresh ledger whose base
        snapshot is exactly the new row set — rebuilding is a
        re-replication point, so any faults on the old set are wiped
        (matching the base engine, where a rebuilt shard is a new
        index).
        """
        self.sync_shard_work()
        self._shards[sid] = self._make_replicated_shard(
            sid, lo.copy(), hi.copy(), ids.copy(), via_insert=True
        )
        for obj_id in ids.tolist():
            self._owner[int(obj_id)] = sid
        for name in self._WORK_COUNTERS:
            self._work_seen[name] = sum(
                s.work_counter(name) for s in self._shards
            )
        self._stack_lo = self._stack_hi = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ReplicatedShardedIndex(n_shards={self._n_shards}, "
            f"replication={self._replication}, built={self._built})"
        )

