"""One shard of the serving engine: a private store plus its own index.

A :class:`Shard` owns a *copy* of its slice of the data — incremental
indexes (QUASII) physically permute their store, so shards cannot share
row ranges of one array — and whatever :class:`SpatialIndex` the factory
built over it.  The shard tracks its minimum bounding box for query
pruning; the MBB is exact at build time, *expands* when routed inserts
arrive (covering rows an index may still hold in its update buffer), and
deliberately never shrinks on delete (a loose MBB is conservative: it
can only cost a wasted visit, never a missed result).  Compaction is the
moment the looseness is paid off: :meth:`Shard.refresh_mbb` re-tightens
the pruning box to the surviving live rows once the dead ones are gone.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.store import BoxStore
from repro.index.base import SpatialIndex

_INF = float("inf")


class Shard:
    """A shard id, its private :class:`BoxStore`, its index, and its MBB."""

    __slots__ = ("sid", "store", "index", "mbb_lo", "mbb_hi")

    def __init__(self, sid: int, store: BoxStore, index: SpatialIndex) -> None:
        self.sid = sid
        self.store = store
        self.index = index
        self.refresh_mbb()

    @property
    def live_count(self) -> int:
        """Live rows physically present in this shard's store."""
        return self.store.live_count

    @property
    def owned_count(self) -> int:
        """Live rows owned by this shard, buffered inserts included.

        Routed inserts may sit in the shard index's update buffer before
        physically reaching the store; they are owned (and answered) all
        the same, so load/balance decisions must count them —
        :attr:`live_count` alone would under-report a shard that just
        absorbed a burst.  The buffered count comes from the store's
        staged-id registry (every buffered row is registered there by
        the staging gate), **not** from ``pending_updates()``: an
        index's pending measure may count derived-structure backlog for
        rows already appended (the grid's overflow entries), which would
        double-count them here.
        """
        return self.store.live_count + self.store.staged_count

    @property
    def dead_fraction(self) -> float:
        """Tombstoned fraction of the shard's physical rows (0 when empty).

        The compaction policy's trigger: the engine compacts a shard
        once this crosses its ``dead_fraction`` threshold.
        """
        return self.store.n_dead / self.store.n if self.store.n else 0.0

    def refresh_mbb(self) -> None:
        """Reset the pruning MBB to exactly cover the live rows.

        Called at construction and after compaction; an empty (or fully
        dead) shard gets the inverted box, which intersects nothing and
        merges as the identity.
        """
        store = self.store
        if store.live_count:
            bounds = store.bounds()
            self.mbb_lo = np.asarray(bounds.lo, dtype=np.float64).copy()
            self.mbb_hi = np.asarray(bounds.hi, dtype=np.float64).copy()
        else:
            self.mbb_lo = np.full(store.ndim, _INF, dtype=np.float64)
            self.mbb_hi = np.full(store.ndim, -_INF, dtype=np.float64)

    def serving_index(self) -> SpatialIndex:
        """The index read traffic should hit for this shard.

        The read-routing seam: the base shard always serves from its own
        index, while :class:`~repro.sharding.replication.ReplicatedShard`
        overrides this to pick the least-loaded live replica.  The
        executor calls this exactly once per shard per batch, so whatever
        index is returned is touched by a single worker thread for the
        whole batch (shard affinity extends to replicas).
        """
        return self.index

    def work_counter(self, name: str) -> int:
        """Cumulative value of one index work counter for this shard.

        The engine's :meth:`ShardedIndex.sync_shard_work` reads fleet
        work through this hook; a replicated shard overrides it to sum
        across all of its replicas' indexes.
        """
        return int(getattr(self.index.stats, name))

    def expand(self, lo: np.ndarray, hi: np.ndarray) -> None:
        """Grow the MBB to cover an insert batch routed to this shard."""
        if lo.shape[0]:
            self.mbb_lo = np.minimum(self.mbb_lo, lo.min(axis=0))
            self.mbb_hi = np.maximum(self.mbb_hi, hi.max(axis=0))

    def memory_bytes(self) -> int:
        """Footprint of the shard's private store copy plus its index."""
        store_bytes = int(
            self.store.lo.nbytes
            + self.store.hi.nbytes
            + self.store.ids.nbytes
            + self.store.live.nbytes
        )
        return store_bytes + self.index.memory_bytes()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Shard(sid={self.sid}, n={self.store.n}, index={self.index.name})"
