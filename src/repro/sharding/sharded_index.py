"""The sharded serving engine: K shards, fan-out queries, routed updates.

:class:`ShardedIndex` turns one :class:`~repro.datasets.store.BoxStore`
into a partition-then-search architecture ("The Case for Learned Spatial
Indexes" shows this layout dominating monolithic structures; LiLIS builds
a distributed framework the same way): a
:class:`~repro.sharding.partitioner.Partitioner` splits the rows into
``n_shards`` spatial tiles, an index factory builds one
:class:`SpatialIndex` per shard (QUASII by default, so every shard keeps
*cracking adaptively* on its own slice forest), and the engine exposes
the full :class:`MutableSpatialIndex` contract over the fleet:

* **Queries** fan out only to shards whose MBB intersects the window
  (``shards_visited`` / ``shards_pruned`` count the pruning), and the
  per-shard id sets are merged and deduplicated.
* **Inserts** are routed to an owning shard by the partitioner's
  :meth:`~repro.sharding.partitioner.Partitioner.route` policy; the
  shard's MBB expands to cover the new rows immediately (they may sit in
  the shard index's update buffer, and pruning must never skip them).
* **Deletes** are routed by the id→shard ownership map the engine
  maintains, so only owning shards do any work.
* **Compaction** reclaims the dead space deletes leave behind:
  :meth:`ShardedIndex.maybe_compact` compacts every shard whose
  tombstoned fraction crosses a policy threshold (re-tightening its
  pruning MBB), while the inherited
  :meth:`~repro.index.base.MutableSpatialIndex.compact` compacts the
  mirror and the whole fleet unconditionally.

The store handed to the constructor remains the engine's *ingest
mirror*: shards own private copies of their rows (incremental shard
indexes physically permute them), while every insert is also appended to
— and every delete tombstoned in — the outer store.  The outer store
therefore keeps satisfying the documented multiset-of-live-rows
invariant (ledger checks work unchanged), and the shared id-allocation /
validation gate stays exact across shards.

Batches of queries can be executed across shards in parallel with
:class:`~repro.sharding.executor.QueryExecutor`.

The engine also observes its own traffic: every planned query's centroid
is recorded in a :class:`~repro.sharding.rebalancer.WorkloadProfile`, and
per-shard load is read as deltas of the shard-index counters.  When the
balance factor or query-load skew drifts, a
:class:`~repro.sharding.rebalancer.Rebalancer` splits the hot shard
along the observed query distribution and merges the coldest one away —
see :mod:`repro.sharding.rebalancer` for the mechanics and
:mod:`repro.sharding.maintenance` for the scheduling policy that runs
both rebalancing and compaction on the query path.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

import numpy as np

from repro.datasets.store import BoxStore
from repro.errors import ConfigurationError, DatasetError
from repro.geometry.predicates import boxes_intersect_window
from repro.index.base import MutableSpatialIndex, SpatialIndex
from repro.queries.query import Query, QueryPlan, QueryResult
from repro.queries.range_query import RangeQuery
from repro.sharding.partitioner import Partitioner, make_partitioner
from repro.sharding.rebalancer import WorkloadProfile
from repro.sharding.shard import Shard

#: Builds the per-shard index over a shard's private store.
IndexFactory = Callable[[BoxStore], SpatialIndex]


def _default_factory(store: BoxStore) -> SpatialIndex:
    from repro.core.quasii import QuasiiIndex

    return QuasiiIndex(store)


class ShardedIndex(MutableSpatialIndex):
    """K per-shard indexes behind one :class:`MutableSpatialIndex` facade.

    Parameters
    ----------
    store:
        The data array; partitioned at :meth:`build` time.  Kept as the
        ingest mirror afterwards (see the module docstring) — shards
        work on private copies of their rows.
    n_shards:
        Number of shards ``K >= 1``.
    partitioner:
        Strategy name (``"str"`` or ``"round-robin"``) or a
        :class:`Partitioner` instance.
    index_factory:
        Callable building one index per shard store; defaults to
        :class:`~repro.core.quasii.QuasiiIndex`.

    Examples
    --------
    >>> from repro.datasets import make_uniform
    >>> from repro.queries import uniform_workload
    >>> ds = make_uniform(10_000, seed=7)
    >>> engine = ShardedIndex(ds.store, n_shards=4)
    >>> engine.build()                      # STR split + per-shard indexes
    >>> for q in uniform_workload(ds.universe, 5, seed=7):
    ...     ids = engine.query(q)           # fans out, prunes, merges
    """

    name = "Sharded"

    def __init__(
        self,
        store: BoxStore,
        n_shards: int = 4,
        partitioner: str | Partitioner = "str",
        index_factory: IndexFactory | None = None,
    ) -> None:
        super().__init__(store)
        if n_shards < 1:
            raise ConfigurationError(f"need n_shards >= 1, got {n_shards}")
        self._n_shards = int(n_shards)
        self._partitioner = make_partitioner(partitioner)
        self._factory: IndexFactory = index_factory or _default_factory
        self._shards: list[Shard] = []
        #: id -> owning shard sid, maintained for every *live* object.
        self._owner: dict[int, int] = {}
        # Stacked (k, d) shard MBBs so planning prunes the whole fleet
        # with one vectorized intersection test; rebuilt lazily after
        # shard MBBs expand.
        self._stack_lo: np.ndarray | None = None
        self._stack_hi: np.ndarray | None = None
        # Fleet work totals already rolled into self.stats (so roll-ups
        # survive an outer stats.reset() without double counting).
        self._work_seen = dict.fromkeys(self._WORK_COUNTERS, 0)
        #: The observed query distribution: recent planned-query
        #: centroids plus per-shard load baselines.  Feeds the
        #: :class:`~repro.sharding.rebalancer.Rebalancer`'s drift
        #: detection and its query-driven split cut.
        self.profile = WorkloadProfile()
        self.name = f"Sharded[{self._partitioner.name}x{self._n_shards}]"

    #: Shard-level work counters mirrored into the engine's stats; the
    #: flow counters (queries, inserts, results, compactions...) are
    #: engine-maintained and must NOT be rolled up, or they would double
    #: count — one engine compact() is one compaction event, not K+1.
    _WORK_COUNTERS = (
        "objects_tested",
        "nodes_visited",
        "cracks",
        "rows_reorganized",
        "merges",
    )

    def sync_shard_work(self) -> None:
        """Fold the fleet's work counters into this engine's stats.

        Called after every query (and by the executor after every batch)
        so harnesses that read ``engine.stats`` see the whole fleet's
        objects tested, cracks, rows moved, and merges.
        """
        for name in self._WORK_COUNTERS:
            total = sum(s.work_counter(name) for s in self._shards)
            delta = total - self._work_seen[name]
            if delta:
                setattr(self.stats, name, getattr(self.stats, name) + delta)
                self._work_seen[name] = total

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        """Number of shards (fixed at construction)."""
        return self._n_shards

    @property
    def shards(self) -> tuple[Shard, ...]:
        """The shard fleet (read-only view; built after :meth:`build`)."""
        return tuple(self._shards)

    @property
    def partitioner(self) -> Partitioner:
        """The partitioning strategy in use."""
        return self._partitioner

    def owner_of(self, obj_id: int) -> int:
        """Owning shard sid of a live object id (raises if not live)."""
        try:
            return self._owner[int(obj_id)]
        except KeyError:
            raise DatasetError(f"id {obj_id} is not live in any shard") from None

    def shard_sizes(self) -> list[int]:
        """Owned live rows per shard, buffered inserts included (the
        balance profile; also the load vector for insert routing)."""
        return [s.owned_count for s in self._shards]

    def balance_factor(self) -> float:
        """Max/mean owned live rows across shards (1.0 = perfect balance).

        The drift signal skewed *ingestion* moves: inserts concentrating
        on few shards push it up, and the
        :class:`~repro.sharding.rebalancer.Rebalancer` pulls it back
        down by splitting the largest shard.  Counts buffered inserts
        (see :attr:`Shard.owned_count`) so a burst is visible before any
        query drains it.
        """
        sizes = self.shard_sizes()
        mean = sum(sizes) / len(sizes) if sizes else 0.0
        return max(sizes) / mean if mean > 0 else 1.0

    def memory_bytes(self) -> int:
        """Shard store copies plus per-shard index structures."""
        # ~60 bytes per ownership-map entry is the CPython dict ballpark.
        return sum(s.memory_bytes() for s in self._shards) + 60 * len(self._owner)

    # ------------------------------------------------------------------
    # Build: partition + per-shard index construction
    # ------------------------------------------------------------------
    def _make_shard_index(
        self, shard_store: BoxStore
    ) -> tuple[BoxStore, SpatialIndex]:
        """Run the factory over a shard store, enforcing its contract."""
        index = self._factory(shard_store)
        if index.store is not shard_store:
            raise ConfigurationError(
                "index_factory must build the index over the shard store "
                "it was given"
            )
        return shard_store, index

    def build(self) -> None:
        """Partition the store's live rows and build one index per shard."""
        if self._built:
            return
        store = self._store
        rows = store.live_rows()
        owners = self._partitioner.assign(store.lo[rows], store.hi[rows], self._n_shards)
        for sid in range(self._n_shards):
            mine = rows[owners == sid]
            shard_store, index = self._make_shard_index(
                BoxStore(
                    store.lo[mine].copy(),
                    store.hi[mine].copy(),
                    store.ids[mine].copy(),
                )
            )
            index.build()
            self._shards.append(Shard(sid, shard_store, index))
        copied = sum(s.store.n for s in self._shards)
        if copied != rows.size:
            raise ConfigurationError(
                f"partitioner {self._partitioner.name!r} assigned {copied} "
                f"of {rows.size} rows to shards 0..{self._n_shards - 1}"
            )
        ids = store.ids[rows]
        self._owner = dict(zip(ids.tolist(), owners.tolist()))
        self._seen_epoch = store.epoch
        self._built = True
        self.profile.rebaseline(self._shards)

    # ------------------------------------------------------------------
    # Queries: prune, fan out, merge
    # ------------------------------------------------------------------
    def _mbb_stacks(self) -> tuple[np.ndarray, np.ndarray]:
        """Stacked shard MBBs, rebuilt if inserts expanded any shard."""
        if self._stack_lo is None:
            self._stack_lo = np.stack([s.mbb_lo for s in self._shards])
            self._stack_hi = np.stack([s.mbb_hi for s in self._shards])
        return self._stack_lo, self._stack_hi

    def plan_shards(self, query: Query | RangeQuery) -> list[Shard]:
        """Shards whose MBB intersects the window, updating prune counters.

        The *routing* half of planning (the cost-estimating half is the
        inherited :meth:`~repro.index.base.SpatialIndex.plan`).  One
        vectorized intersection test over the stacked shard MBBs.
        The :class:`~repro.sharding.executor.QueryExecutor` calls this on
        the coordinating thread so counter updates never race; shard-local
        work then proceeds in parallel.  Each planned window's centroid
        is also recorded in :attr:`profile` — routing is the one spot
        both the sequential and the parallel path go through exactly
        once per query, so the observed-traffic record stays exact.
        """
        self.profile.record(query)
        stack_lo, stack_hi = self._mbb_stacks()
        hits = np.flatnonzero(
            boxes_intersect_window(stack_lo, stack_hi, query.lo, query.hi)
        )
        self.stats.shards_visited += int(hits.size)
        self.stats.shards_pruned += self._n_shards - int(hits.size)
        return [self._shards[i] for i in hits]

    def _candidates(self, query: Query) -> np.ndarray:
        raise ConfigurationError(
            "ShardedIndex fans queries out to shards; it has no flat "
            "candidate set"
        )  # pragma: no cover - _execute is overridden, this is unreachable

    def _execute(
        self, query: Query
    ) -> tuple[int, np.ndarray | None, tuple[np.ndarray, np.ndarray] | None]:
        if not self._built:
            raise ConfigurationError(
                "ShardedIndex queried before build(); call build() first"
            )
        parts = [
            shard.serving_index().execute(query)
            for shard in self.plan_shards(query)
        ]
        payload = self._merge_payload(query, parts)
        self.sync_shard_work()
        return payload

    def _execute_batch(self, queries: list[Query]) -> list[QueryResult]:
        """Fan out whole per-shard sub-batches, then merge per query.

        Every query is routed once on this thread (prune counters and
        the traffic profile stay exact), then each shard answers its
        portion of the batch through its index's *native*
        ``execute_batch`` — one sub-batch per shard instead of one call
        per (query, shard) pair, so vectorized shard indexes batch
        their candidate matrices and QUASII shards amortize their
        merges.  The thread-pooled version of the same shape lives in
        :class:`~repro.sharding.executor.QueryExecutor`.
        """
        if not self._built:
            raise ConfigurationError(
                "ShardedIndex queried before build(); call build() first"
            )
        t0 = time.perf_counter()
        queues: dict[int, list[int]] = {}
        for i, q in enumerate(queries):
            for shard in self.plan_shards(q):
                queues.setdefault(shard.sid, []).append(i)
        partials: dict[int, list[QueryResult]] = {}
        for sid, idxs in queues.items():
            sub = self._shards[sid].serving_index().execute_batch(
                [queries[i] for i in idxs]
            )
            for i, res in zip(idxs, sub):
                partials.setdefault(i, []).append(res)
        return self._assemble_batch(queries, partials, t0)

    def _assemble_batch(
        self,
        queries: list[Query],
        partials: dict[int, list[QueryResult]],
        t0: float,
    ) -> list[QueryResult]:
        """Merge per-shard results into engine-level batch results.

        Shared by the sequential native batch above and the executor's
        thread-pooled fan-out.  The merge work itself is part of the
        batch, so wall-clock is captured *after* merging and the
        equal-share per-query seconds are stamped in a second pass.
        Per-query index-stat deltas cannot be attributed to a single
        query across a fleet batch, so ``stats`` stays ``None`` here;
        fleet work lands in the engine's cumulative stats through
        :meth:`sync_shard_work`.
        """
        payloads = [
            self._merge_payload(q, partials.get(i, []))
            for i, q in enumerate(queries)
        ]
        share = (time.perf_counter() - t0) / max(len(queries), 1)
        out: list[QueryResult] = []
        for q, (count, ids, boxes) in zip(queries, payloads):
            returned = int(ids.size) if ids is not None else count
            self.stats.queries += 1
            self.stats.results_returned += returned
            out.append(
                QueryResult(
                    query=q,
                    count=count,
                    ids=ids,
                    boxes=boxes,
                    stats=None,
                    seconds=share,
                )
            )
        self.sync_shard_work()
        return out

    def _plan(self, query: Query) -> QueryPlan:
        """Aggregate the sub-plans of every shard the query would touch.

        Pure estimation: no prune counters, no profile recording — the
        side-effecting routing lives in :meth:`plan_shards`.
        """
        if not self._built:
            raise ConfigurationError(
                "ShardedIndex planned before build(); call build() first"
            )
        stack_lo, stack_hi = self._mbb_stacks()
        hits = np.flatnonzero(
            boxes_intersect_window(stack_lo, stack_hi, query.lo, query.hi)
        )
        nodes = 0
        candidates = 0
        exact = True
        for i in hits:
            sub = self._shards[i].index.plan(query)
            nodes += sub.nodes
            candidates += sub.candidates
            exact = exact and sub.exact
        return QueryPlan(
            index=self.name,
            query=query,
            nodes=nodes,
            candidates=candidates,
            shards=int(hits.size),
            exact=exact,
        )

    @staticmethod
    def _merge(parts: Sequence[np.ndarray]) -> np.ndarray:
        """Merge + deduplicate per-shard id sets (ownership is exclusive,
        so duplicates indicate a routing bug — unique keeps the contract
        airtight whenever shard sets actually combine; a single
        contributing shard cannot self-duplicate, so its set passes
        through without paying the sort)."""
        parts = [p for p in parts if p.size]
        if not parts:
            return np.empty(0, dtype=np.int64)
        if len(parts) == 1:
            return parts[0]
        return np.unique(np.concatenate(parts))

    def _merge_payload(
        self, query: Query, parts: Sequence[QueryResult]
    ) -> tuple[int, np.ndarray | None, tuple[np.ndarray, np.ndarray] | None]:
        """Combine per-shard :class:`QueryResult`\\ s into one payload.

        Ownership is exclusive, so shard result sets are disjoint:
        counts add, id sets merge through the dedup-checking
        :meth:`_merge`, boxes concatenate, and top-k re-ranks the
        per-shard top-k unions (each shard already kept its ``k``
        largest, so the global top-k is within the union).
        """
        count = int(sum(r.count for r in parts))
        if query.count_only:
            return count, None, None
        if query.mode == "ids":
            return count, self._merge([r.ids for r in parts]), None
        with_rows = [r for r in parts if r.ids is not None and r.ids.size]
        if not with_rows:
            empty = np.empty((0, self._store.ndim), dtype=np.float64)
            return count, np.empty(0, dtype=np.int64), (empty, empty.copy())
        ids = np.concatenate([r.ids for r in with_rows])
        lo = np.concatenate([r.boxes[0] for r in with_rows])
        hi = np.concatenate([r.boxes[1] for r in with_rows])
        if query.mode == "top_k":
            volumes = np.prod(hi - lo, axis=1)
            order = np.lexsort((ids, -volumes))[: query.k]
            return count, ids[order], (lo[order], hi[order])
        return count, ids, (lo, hi)

    # ------------------------------------------------------------------
    # Updates: shard-aware routing
    # ------------------------------------------------------------------
    def _insert(
        self, lo: np.ndarray, hi: np.ndarray, ids: np.ndarray | None
    ) -> np.ndarray:
        if not self._built:
            # Pre-build rows just join the ingest store; build() sweeps
            # them into the initial partitioning.
            return self._store.append_validated(lo, hi, ids)
        # Reject a read-only fleet *before* touching the ingest mirror —
        # failing after the append would leave the mirror ahead of the
        # engine's epoch and brick every later query.
        self._require_mutable_shards()
        # Explicit-id collisions are fully covered by the mirror's shared
        # gate (validate_batch in the base class): every id ever owned by
        # a shard was first appended to the mirror, so the mirror's id
        # set is a superset of the ownership map's keys.
        assigned = self._store.append_validated(lo, hi, ids)
        if not assigned.size:
            return assigned
        stack_lo, stack_hi = self._mbb_stacks()
        targets = self._partitioner.route(
            lo,
            hi,
            stack_lo,
            stack_hi,
            np.asarray(self.shard_sizes(), dtype=np.int64),
        )
        for sid in np.unique(targets):
            shard = self._shards[int(sid)]
            mine = targets == sid
            shard.index.insert(lo[mine], hi[mine], assigned[mine])
            shard.expand(lo[mine], hi[mine])
        self._stack_lo = self._stack_hi = None
        for obj_id, sid in zip(assigned.tolist(), targets.tolist()):
            self._owner[obj_id] = int(sid)
        self.sync_shard_work()
        return assigned

    def _require_mutable_shards(self) -> None:
        """Raise before any mutation if the fleet cannot absorb updates."""
        for shard in self._shards:
            if not isinstance(shard.index, MutableSpatialIndex):
                raise ConfigurationError(
                    f"shard index {shard.index.name!r} does not support "
                    "updates; use a MutableSpatialIndex factory"
                )

    def _delete(self, ids: np.ndarray) -> int:
        if not self._built:
            return self._store.delete_ids(ids)
        self._require_mutable_shards()
        id_list = np.unique(ids).tolist()
        missing = [i for i in id_list if i not in self._owner]
        if missing:
            raise DatasetError(
                f"cannot delete ids not live in any shard: {missing[:5]}"
            )
        # Tombstone the ingest mirror first (all-or-nothing with the
        # ownership check above), then fan the batch out by owner.
        removed = self._store.delete_ids(np.asarray(id_list, dtype=np.int64))
        by_shard: dict[int, list[int]] = {}
        for obj_id in id_list:
            by_shard.setdefault(self._owner.pop(obj_id), []).append(obj_id)
        for sid, victims in by_shard.items():
            self._shards[sid].index.delete(np.asarray(victims, dtype=np.int64))
        self.sync_shard_work()
        return removed

    # ------------------------------------------------------------------
    # Compaction: reclaim dead space shard by shard
    # ------------------------------------------------------------------
    def compact(self) -> int:
        """Reclaim tombstones across the ingest mirror and the whole fleet.

        Overrides the inherited verb, whose no-op gate inspects only the
        engine's own store: a prior partial :meth:`maybe_compact` can
        compact the mirror while leaving a below-threshold shard
        tombstoned, and that shard must still be swept here.  Returns
        the *logical* rows reclaimed — tombstones dropped from the
        mirror — matching :meth:`maybe_compact`'s accounting: shard-side
        copies of the same rows are not double-counted, and a row whose
        mirror tombstone an earlier policy pass already dropped adds
        nothing again, so totals across calls count each deleted row
        exactly once.
        """
        self._check_epoch()
        reclaimed = self._store.n_dead
        if reclaimed == 0 and all(s.store.n_dead == 0 for s in self._shards):
            return 0
        self.on_compaction(self._store.compact())
        self.stats.compactions += 1
        return reclaimed

    def _on_compaction(self, remap: np.ndarray) -> None:
        """Absorb a full compaction: the mirror is done, now the fleet.

        The engine itself holds no physical positions into the ingest
        mirror (ownership is id-keyed), so the mirror's remap needs no
        translation here; each shard compacts its *private* store
        through its own index hook, and the stacked pruning MBBs are
        rebuilt from the re-tightened shards.
        """
        for shard in self._shards:
            self._compact_shard(shard)
        self._stack_lo = self._stack_hi = None
        self.sync_shard_work()

    def _compact_shard(self, shard: Shard) -> int:
        """Compact one shard's private store and re-tighten its MBB."""
        index = shard.index
        if isinstance(index, MutableSpatialIndex):
            reclaimed = index.compact()
            pending = index.pending_updates()
        else:
            # Immutable shard indexes cannot have routed deletes, but a
            # factory-supplied store may carry tombstones from day one.
            reclaimed = shard.store.n_dead
            if reclaimed:
                index.on_compaction(shard.store.compact())
            pending = 0
        if reclaimed and pending == 0:
            # Buffered (not yet drained) inserts are covered by the MBB
            # but invisible to the store; only re-tighten once nothing
            # is pending, or pruning could skip a staged match.
            shard.refresh_mbb()
        return reclaimed

    def maybe_compact(self, dead_fraction: float = 0.3) -> int:
        """Policy-driven compaction; returns the logical rows reclaimed.

        The serving-loop maintenance verb: every shard whose tombstoned
        fraction exceeds ``dead_fraction`` is compacted (shrinking its
        pruning MBB and restoring its load counters to live-row
        reality), and the ingest mirror compacts under the same policy.
        Shards below the threshold are untouched, so steady-state calls
        are cheap — sprinkle this between batches instead of scheduling
        stop-the-world rebuilds.

        The return value counts tombstones dropped from the *mirror*
        (each deleted row once, shard-side copies excluded), the same
        accounting as :meth:`compact`; a pass that only compacted shards
        therefore returns 0, and those rows are counted by whichever
        later call drops their mirror tombstones.
        """
        if not 0.0 <= dead_fraction < 1.0:
            raise ConfigurationError(
                f"dead_fraction must be in [0, 1), got {dead_fraction}"
            )
        self._check_epoch()
        compacted = 0
        for shard in self._shards:
            if shard.store.n and shard.dead_fraction > dead_fraction:
                compacted += self._compact_shard(shard)
        reclaimed = 0
        mirror = self._store
        if mirror.n and mirror.n_dead / mirror.n > dead_fraction:
            reclaimed = mirror.n_dead
            mirror.compact()
            self._seen_epoch = mirror.epoch
        if compacted or reclaimed:
            self._stack_lo = self._stack_hi = None
            self.stats.compactions += 1
            self.sync_shard_work()
        return reclaimed

    def pending_updates(self) -> int:
        """Rows staged in shard-level update buffers, fleet-wide."""
        return sum(
            s.index.pending_updates()
            for s in self._shards
            if isinstance(s.index, MutableSpatialIndex)
        )

    def flush_updates(self) -> int:
        """Force every shard's pending buffer into its structure now.

        The fleet-wide form of
        :meth:`~repro.index.base.MutableSpatialIndex.flush_updates`:
        after it returns, every owned row is physically present in its
        shard's store — the precondition for migrating rows between
        shards.  Returns the total rows merged across the fleet.
        """
        if not self._built:
            return 0
        flushed = sum(
            s.index.flush_updates()
            for s in self._shards
            if isinstance(s.index, MutableSpatialIndex)
        )
        if flushed:
            self.sync_shard_work()
        return flushed

    # ------------------------------------------------------------------
    # Rebalancing: shard-to-shard row migration
    # ------------------------------------------------------------------
    # The verbs below only move rows *between shards*: the ingest mirror
    # is never touched, so the store epoch, the live (id, box) multiset,
    # and therefore the ledger/fingerprint invariants are preserved by
    # construction.  rebuild_shard + finish_rebalance are the engine
    # half of a :class:`~repro.sharding.rebalancer.Rebalancer` pass;
    # migrate_into is the standalone targeted-migration primitive for
    # policies that move a row subset without rebuilding the target
    # (e.g. the ROADMAP's scan-waste-driven migrations).

    def migrate_into(
        self, sid: int, lo: np.ndarray, hi: np.ndarray, ids: np.ndarray
    ) -> None:
        """Adopt already-owned rows into shard ``sid`` without a rebuild.

        The rows must currently live in *other* shards' stores (the
        caller is responsible for rebuilding those without the rows);
        ownership is rewritten here and the target shard's pruning MBB
        expands to cover the batch immediately.
        """
        self._require_mutable_shards()
        shard = self._shards[sid]
        shard.index.insert(lo, hi, ids)
        shard.expand(lo, hi)
        for obj_id in ids.tolist():
            self._owner[int(obj_id)] = sid
        self._stack_lo = self._stack_hi = None

    def rebuild_shard(
        self, sid: int, lo: np.ndarray, hi: np.ndarray, ids: np.ndarray
    ) -> None:
        """Replace shard ``sid`` with a fresh store+index over the rows.

        Mutable shard indexes are rebuilt through their own insert/flush
        path (start-empty, insert the batch, force the merge): a large
        batch then lands as an STR bulk-loaded, already-refined run
        (``bulk_flush_threshold``) instead of one coarse slice, so
        post-rebuild queries do not re-crack the shard from scratch on
        the serving path.  Immutable factories fall back to a plain
        build over the populated store.

        The shard's pruning MBB is re-derived from the new store (not
        inherited — a stale MBB would mis-route the very next
        least-enlargement insert), ownership is rewritten for every row,
        the stacked routing MBBs are invalidated, and the fleet work
        totals are recalibrated so :meth:`sync_shard_work` never sees a
        negative delta from the discarded index's counters.
        """
        # Fold the outgoing index's unsynced work before discarding it.
        self.sync_shard_work()
        d = self._store.ndim
        empty = np.empty((0, d), dtype=np.float64)
        shard_store, index = self._make_shard_index(BoxStore(empty, empty.copy()))
        if isinstance(index, MutableSpatialIndex):
            index.build()
            if ids.size:
                index.insert(lo.copy(), hi.copy(), ids.copy())
                index.flush_updates()
        else:
            # The cheap empty-store probe only told us the factory is
            # immutable; build the real index over the populated store.
            shard_store, index = self._make_shard_index(
                BoxStore(lo.copy(), hi.copy(), ids.copy())
            )
            index.build()
        self._shards[sid] = Shard(sid, shard_store, index)
        for obj_id in ids.tolist():
            self._owner[int(obj_id)] = sid
        for name in self._WORK_COUNTERS:
            self._work_seen[name] = sum(
                s.work_counter(name) for s in self._shards
            )
        self._stack_lo = self._stack_hi = None

    def finish_rebalance(self, rows_migrated: int) -> None:
        """Seal a rebalancing pass: counters, profile baseline, MBBs."""
        self.stats.rebalances += 1
        self.stats.rows_migrated += int(rows_migrated)
        self.profile.rebaseline(self._shards)
        self._stack_lo = self._stack_hi = None
        self.sync_shard_work()

    def validate_routing(self) -> None:
        """Assert the ownership map matches shard stores exactly (tests)."""
        seen: dict[int, int] = {}
        for shard in self._shards:
            store = shard.store
            live = store.ids[store.live_rows()]
            for obj_id in live.tolist():
                assert obj_id not in seen, f"id {obj_id} owned by two shards"
                seen[obj_id] = shard.sid
                assert self._owner.get(obj_id) == shard.sid, (
                    f"id {obj_id} mapped to shard {self._owner.get(obj_id)} "
                    f"but stored in shard {shard.sid}"
                )
        # Buffered (not yet merged) rows are owned but not yet in stores.
        unmapped = set(self._owner) - set(seen)
        assert len(unmapped) == self.pending_updates(), (
            f"{len(unmapped)} owned-but-unstored ids vs "
            f"{self.pending_updates()} pending buffer rows"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ShardedIndex(n_shards={self._n_shards}, "
            f"partitioner={self._partitioner.name!r}, built={self._built})"
        )
