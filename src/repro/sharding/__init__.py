"""The sharded serving engine: spatial partitioning + parallel fan-out.

This package scales the single-process QUASII reproduction toward the
ROADMAP's production-serving north star by adopting the
partition-then-search architecture of the learned-spatial-index and
LiLIS lines of work, while keeping per-shard incremental cracking
intact:

* :class:`Partitioner` / :class:`STRPartitioner` /
  :class:`RoundRobinPartitioner` — build-time row splits and insert-time
  routing policies (:data:`PARTITIONERS` is the registry).
* :class:`Shard` — one shard: a private :class:`BoxStore` copy, its own
  index, and the MBB used for query pruning.
* :class:`ShardedIndex` — the engine: the full
  :class:`~repro.index.base.MutableSpatialIndex` contract over K shards
  with pruned fan-out queries, merged + deduplicated results, and
  ownership-routed inserts/deletes.
* :class:`QueryExecutor` / :class:`BatchResult` — batch execution with
  shard affinity on a thread pool, and a sequential fallback.
* :class:`WorkloadProfile` / :class:`ShardLoad` — the observed query
  distribution: recent query centroids plus per-shard load deltas.
* :class:`Rebalancer` / :class:`RebalanceResult` — query-driven shard
  rebalancing: split hot shards along the observed query centroids,
  merge cold ones away, migrate rows while preserving the ledger /
  fingerprint invariants and the ownership map.
* :class:`MaintenancePolicy` / :class:`MaintenanceScheduler` /
  :class:`MaintenanceReport` — automatic maintenance on the query path:
  dead-fraction-gated compaction plus drift-gated rebalancing, ticked
  by the executors instead of ad-hoc call sites.
* :class:`ReplicatedShardedIndex` / :class:`ReplicaSet` /
  :class:`ShardReplica` / :class:`ReplicatedShard` — the replication
  tier: R replicas per shard with least-loaded read routing, automatic
  failover, write application through the per-shard
  :class:`~repro.updates.ledger.UpdateLedger` (the replication stream),
  and ledger-replay recovery with fingerprint verification.
* :class:`FaultInjector` / :class:`Fault` — deterministic, seed-driven
  kill/stall/slow faults, ticked on the engine's routing path so
  failures are first-class test inputs.

The ``shard-scaling`` bench experiment (``quasii-bench shard-scaling``)
measures batch throughput, pruning, and balance across shard and worker
counts; the ``rebalance`` experiment (``quasii-bench rebalance``) drives
a drifting hotspot with skewed ingestion and compares the maintained
engine against the static STR baseline.  Every verb is documented in
``docs/BENCH.md``.
"""

from repro.sharding.executor import BatchResult, QueryExecutor
from repro.sharding.maintenance import (
    MaintenancePolicy,
    MaintenanceReport,
    MaintenanceScheduler,
)
from repro.sharding.partitioner import (
    PARTITIONERS,
    Partitioner,
    RoundRobinPartitioner,
    STRPartitioner,
    make_partitioner,
)
from repro.sharding.rebalancer import (
    RebalanceResult,
    Rebalancer,
    ShardLoad,
    WorkloadProfile,
)
from repro.sharding.replication import (
    Fault,
    FaultInjector,
    ReplicaSet,
    ReplicatedShard,
    ReplicatedShardedIndex,
    ShardReplica,
)
from repro.sharding.shard import Shard
from repro.sharding.sharded_index import IndexFactory, ShardedIndex

__all__ = [
    "BatchResult",
    "Fault",
    "FaultInjector",
    "IndexFactory",
    "MaintenancePolicy",
    "MaintenanceReport",
    "MaintenanceScheduler",
    "PARTITIONERS",
    "Partitioner",
    "QueryExecutor",
    "RebalanceResult",
    "Rebalancer",
    "ReplicaSet",
    "ReplicatedShard",
    "ReplicatedShardedIndex",
    "RoundRobinPartitioner",
    "STRPartitioner",
    "Shard",
    "ShardLoad",
    "ShardReplica",
    "ShardedIndex",
    "WorkloadProfile",
    "make_partitioner",
]
