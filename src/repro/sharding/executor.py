"""Batch query execution across shards, on a thread pool or sequentially.

Serving engines amortize dispatch over *batches*: the
:class:`QueryExecutor` takes a list of range queries, plans each one
against the shard MBBs (the pruning step, done on the coordinating
thread so counters never race), then executes with **shard affinity** —
one task per shard, each running that shard's portion of the batch in
submission order.  A shard's index is therefore only ever touched by a
single thread at a time, which makes the scheme safe for *incremental*
shard indexes whose queries physically reorganize their store (QUASII
cracking).  NumPy releases the GIL inside the hot kernels (the
vectorized intersection scans and partition passes), so shard tasks
overlap on multi-core machines; on a single core the pool degrades to
roughly sequential execution plus a small dispatch cost.

``max_workers <= 1`` selects the plain sequential fallback (no threads
at all) — useful as a baseline and on interpreters/platforms where
thread pools are unwanted.

Threads share the GIL; the ``backend`` seam escapes it.  Every executor
resolves to one of three backends — ``"sequential"``, ``"threads"``
(the thread-pooled fan-out above), or ``"processes"`` (a persistent
:class:`~repro.parallel.pool.ProcessPool` serving per-shard sub-batches
from shared-memory snapshots).  An explicit ``backend=`` argument wins;
otherwise ``QUASII_EXECUTOR_BACKEND`` is consulted (only when the
resolved ``max_workers`` exceeds 1, so single-worker setups keep their
sequential contract); otherwise the historical default stands:
``threads`` when ``max_workers > 1``, else ``sequential``.  Replicated
engines route reads through per-shard replica picks, which the process
tier bypasses by design — asking for ``backend="processes"`` on one
raises, and an env-sourced request quietly downgrades to threads.

Passing a :class:`~repro.sharding.maintenance.MaintenancePolicy` makes
the executor the maintenance driver too: after every batch it ticks a
:class:`~repro.sharding.maintenance.MaintenanceScheduler`, which
compacts tombstone-heavy shards and rebalances drifted ones — the
serving loop needs no ad-hoc ``maybe_compact`` calls sprinkled between
batches.  Maintenance time is charged to the scheduler's report, not to
any batch's ``seconds``.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from types import TracebackType
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import ConfigurationError, QueryError
from repro.index.base import IndexStats
from repro.queries.query import Query, QueryResult, as_query
from repro.queries.range_query import RangeQuery
from repro.sharding.maintenance import MaintenancePolicy, MaintenanceScheduler
from repro.sharding.replication import FaultInjector, ReplicatedShardedIndex
from repro.sharding.shard import Shard
from repro.sharding.sharded_index import ShardedIndex
from repro.telemetry import Telemetry
from repro.telemetry.events import EventLog
from repro.telemetry.naming import (
    BATCH_FANOUT_SECONDS,
    BATCH_MERGE_SECONDS,
    BATCH_ROUTE_SECONDS,
    BATCH_SECONDS,
    QUERY_SECONDS,
    SHARD_BATCH_SECONDS,
    record_stats_delta,
)

if TYPE_CHECKING:
    from repro.parallel.pool import ProcessPool

#: The executor's dispatch backends, in escalation order.
BACKENDS = ("sequential", "threads", "processes")

#: Environment override consulted when no explicit ``backend=`` is given.
BACKEND_ENV = "QUASII_EXECUTOR_BACKEND"


@dataclass
class BatchResult:
    """Outcome of one executed query batch.

    Attributes
    ----------
    results:
        One id array per query, in batch order (merged + deduplicated;
        empty for count-only queries — their payload lives in
        ``query_results``).
    query_results:
        One full :class:`~repro.queries.query.QueryResult` per query,
        in batch order — counts, boxes, and top-k payloads for
        non-``ids`` modes.
    seconds:
        Wall-clock for the whole batch (planning + fan-out + merge).
    mode:
        ``"sequential"``, ``"parallel"`` (thread backend), or
        ``"processes"`` (process backend).
    workers:
        Thread or process count used (1 for the sequential fallback).
    shard_queries:
        Per-shard number of (query, shard) executions — the fan-out
        profile; its sum can exceed ``len(results)`` when queries span
        shards and be below it when pruning wins.
    shard_seconds:
        Per-shard worker wall-clock for this batch's sub-batches, indexed
        by shard id (0.0 for shards the batch never visited).  On the
        thread path each shard task is timed individually (and on the
        process path each worker times its sub-batch in-process), so
        shard-level skew is measurable: ``max(shard_seconds)`` bounds the
        fan-out phase while ``sum(shard_seconds)`` is the total work.
        The sequential fallback runs the engine's native batch (no
        per-shard attribution), so the list stays zeroed there.
    route_seconds / fanout_seconds / merge_seconds:
        Phase timings of the thread/process paths: planning queries onto
        shards (the queueing step), shard tasks in flight, and
        partial-result assembly.  All 0.0 on the sequential path.
    """

    results: list[np.ndarray] = field(default_factory=list)
    query_results: list[QueryResult] = field(default_factory=list)
    seconds: float = 0.0
    mode: str = "sequential"
    workers: int = 1
    shard_queries: list[int] = field(default_factory=list)
    shard_seconds: list[float] = field(default_factory=list)
    route_seconds: float = 0.0
    fanout_seconds: float = 0.0
    merge_seconds: float = 0.0

    @property
    def n_queries(self) -> int:
        """Number of executed queries."""
        return len(self.results)

    def throughput(self) -> float:
        """Queries per second over the batch."""
        return self.n_queries / self.seconds if self.seconds > 0 else float("inf")


class QueryExecutor:
    """Run query batches against a :class:`ShardedIndex`.

    Parameters
    ----------
    index:
        The sharded engine; built on first use if necessary.
    max_workers:
        Thread (or process) pool width.  ``None`` uses
        ``os.cpu_count()`` capped at the shard count; ``<= 1`` selects
        the sequential fallback unless ``backend`` says otherwise.
    backend:
        Dispatch backend: one of :data:`BACKENDS` or ``None``.
        ``None`` (default) resolves via the module docstring's rules —
        env override first (:data:`BACKEND_ENV`, honored only when the
        resolved ``max_workers`` exceeds 1), then ``"threads"`` /
        ``"sequential"`` by worker count.  The ``"processes"`` backend
        lazily spins up a persistent
        :class:`~repro.parallel.pool.ProcessPool` on first use; call
        :meth:`close` (or use the executor as a context manager) to
        tear it down deterministically.
    maintenance:
        Optional :class:`MaintenancePolicy`; when given, a
        :class:`MaintenanceScheduler` is ticked after every executed
        batch, so compaction and rebalancing ride the serving loop
        (cracking-style) instead of needing ad-hoc call sites.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` handle.  When given,
        every batch records latency histograms (whole batch, per query,
        per shard sub-batch, route/fan-out/merge phases) and flows the
        engine's :class:`~repro.index.base.IndexStats` delta into
        ``stats.*`` registry counters; the maintenance scheduler traces
        its passes as spans on ``telemetry.tracer``.  When ``None``
        (default), the only cost on the batch path is one ``is None``
        test — see docs/OBSERVABILITY.md.
    events:
        Optional :class:`~repro.telemetry.events.EventLog`.  Slow-query
        events land here (see ``slow_query_threshold``), and the
        maintenance scheduler mirrors its work-performing passes as
        ``maintenance.*`` events.
    slow_query_threshold:
        Seconds above which an executed query emits a ``slow_query``
        event into ``events``, carrying the query window,
        predicate/mode, its seconds, and the owning batch's fan-out
        profile (per-shard seconds, shards visited/pruned, phase
        split).  ``None`` (default) disables the check entirely.
    fault_injector:
        Optional :class:`~repro.sharding.replication.FaultInjector`,
        attached to a replication-aware engine
        (:class:`~repro.sharding.replication.ReplicatedShardedIndex`)
        so deterministic kill/stall/slow faults fire on the serving
        path.  Passing one with a plain :class:`ShardedIndex` raises —
        faults are first-class inputs, never silently dropped.
    """

    def __init__(
        self,
        index: ShardedIndex,
        max_workers: int | None = None,
        backend: str | None = None,
        maintenance: MaintenancePolicy | None = None,
        telemetry: Telemetry | None = None,
        events: EventLog | None = None,
        slow_query_threshold: float | None = None,
        fault_injector: FaultInjector | None = None,
    ) -> None:
        if max_workers is not None and max_workers < 0:
            raise ConfigurationError(
                f"max_workers must be >= 0, got {max_workers}"
            )
        if slow_query_threshold is not None and slow_query_threshold < 0:
            raise ConfigurationError(
                "slow_query_threshold must be >= 0 seconds, got "
                f"{slow_query_threshold}"
            )
        self._index = index
        if max_workers is None:
            max_workers = min(os.cpu_count() or 1, index.n_shards)
        self._max_workers = int(max_workers)
        self._backend = self._resolve_backend(backend, index)
        self._pool: ProcessPool | None = None
        self._telemetry = (
            telemetry if telemetry is not None and telemetry.enabled else None
        )
        self._events = events
        self._slow_query_threshold = slow_query_threshold
        if fault_injector is not None:
            attach = getattr(index, "attach_fault_injector", None)
            if attach is None:
                raise ConfigurationError(
                    f"{type(index).__name__} has no fault-injection seam; "
                    "use a ReplicatedShardedIndex"
                )
            attach(fault_injector)
        if events is not None:
            attach_events = getattr(index, "attach_event_log", None)
            if attach_events is not None:
                attach_events(events)
        self._scheduler = (
            MaintenanceScheduler(
                index,
                maintenance,
                tracer=self._telemetry.tracer if self._telemetry else None,
                events=events,
            )
            if maintenance is not None
            else None
        )

    def _resolve_backend(
        self, requested: str | None, index: ShardedIndex
    ) -> str:
        """Settle the dispatch backend at construction time.

        Explicit argument > :data:`BACKEND_ENV` (only when more than one
        worker was resolved — the env knob widens parallel setups, it
        never un-sequentializes a deliberate single-worker executor) >
        the historical worker-count default.  Unknown names raise either
        way; ``processes`` on a replicated engine raises when asked
        explicitly and downgrades to ``threads`` when the env asked,
        because the process tier serves from driver-published snapshots
        and would silently bypass replica routing and fault injection.
        """
        explicit = requested is not None
        backend = requested
        if backend is None and self._max_workers > 1:
            backend = os.environ.get(BACKEND_ENV) or None
        if backend is None:
            return "threads" if self._max_workers > 1 else "sequential"
        if backend not in BACKENDS:
            source = "backend argument" if explicit else BACKEND_ENV
            raise ConfigurationError(
                f"unknown executor backend {backend!r} (from {source}); "
                f"choose from {BACKENDS}"
            )
        if backend == "processes" and isinstance(index, ReplicatedShardedIndex):
            if explicit:
                raise ConfigurationError(
                    "backend='processes' cannot serve a "
                    "ReplicatedShardedIndex: process workers read "
                    "driver-published snapshots and would bypass replica "
                    "routing and fault injection"
                )
            return "threads"
        return backend

    @property
    def max_workers(self) -> int:
        """Resolved thread pool width (1 = sequential fallback)."""
        return self._max_workers

    @property
    def backend(self) -> str:
        """The resolved dispatch backend (one of :data:`BACKENDS`)."""
        return self._backend

    @property
    def scheduler(self) -> MaintenanceScheduler | None:
        """The maintenance scheduler (``None`` without a policy)."""
        return self._scheduler

    @property
    def telemetry(self) -> Telemetry | None:
        """The telemetry handle (``None`` when disabled or absent)."""
        return self._telemetry

    @property
    def events(self) -> EventLog | None:
        """The event log (``None`` when absent)."""
        return self._events

    def run(self, queries: Sequence[Query | RangeQuery]) -> BatchResult:
        """Execute a batch; returns per-query merged results plus timing.

        Accepts first-class :class:`~repro.queries.query.Query` specs or
        legacy :class:`RangeQuery` windows (normalized to
        intersects/ids).  ``BatchResult.query_results`` carries the full
        per-query payloads; ``results`` keeps the legacy id-array view.

        With a maintenance policy configured, the scheduler is ticked
        once per executed query *after* the batch completes — its
        compaction/rebalancing work happens between batches and is
        charged to the scheduler's report, never to the batch's
        ``seconds``.
        """
        tel = self._telemetry
        before = self._index.stats.snapshot() if tel is not None else None
        out = self._run_batch(queries)
        if self._scheduler is not None:
            self._scheduler.after_ops(len(queries))
        if tel is not None and before is not None:
            self._record_batch(tel, out, before)
        if (
            self._events is not None
            and self._slow_query_threshold is not None
        ):
            self._log_slow_queries(out)
        return out

    def _record_batch(
        self, tel: Telemetry, out: BatchResult, before: IndexStats
    ) -> None:
        """Flow one batch's timings and stats delta into the registry.

        Runs *after* the maintenance tick so work triggered by this
        batch (compaction, rebalancing) lands in the same stats delta —
        window attribution in a TimeSeriesRecorder then lines up with
        the scheduler's spans.
        """
        reg = tel.registry
        reg.histogram(BATCH_SECONDS).record(out.seconds)
        query_hist = reg.histogram(QUERY_SECONDS)
        for result in out.query_results:
            query_hist.record(result.seconds)
        if out.mode != "sequential":
            shard_hist = reg.histogram(SHARD_BATCH_SECONDS)
            for seconds in out.shard_seconds:
                if seconds:
                    shard_hist.record(seconds)
            reg.histogram(BATCH_ROUTE_SECONDS).record(out.route_seconds)
            reg.histogram(BATCH_FANOUT_SECONDS).record(out.fanout_seconds)
            reg.histogram(BATCH_MERGE_SECONDS).record(out.merge_seconds)
        record_stats_delta(reg, self._index.stats.delta_since(before))

    def _log_slow_queries(self, out: BatchResult) -> None:
        """Emit one ``slow_query`` event per over-threshold query.

        Payloads carry the whole diagnostic picture a latency histogram
        cannot: the offending window, its predicate/mode, and the
        owning batch's fan-out profile — which shards did the work (and
        for how long), how many were pruned, and how the batch's time
        split across route/fan-out/merge.  Bounded by the event log's
        ring, so a pathological batch cannot balloon memory.
        """
        threshold = self._slow_query_threshold
        visited = sum(1 for n in out.shard_queries if n)
        pruned = (
            self._index.n_shards - visited
            if out.mode != "sequential"
            else None
        )
        for result in out.query_results:
            if result.seconds <= threshold:
                continue
            q = result.query
            self._events.emit(
                "slow_query",
                seq=q.seq,
                predicate=q.predicate,
                mode=q.mode,
                window_lo=q.window.lo,
                window_hi=q.window.hi,
                seconds=result.seconds,
                count=result.count,
                batch_mode=out.mode,
                batch_seconds=out.seconds,
                batch_queries=out.n_queries,
                shards_visited=visited,
                shards_pruned=pruned,
                shard_seconds=out.shard_seconds,
                route_seconds=out.route_seconds,
                fanout_seconds=out.fanout_seconds,
                merge_seconds=out.merge_seconds,
            )

    @staticmethod
    def _ids_of(result: QueryResult) -> np.ndarray:
        """The legacy id-array view of a result (empty for count-only)."""
        if result.ids is None:
            return np.empty(0, dtype=np.int64)
        return result.ids

    def _run_batch(
        self, queries: Sequence[Query | RangeQuery]
    ) -> BatchResult:
        index = self._index
        if not index.is_built:
            index.build()
        queries = [as_query(q) for q in queries]
        t0 = time.perf_counter()
        if self._backend == "sequential":
            # The engine's native sequential batch: routing happens inside
            # execute_batch (a second pass here would double-count the
            # prune counters), so shard_queries stays zeroed.
            query_results = index.execute_batch(queries)
            out = BatchResult(
                results=[self._ids_of(r) for r in query_results],
                query_results=query_results,
                mode="sequential",
                workers=1,
                shard_queries=[0] * index.n_shards,
                shard_seconds=[0.0] * index.n_shards,
            )
            out.seconds = time.perf_counter() - t0
            return out
        if self._backend == "processes":
            return self._run_processes(queries, t0)
        return self._run_parallel(queries, t0)

    def _route(self, queries: list[Query]) -> dict[int, list[int]]:
        """Route every query onto shard queues, on the calling thread.

        Shared by the thread and process backends: prune counters and
        the epoch check stay single-threaded, and each shard receives
        its queue in batch order.
        """
        index = self._index
        index._check_epoch()
        queues: dict[int, list[int]] = {}
        for i, q in enumerate(queries):
            # The same dimension gate index.execute() applies — a wrong-d
            # window must raise here too, not broadcast into a nonsense
            # prune mask.
            if q.ndim != index.store.ndim:
                raise QueryError(
                    f"query has {q.ndim} dims, store has {index.store.ndim}"
                )
            for shard in index.plan_shards(q):
                queues.setdefault(shard.sid, []).append(i)
        return queues

    def _run_parallel(self, queries: list[Query], t0: float) -> BatchResult:
        index = self._index
        queues = self._route(queries)
        t_routed = time.perf_counter()
        workers = max(1, self._max_workers)

        def work(
            shard: Shard, idxs: list[int]
        ) -> tuple[list[int], list[QueryResult], float]:
            # One task per shard per batch: the whole sub-batch goes
            # through the shard index's native execute_batch, so shard
            # indexes batch their own candidate matrices / merges.  Each
            # task times itself — pool queueing excluded, so the numbers
            # expose shard skew rather than dispatch order.
            # serving_index() is the replication seam: a replicated
            # shard picks its least-loaded live replica here, once per
            # shard per batch, so the chosen replica stays
            # single-threaded for the whole sub-batch.
            w0 = time.perf_counter()
            sub = shard.serving_index().execute_batch(
                [queries[i] for i in idxs]
            )
            return idxs, sub, time.perf_counter() - w0

        partials: dict[int, list[QueryResult]] = {}
        shard_queries = [0] * index.n_shards
        shard_seconds = [0.0] * index.n_shards
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                (sid, pool.submit(work, index.shards[sid], idxs))
                for sid, idxs in queues.items()
            ]
            for sid, future in futures:
                idxs, sub, seconds = future.result()
                shard_seconds[sid] = seconds
                for i, res in zip(idxs, sub):
                    partials.setdefault(i, []).append(res)
        t_joined = time.perf_counter()
        for sid, idxs in queues.items():
            shard_queries[sid] = len(idxs)
        # Merging (and its timing) is shared with the engine's native
        # sequential batch: counters, equal-share seconds, and the
        # post-merge wall-clock capture all live in _assemble_batch.
        query_results = index._assemble_batch(queries, partials, t0)
        t_done = time.perf_counter()
        return BatchResult(
            results=[self._ids_of(r) for r in query_results],
            query_results=query_results,
            seconds=t_done - t0,
            mode="parallel",
            workers=workers,
            shard_queries=shard_queries,
            shard_seconds=shard_seconds,
            route_seconds=t_routed - t0,
            fanout_seconds=t_joined - t_routed,
            merge_seconds=t_done - t_joined,
        )

    def _ensure_pool(self) -> ProcessPool:
        """The persistent process pool, created on first process batch.

        Lazy on purpose: the sequential and thread backends never pay
        the multiprocessing import, and the pool forks only after the
        engine is built (workers inherit a warm interpreter under the
        fork start method).
        """
        if self._pool is None:
            from repro.parallel.pool import ProcessPool

            self._pool = ProcessPool(
                self._index,
                n_workers=max(1, self._max_workers),
                telemetry=self._telemetry,
                events=self._events,
            )
        return self._pool

    def _run_processes(self, queries: list[Query], t0: float) -> BatchResult:
        """The process backend: same shape as threads, different labor.

        Routing, merging, counters, and maintenance all stay
        driver-side (identical to :meth:`_run_parallel`); only the
        per-shard sub-batch execution crosses the process boundary.
        ``shard_seconds`` carries the worker-measured in-process
        wall-clock, so skew stays observable without clock-domain
        games.
        """
        index = self._index
        queues = self._route(queries)
        t_routed = time.perf_counter()
        pool = self._ensure_pool()
        served = pool.run_batch(queries, queues)
        t_joined = time.perf_counter()
        partials: dict[int, list[QueryResult]] = {}
        shard_queries = [0] * index.n_shards
        shard_seconds = [0.0] * index.n_shards
        for sid, (idxs, sub, seconds) in served.items():
            shard_queries[sid] = len(idxs)
            shard_seconds[sid] = seconds
            for i, res in zip(idxs, sub):
                partials.setdefault(i, []).append(res)
        query_results = index._assemble_batch(queries, partials, t0)
        t_done = time.perf_counter()
        return BatchResult(
            results=[self._ids_of(r) for r in query_results],
            query_results=query_results,
            seconds=t_done - t0,
            mode="processes",
            workers=pool.n_workers,
            shard_queries=shard_queries,
            shard_seconds=shard_seconds,
            route_seconds=t_routed - t0,
            fanout_seconds=t_joined - t_routed,
            merge_seconds=t_done - t_joined,
        )

    def close(self) -> None:
        """Tear down backend resources (the process pool, if started).

        Idempotent; the sequential and thread backends hold nothing, so
        this is a no-op for them.  After closing, the next process-mode
        batch transparently starts a fresh pool.
        """
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> QueryExecutor:
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        self.close()
        return False
