"""Batch query execution across shards, on a thread pool or sequentially.

Serving engines amortize dispatch over *batches*: the
:class:`QueryExecutor` takes a list of range queries, plans each one
against the shard MBBs (the pruning step, done on the coordinating
thread so counters never race), then executes with **shard affinity** —
one task per shard, each running that shard's portion of the batch in
submission order.  A shard's index is therefore only ever touched by a
single thread at a time, which makes the scheme safe for *incremental*
shard indexes whose queries physically reorganize their store (QUASII
cracking).  NumPy releases the GIL inside the hot kernels (the
vectorized intersection scans and partition passes), so shard tasks
overlap on multi-core machines; on a single core the pool degrades to
roughly sequential execution plus a small dispatch cost.

``max_workers <= 1`` selects the plain sequential fallback (no threads
at all) — useful as a baseline and on interpreters/platforms where
thread pools are unwanted.

Passing a :class:`~repro.sharding.maintenance.MaintenancePolicy` makes
the executor the maintenance driver too: after every batch it ticks a
:class:`~repro.sharding.maintenance.MaintenanceScheduler`, which
compacts tombstone-heavy shards and rebalances drifted ones — the
serving loop needs no ad-hoc ``maybe_compact`` calls sprinkled between
batches.  Maintenance time is charged to the scheduler's report, not to
any batch's ``seconds``.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError, QueryError
from repro.queries.query import Query, QueryResult, as_query
from repro.queries.range_query import RangeQuery
from repro.sharding.maintenance import MaintenancePolicy, MaintenanceScheduler
from repro.sharding.shard import Shard
from repro.sharding.sharded_index import ShardedIndex


@dataclass
class BatchResult:
    """Outcome of one executed query batch.

    Attributes
    ----------
    results:
        One id array per query, in batch order (merged + deduplicated;
        empty for count-only queries — their payload lives in
        ``query_results``).
    query_results:
        One full :class:`~repro.queries.query.QueryResult` per query,
        in batch order — counts, boxes, and top-k payloads for
        non-``ids`` modes.
    seconds:
        Wall-clock for the whole batch (planning + fan-out + merge).
    mode:
        ``"parallel"`` or ``"sequential"``.
    workers:
        Thread count used (1 for the sequential fallback).
    shard_queries:
        Per-shard number of (query, shard) executions — the fan-out
        profile; its sum can exceed ``len(results)`` when queries span
        shards and be below it when pruning wins.
    """

    results: list[np.ndarray] = field(default_factory=list)
    query_results: list[QueryResult] = field(default_factory=list)
    seconds: float = 0.0
    mode: str = "sequential"
    workers: int = 1
    shard_queries: list[int] = field(default_factory=list)

    @property
    def n_queries(self) -> int:
        """Number of executed queries."""
        return len(self.results)

    def throughput(self) -> float:
        """Queries per second over the batch."""
        return self.n_queries / self.seconds if self.seconds > 0 else float("inf")


class QueryExecutor:
    """Run query batches against a :class:`ShardedIndex`.

    Parameters
    ----------
    index:
        The sharded engine; built on first use if necessary.
    max_workers:
        Thread pool width.  ``None`` uses ``os.cpu_count()`` capped at
        the shard count; ``<= 1`` selects the sequential fallback.
    maintenance:
        Optional :class:`MaintenancePolicy`; when given, a
        :class:`MaintenanceScheduler` is ticked after every executed
        batch, so compaction and rebalancing ride the serving loop
        (cracking-style) instead of needing ad-hoc call sites.
    """

    def __init__(
        self,
        index: ShardedIndex,
        max_workers: int | None = None,
        maintenance: MaintenancePolicy | None = None,
    ) -> None:
        if max_workers is not None and max_workers < 0:
            raise ConfigurationError(
                f"max_workers must be >= 0, got {max_workers}"
            )
        self._index = index
        if max_workers is None:
            max_workers = min(os.cpu_count() or 1, index.n_shards)
        self._max_workers = int(max_workers)
        self._scheduler = (
            MaintenanceScheduler(index, maintenance)
            if maintenance is not None
            else None
        )

    @property
    def max_workers(self) -> int:
        """Resolved thread pool width (1 = sequential fallback)."""
        return self._max_workers

    @property
    def scheduler(self) -> MaintenanceScheduler | None:
        """The maintenance scheduler (``None`` without a policy)."""
        return self._scheduler

    def run(self, queries: Sequence[Query | RangeQuery]) -> BatchResult:
        """Execute a batch; returns per-query merged results plus timing.

        Accepts first-class :class:`~repro.queries.query.Query` specs or
        legacy :class:`RangeQuery` windows (normalized to
        intersects/ids).  ``BatchResult.query_results`` carries the full
        per-query payloads; ``results`` keeps the legacy id-array view.

        With a maintenance policy configured, the scheduler is ticked
        once per executed query *after* the batch completes — its
        compaction/rebalancing work happens between batches and is
        charged to the scheduler's report, never to the batch's
        ``seconds``.
        """
        out = self._run_batch(queries)
        if self._scheduler is not None:
            self._scheduler.after_ops(len(queries))
        return out

    @staticmethod
    def _ids_of(result: QueryResult) -> np.ndarray:
        """The legacy id-array view of a result (empty for count-only)."""
        if result.ids is None:
            return np.empty(0, dtype=np.int64)
        return result.ids

    def _run_batch(
        self, queries: Sequence[Query | RangeQuery]
    ) -> BatchResult:
        index = self._index
        if not index.is_built:
            index.build()
        queries = [as_query(q) for q in queries]
        t0 = time.perf_counter()
        if self._max_workers <= 1:
            # The engine's native sequential batch: routing happens inside
            # execute_batch (a second pass here would double-count the
            # prune counters), so shard_queries stays zeroed.
            query_results = index.execute_batch(queries)
            out = BatchResult(
                results=[self._ids_of(r) for r in query_results],
                query_results=query_results,
                mode="sequential",
                workers=1,
                shard_queries=[0] * index.n_shards,
            )
            out.seconds = time.perf_counter() - t0
            return out
        return self._run_parallel(queries, t0)

    def _run_parallel(self, queries: list[Query], t0: float) -> BatchResult:
        index = self._index
        # Route every query up front on this thread: prune counters and
        # the epoch check stay single-threaded, and each shard receives
        # its queue in batch order.
        index._check_epoch()
        queues: dict[int, list[int]] = {}
        for i, q in enumerate(queries):
            # The same dimension gate index.execute() applies — a wrong-d
            # window must raise here too, not broadcast into a nonsense
            # prune mask.
            if q.ndim != index.store.ndim:
                raise QueryError(
                    f"query has {q.ndim} dims, store has {index.store.ndim}"
                )
            for shard in index.plan_shards(q):
                queues.setdefault(shard.sid, []).append(i)

        def work(shard: Shard, idxs: list[int]):
            # One task per shard per batch: the whole sub-batch goes
            # through the shard index's native execute_batch, so shard
            # indexes batch their own candidate matrices / merges.
            return idxs, shard.index.execute_batch([queries[i] for i in idxs])

        partials: dict[int, list[QueryResult]] = {}
        shard_queries = [0] * index.n_shards
        with ThreadPoolExecutor(max_workers=self._max_workers) as pool:
            futures = [
                pool.submit(work, index.shards[sid], idxs)
                for sid, idxs in queues.items()
            ]
            for future in futures:
                idxs, sub = future.result()
                for i, res in zip(idxs, sub):
                    partials.setdefault(i, []).append(res)
        for sid, idxs in queues.items():
            shard_queries[sid] = len(idxs)
        # Merging (and its timing) is shared with the engine's native
        # sequential batch: counters, equal-share seconds, and the
        # post-merge wall-clock capture all live in _assemble_batch.
        query_results = index._assemble_batch(queries, partials, t0)
        return BatchResult(
            results=[self._ids_of(r) for r in query_results],
            query_results=query_results,
            seconds=time.perf_counter() - t0,
            mode="parallel",
            workers=self._max_workers,
            shard_queries=shard_queries,
        )
