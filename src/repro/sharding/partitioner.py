"""Partitioners: how the serving engine divides rows among shards.

A partitioner answers two questions, at two different moments:

* :meth:`Partitioner.assign` — the **build-time split**: given every box
  in the store, produce a shard id per row.  Called once, when the
  :class:`~repro.sharding.sharded_index.ShardedIndex` is built.
* :meth:`Partitioner.route` — the **insert-time routing**: given a batch
  of new boxes and the current shard MBBs/loads, pick an owning shard
  per box.  Called on every insert so each shard keeps cracking
  adaptively on its own slice of the data.

Two strategies ship with the library:

* :class:`STRPartitioner` — Sort-Tile-Recursive spatial tiling (the
  recursion behind the R-Tree bulk load, run with an exact shard
  budget): shards become compact spatial bricks of near-equal object
  count, so small queries intersect few shard MBBs and fan-out prunes
  most shards.  Inserts are routed by
  least margin enlargement (Guttman's ChooseLeaf criterion, on the
  MBB's summed side lengths so degenerate point boxes still
  discriminate), ties broken toward the least-loaded shard.
* :class:`RoundRobinPartitioner` — the null hypothesis: rows are dealt
  out cyclically, shard MBBs all cover (roughly) the whole universe, and
  queries fan out everywhere.  Perfect load balance, zero pruning — the
  bench uses it to show how much the spatial split buys.
"""

from __future__ import annotations

import abc
import math

import numpy as np

from repro.errors import ConfigurationError


class Partitioner(abc.ABC):
    """Strategy object deciding shard ownership of rows."""

    #: Machine-readable strategy name (registry key).
    name: str = "abstract"

    @abc.abstractmethod
    def assign(self, lo: np.ndarray, hi: np.ndarray, n_shards: int) -> np.ndarray:
        """Shard id (``0..n_shards-1``) per row of the ``(n, d)`` corners.

        Every row must be assigned to exactly one shard; shards may end
        up empty (e.g. fewer rows than shards).
        """

    @abc.abstractmethod
    def route(
        self,
        lo: np.ndarray,
        hi: np.ndarray,
        shard_lo: np.ndarray,
        shard_hi: np.ndarray,
        loads: np.ndarray,
    ) -> np.ndarray:
        """Owning shard id per row of an insert batch.

        ``shard_lo``/``shard_hi`` are the ``(k, d)`` stacked shard MBBs
        (inverted — ``lo=+inf, hi=-inf`` — for empty shards) and
        ``loads`` the per-shard live row counts.
        """


class STRPartitioner(Partitioner):
    """Sort-Tile-Recursive spatial tiling into ``n_shards`` compact bricks.

    The classic STR packing (:func:`repro.baselines.rtree.str_bulkload.str_pack`)
    targets a *capacity* and lets per-level ceilings decide the tile
    count; a serving engine needs exactly ``K`` shards, so this variant
    runs the same sort-and-slab recursion with an exact shard budget:
    each level sorts on one center coordinate and cuts the rows into
    ``ceil(K_left^(1/dims_left))`` slabs whose *row counts are
    proportional to the shard counts they will contain*.  The result is
    exactly ``K`` near-cubical tiles of near-equal object count — compact
    tiles matter, because every query window crossing a shard boundary
    pays one extra fan-out visit.
    """

    name = "str"

    def assign(self, lo: np.ndarray, hi: np.ndarray, n_shards: int) -> np.ndarray:
        """STR-tile the boxes into exactly ``n_shards`` compact bricks.

        Recursively sorts on one center coordinate per level and cuts
        the rows into slabs whose row counts are proportional to the
        shard counts they will contain — near-equal object count per
        shard, near-cubical tiles.
        """
        n = lo.shape[0]
        ndim = lo.shape[1]
        owners = np.empty(n, dtype=np.int64)
        if n == 0:
            return owners
        centers = (lo + hi) * 0.5

        def tile(rows: np.ndarray, dim: int, k: int, first_sid: int) -> None:
            if k == 1 or rows.size == 0:
                owners[rows] = first_sid
                return
            dims_left = ndim - dim
            slabs = k if dims_left <= 1 else math.ceil(k ** (1.0 / dims_left))
            # Spread k shards over the slabs as evenly as possible.
            base, extra = divmod(k, slabs)
            shard_counts = [base + 1] * extra + [base] * (slabs - extra)
            order = rows[np.argsort(centers[rows, dim], kind="stable")]
            taken_rows = taken_shards = 0
            for count in shard_counts:
                begin = taken_rows
                taken_shards += count
                taken_rows = round(rows.size * taken_shards / k)
                tile(
                    order[begin:taken_rows],
                    min(dim + 1, ndim - 1),
                    count,
                    first_sid,
                )
                first_sid += count

        tile(np.arange(n, dtype=np.int64), 0, n_shards, 0)
        return owners

    def route(
        self,
        lo: np.ndarray,
        hi: np.ndarray,
        shard_lo: np.ndarray,
        shard_hi: np.ndarray,
        loads: np.ndarray,
    ) -> np.ndarray:
        """Route each box to the shard whose MBB it enlarges the least
        (Guttman's ChooseLeaf criterion on margins), exact ties broken
        toward the least-loaded shard."""
        # Margin (summed side length) enlargement of each shard MBB per
        # row; margin rather than volume so degenerate (point/line) boxes
        # still produce a gradient.  Empty shards have zero margin, so
        # adopting a box "costs" only the box's own margin — they fill up
        # naturally instead of staying empty forever.
        margins = np.maximum(shard_hi - shard_lo, 0.0).sum(axis=1)  # (k,)
        merged = (
            np.maximum(shard_hi[:, None, :], hi[None, :, :])
            - np.minimum(shard_lo[:, None, :], lo[None, :, :])
        ).sum(axis=2)  # (k, m)
        enlargement = merged - margins[:, None]
        # argmin picks the first minimum; pre-ordering rows by load makes
        # that "least-loaded among exact ties".
        by_load = np.argsort(loads, kind="stable")
        return by_load[np.argmin(enlargement[by_load], axis=0)]


class RoundRobinPartitioner(Partitioner):
    """Deal rows out cyclically — balanced but spatially oblivious."""

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def assign(self, lo: np.ndarray, hi: np.ndarray, n_shards: int) -> np.ndarray:
        """Deal rows out cyclically: row ``i`` goes to shard ``i % K``."""
        return np.arange(lo.shape[0], dtype=np.int64) % n_shards

    def route(
        self,
        lo: np.ndarray,
        hi: np.ndarray,
        shard_lo: np.ndarray,
        shard_hi: np.ndarray,
        loads: np.ndarray,
    ) -> np.ndarray:
        """Continue the cyclic deal across insert batches (a persistent
        cursor keeps consecutive batches evenly spread)."""
        k = shard_lo.shape[0]
        m = lo.shape[0]
        targets = (self._cursor + np.arange(m, dtype=np.int64)) % k
        self._cursor = int((self._cursor + m) % k)
        return targets


#: Registry: strategy name -> partitioner class.
PARTITIONERS: dict[str, type[Partitioner]] = {
    STRPartitioner.name: STRPartitioner,
    RoundRobinPartitioner.name: RoundRobinPartitioner,
}


def make_partitioner(spec: str | Partitioner) -> Partitioner:
    """Resolve a strategy name (or pass through an instance)."""
    if isinstance(spec, Partitioner):
        return spec
    try:
        return PARTITIONERS[spec]()
    except KeyError:
        raise ConfigurationError(
            f"unknown partitioner {spec!r}; choose from {sorted(PARTITIONERS)}"
        ) from None
