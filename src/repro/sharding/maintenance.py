"""Automatic maintenance on the query path: compaction + rebalancing.

Database cracking's core bargain is that maintenance rides on queries —
no stop-the-world rebuilds, just bounded work amortized over the requests
that need it.  This module extends the bargain to the two maintenance
verbs the update subsystem introduced:

* **Compaction** (PR 3's :meth:`~repro.sharding.sharded_index.ShardedIndex.maybe_compact`
  / :meth:`~repro.index.base.MutableSpatialIndex.compact`) — physically
  reclaim tombstoned rows once the dead fraction crosses a threshold.
* **Rebalancing** (:class:`~repro.sharding.rebalancer.Rebalancer`) —
  split hot shards / merge cold ones once the observed balance or
  query-load skew drifts.

A :class:`MaintenancePolicy` is pure data (thresholds + cadence); a
:class:`MaintenanceScheduler` binds one policy to one index and is
ticked from the query path — the
:class:`~repro.sharding.executor.QueryExecutor` ticks it after every
batch, and :func:`repro.updates.executor.run_mixed_workload` after every
operation, replacing ad-hoc ``maybe_compact`` call sites with one
uniform, policy-driven hook.  The scheduler works for *any*
:class:`~repro.index.base.MutableSpatialIndex` (plain indexes get
dead-fraction-gated compaction; sharded engines additionally get
per-shard compaction and rebalancing).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.index.base import MutableSpatialIndex
from repro.sharding.rebalancer import Rebalancer, RebalanceResult
from repro.sharding.sharded_index import ShardedIndex
from repro.telemetry.events import EventLog
from repro.telemetry.tracer import DISABLED, Tracer


@dataclass(frozen=True)
class MaintenancePolicy:
    """Thresholds and cadence for query-path maintenance.

    Attributes
    ----------
    check_every:
        Operations between maintenance checks.  Checks are cheap
        (counter comparisons); the work itself only happens when a
        threshold is crossed, so small values buy responsiveness at
        negligible steady-state cost.
    dead_fraction:
        Tombstoned fraction above which a store (or shard) compacts;
        the PR 3 ``maybe_compact`` knob.
    rebalance:
        Whether to rebalance sharded engines at all (compaction-only
        policies set this ``False``).
    max_balance:
        Live-row balance factor (max/mean shard size) that triggers a
        rebalancing pass — drifts under skewed *ingestion*.
    max_query_skew:
        Query-load skew (max/mean fan-out executions) that triggers a
        pass — drifts under skewed *traffic*.
    min_queries:
        Profiled queries required before the first pass after (re)build
        or a previous pass; guards against re-tiling on noise.
    recover_replicas:
        Whether maintenance checks heal dead replicas on replication-
        aware engines (ledger replay via ``recover_all``).  Irrelevant
        for plain engines; ``False`` leaves recovery to explicit calls
        (fault-injection tests want the corpse to stay dead).
    """

    check_every: int = 64
    dead_fraction: float = 0.3
    rebalance: bool = True
    max_balance: float = 1.5
    max_query_skew: float = 2.5
    min_queries: int = 64
    recover_replicas: bool = False

    def __post_init__(self) -> None:
        if self.check_every < 1:
            raise ConfigurationError(
                f"check_every must be >= 1, got {self.check_every}"
            )
        if not 0.0 <= self.dead_fraction < 1.0:
            raise ConfigurationError(
                f"dead_fraction must be in [0, 1), got {self.dead_fraction}"
            )
        if self.max_balance < 1.0:
            raise ConfigurationError(
                f"max_balance must be >= 1.0, got {self.max_balance}"
            )
        if self.max_query_skew < 1.0:
            raise ConfigurationError(
                f"max_query_skew must be >= 1.0, got {self.max_query_skew}"
            )
        if self.min_queries < 1:
            raise ConfigurationError(
                f"min_queries must be >= 1, got {self.min_queries}"
            )

    def make_rebalancer(self) -> Rebalancer:
        """A :class:`Rebalancer` configured with this policy's thresholds."""
        return Rebalancer(
            max_balance=self.max_balance,
            max_query_skew=self.max_query_skew,
            min_queries=self.min_queries,
        )


@dataclass
class MaintenanceReport:
    """Cumulative outcome of a scheduler's maintenance ticks.

    Attributes
    ----------
    checks:
        Maintenance checks performed (every ``check_every`` ops).
    compaction_passes:
        Checks on which compaction actually reclaimed rows.
    rows_reclaimed:
        Logical rows reclaimed by those compactions (mirror tombstones
        dropped — each deleted row counted once, shard copies excluded).
    rebalances:
        Rebalancing passes applied.
    rows_migrated:
        Rows whose owning shard changed across those passes.
    replicas_recovered:
        Dead replicas healed by ledger replay during checks (only with
        ``policy.recover_replicas`` on a replication-aware engine).
    seconds:
        Wall-clock spent inside maintenance (off the per-query timings;
        the amortized price of staying tight).
    last_rebalance:
        The most recent pass's :class:`RebalanceResult`, if any.
    """

    checks: int = 0
    compaction_passes: int = 0
    rows_reclaimed: int = 0
    rebalances: int = 0
    rows_migrated: int = 0
    replicas_recovered: int = 0
    seconds: float = 0.0
    last_rebalance: RebalanceResult | None = field(default=None, repr=False)


class MaintenanceScheduler:
    """Bind a :class:`MaintenancePolicy` to one index and tick it.

    Executors call :meth:`after_ops` once per executed operation (or
    batch); every ``policy.check_every`` accumulated operations the
    scheduler runs one maintenance check: dead-fraction-gated compaction
    first (reclaiming space also re-tightens shard MBBs, which makes the
    subsequent drift measurement honest), then — for sharded engines
    with ``policy.rebalance`` — one bounded rebalancing pass if the
    observed drift crossed a threshold.  All work is attributed to
    :attr:`report`, never to the caller's per-op timings.
    """

    def __init__(
        self,
        index: MutableSpatialIndex,
        policy: MaintenancePolicy | None = None,
        tracer: Tracer | None = None,
        events: EventLog | None = None,
    ) -> None:
        if not isinstance(index, MutableSpatialIndex):
            raise ConfigurationError(
                f"{type(index).__name__} supports no maintenance verbs; "
                "use a MutableSpatialIndex"
            )
        self._index = index
        self.policy = policy or MaintenancePolicy()
        #: Spans named ``maintenance.check`` / ``maintenance.compact`` /
        #: ``maintenance.rebalance`` trace every pass when a tracer is
        #: given (docs/OBSERVABILITY.md); the shared disabled tracer
        #: keeps the code branch-free otherwise.
        self.tracer = tracer if tracer is not None else DISABLED
        #: Optional event log: work-performing passes emit
        #: ``maintenance.compact`` / ``maintenance.rebalance`` events
        #: mirroring the spans above (attrs + pass duration), so a
        #: structured log can explain a pause without span access.
        self.events = events
        self._rebalancer = (
            self.policy.make_rebalancer()
            if self.policy.rebalance and isinstance(index, ShardedIndex)
            else None
        )
        self._pending_ops = 0
        #: Cumulative outcome across all ticks (read it at run end).
        self.report = MaintenanceReport()

    @property
    def index(self) -> MutableSpatialIndex:
        """The index under maintenance."""
        return self._index

    def after_ops(self, count: int = 1) -> bool:
        """Account ``count`` executed operations; maybe run a check.

        Returns ``True`` when a maintenance check ran (not necessarily
        that it did any work).  The cadence is measured in operations,
        not wall-clock, so replays are deterministic.  At most one check
        runs per call — several back-to-back checks with no operations
        in between would observe identical state — but the op counter
        keeps its remainder modulo ``check_every``, so the average
        cadence holds across calls of any batch size.
        """
        self._pending_ops += int(count)
        if self._pending_ops < self.policy.check_every:
            return False
        self._pending_ops %= self.policy.check_every
        self.run()
        return True

    def run(self) -> MaintenanceReport:
        """Run one maintenance check now, regardless of cadence.

        Compaction first, then rebalancing; both are no-ops unless their
        thresholds are crossed.  Returns the cumulative :attr:`report`.
        """
        t0 = time.perf_counter()
        self.report.checks += 1
        index = self._index
        with self.tracer.span("maintenance.check") as check:
            tc = time.perf_counter()
            with self.tracer.span("maintenance.compact") as span:
                if isinstance(index, ShardedIndex):
                    reclaimed = index.maybe_compact(self.policy.dead_fraction)
                else:
                    store = index.store
                    reclaimed = 0
                    if (
                        store.n
                        and store.n_dead / store.n > self.policy.dead_fraction
                    ):
                        reclaimed = index.compact()
                span.set(rows_reclaimed=reclaimed)
            if reclaimed:
                self.report.compaction_passes += 1
                self.report.rows_reclaimed += reclaimed
                if self.events is not None:
                    self.events.emit(
                        "maintenance.compact",
                        rows_reclaimed=reclaimed,
                        seconds=time.perf_counter() - tc,
                        check=self.report.checks,
                    )
            rows_migrated = 0
            if self._rebalancer is not None:
                tr = time.perf_counter()
                with self.tracer.span("maintenance.rebalance") as span:
                    result = self._rebalancer.maybe_rebalance(index)
                    if result is not None:
                        rows_migrated = result.rows_migrated
                    span.set(
                        applied=result is not None, rows_migrated=rows_migrated
                    )
                if result is not None:
                    self.report.rebalances += 1
                    self.report.rows_migrated += result.rows_migrated
                    self.report.last_rebalance = result
                    if self.events is not None:
                        self.events.emit(
                            "maintenance.rebalance",
                            rows_migrated=rows_migrated,
                            seconds=time.perf_counter() - tr,
                            check=self.report.checks,
                        )
            recovered = 0
            if self.policy.recover_replicas:
                # Self-healing for replication-aware engines: ledger-
                # replay every dead replica back to life.  Last in the
                # check so recovery fingerprints compare against
                # already-compacted, already-rebalanced peers.
                recover_all = getattr(index, "recover_all", None)
                if recover_all is not None:
                    recovered = int(recover_all())
                    self.report.replicas_recovered += recovered
            check.set(
                rows_reclaimed=reclaimed,
                rows_migrated=rows_migrated,
                replicas_recovered=recovered,
            )
        self.report.seconds += time.perf_counter() - t0
        return self.report

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MaintenanceScheduler(index={self._index.name!r}, "
            f"policy={self.policy})"
        )
