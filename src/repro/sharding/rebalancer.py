"""Query-driven shard rebalancing: split hot shards, merge cold ones.

The serving engine's initial partitioning is *data-driven* (STR bricks of
near-equal row count) and static.  Real traffic is neither uniform nor
stationary: a hotspot concentrates queries — and, under skewed ingestion,
new rows — on few shards, so the balance factor and the per-query work
drift away from the build-time optimum.  QUASII's thesis is that the
*query* distribution should drive index structure; this module applies
the same idea one level up, to the partition layout itself (the
workload-aware partitioning direction of WISK and "The Case for Learned
Spatial Indexes"), incrementally and in cracking spirit: no
stop-the-world re-tiling, just one bounded split+merge pass whenever the
observed drift crosses a threshold.

Three pieces:

* :class:`WorkloadProfile` — the observed query distribution.  The
  engine records every planned query's centroid (a bounded window) and
  the profile reads per-shard load deltas (queries served, rows
  scanned, results returned) straight from the cumulative shard-index
  counters against a baseline snapshot, so profiling adds no work to
  the query path beyond one appended centroid.
* :class:`ShardLoad` — one shard's load since the baseline: query
  count, scanned-row waste, selectivity, dead fraction.
* :class:`Rebalancer` — the decision + mechanics.  When the live-row
  balance factor or the query-load skew drifts past its threshold, one
  pass (1) merges the coldest shard away by routing its rows to the
  least-enlargement survivors, then (2) splits the hottest shard's rows
  at the median of the observed query centroids inside it, rebuilding
  the two halves as fresh shards.  Rows migrate shard-to-shard only;
  the ingest mirror is untouched, so the ledger / live-fingerprint
  invariants hold by construction, and the ownership map plus the
  routing MBBs are re-derived from the migrated stores before the pass
  returns (stale pruning MBBs must never route an insert).

Scheduling lives in :mod:`repro.sharding.maintenance`: a
:class:`~repro.sharding.maintenance.MaintenancePolicy` threads
:meth:`Rebalancer.maybe_rebalance` (and compaction) through the query
path of the executors, amortized exactly like cracking.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.box import Box
from repro.index.base import IndexStats
from repro.queries.query import Query
from repro.queries.range_query import RangeQuery
from repro.sharding.shard import Shard

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.sharding.sharded_index import ShardedIndex


@dataclass(frozen=True)
class ShardLoad:
    """One shard's observed load since the profile's baseline snapshot.

    Attributes
    ----------
    sid:
        The shard id.
    queries:
        Windows this shard answered (fan-out executions, not engine
        queries — a pruned shard's count stays flat).
    objects_tested:
        Candidate rows the shard's index scanned for those windows.
    results:
        Result ids the shard returned.
    live_rows:
        Live rows currently owned by the shard, buffered inserts
        included (a point-in-time size, not a delta).
    dead_fraction:
        Current tombstoned fraction of the shard's physical rows.
    """

    sid: int
    queries: int
    objects_tested: int
    results: int
    live_rows: int
    dead_fraction: float

    @property
    def wasted_rows(self) -> int:
        """Rows scanned but not returned — the pruning/refinement waste."""
        return max(self.objects_tested - self.results, 0)

    @property
    def selectivity(self) -> float:
        """Results per scanned row (1.0 = every scanned row matched)."""
        return self.results / self.objects_tested if self.objects_tested else 0.0


class WorkloadProfile:
    """The engine's memory of recent traffic, for rebalancing decisions.

    Records are two-sided: query *windows* arrive push-style from
    :meth:`ShardedIndex.plan` (one :meth:`record` per planned window,
    kept in a bounded deque; centroids derive from them), while
    per-shard load counters are read
    pull-style as deltas of the cumulative shard-index
    :class:`~repro.index.base.IndexStats` against a baseline snapshot
    taken at construction and at every :meth:`rebaseline` (i.e. after
    every rebalance).  The profile never mutates shard state and adds
    O(1) work per query.

    Parameters
    ----------
    window:
        Maximum number of recent query windows retained; the split cut
        and the post-split warm-up replay derive from these, so the
        window bounds how far back "the observed query distribution"
        looks.
    """

    def __init__(self, window: int = 512) -> None:
        if window < 1:
            raise ConfigurationError(f"profile window must be >= 1, got {window}")
        self.window = int(window)
        self._windows: deque[tuple[np.ndarray, np.ndarray]] = deque(
            maxlen=self.window
        )
        self._queries_seen = 0
        self._baseline: dict[int, IndexStats] = {}

    @property
    def queries_seen(self) -> int:
        """Queries recorded since the last :meth:`rebaseline`."""
        return self._queries_seen

    def record(self, query: Query | RangeQuery) -> None:
        """Append one planned query's window (called by the engine)."""
        self._windows.append((query.lo, query.hi))
        self._queries_seen += 1

    def recent_windows(self, limit: int | None = None) -> list[tuple[np.ndarray, np.ndarray]]:
        """The most recent retained ``(lo, hi)`` windows, oldest first.

        The rebalancer replays these against freshly rebuilt shards so a
        split does not hand the next hot query a completely unrefined
        slice forest (warm-up is maintenance work, paid off the query
        path like the split itself).
        """
        if limit is None or limit >= len(self._windows):
            return list(self._windows)
        return list(self._windows)[-limit:]

    def centroids(self) -> np.ndarray:
        """The retained recent query centroids as a ``(m, d)`` matrix."""
        if not self._windows:
            return np.empty((0, 0), dtype=np.float64)
        return np.stack([(lo + hi) * 0.5 for lo, hi in self._windows])

    def centroids_within(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Retained centroids falling inside the box ``[lo, hi]``.

        The split machinery uses this to re-tile a hot shard along the
        traffic that actually landed on it.
        """
        pts = self.centroids()
        if not pts.size:
            return pts
        inside = np.all((pts >= lo) & (pts <= hi), axis=1)
        return pts[inside]

    def rebaseline(self, shards: Sequence[Shard]) -> None:
        """Snapshot shard counters as the new zero point and clear history.

        Called after every rebalance (and at engine build) so drift is
        always measured against the *current* layout, not traffic the
        previous layout already paid for.
        """
        self._baseline = {s.sid: s.index.stats.snapshot() for s in shards}
        self._windows.clear()
        self._queries_seen = 0

    def shard_loads(self, shards: Sequence[Shard]) -> list[ShardLoad]:
        """Per-shard load deltas since the baseline, in sid order."""
        loads = []
        for shard in shards:
            stats = shard.index.stats
            base = self._baseline.get(shard.sid)
            if base is None:
                base = IndexStats()
            loads.append(
                ShardLoad(
                    sid=shard.sid,
                    queries=stats.queries - base.queries,
                    objects_tested=stats.objects_tested - base.objects_tested,
                    results=stats.results_returned - base.results_returned,
                    live_rows=shard.owned_count,
                    dead_fraction=shard.dead_fraction,
                )
            )
        return loads

    def query_skew(self, shards: Sequence[Shard]) -> float:
        """Max/mean per-shard query count since baseline (1.0 = even).

        The traffic analogue of
        :meth:`~repro.sharding.sharded_index.ShardedIndex.balance_factor`:
        how unevenly the fan-out work lands on the fleet.  Shards that
        answered nothing still count in the mean — an idle shard *is*
        the skew.
        """
        counts = [load.queries for load in self.shard_loads(shards)]
        mean = sum(counts) / len(counts) if counts else 0.0
        return max(counts) / mean if mean > 0 else 1.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"WorkloadProfile(window={self.window}, "
            f"queries_seen={self._queries_seen})"
        )


@dataclass(frozen=True)
class RebalanceResult:
    """Outcome of one applied rebalancing pass.

    Attributes
    ----------
    reason:
        What tripped the pass: ``"balance"`` (live-row balance factor)
        or ``"skew"`` (query-load skew).
    hot_sid, cold_sid:
        The split shard and the merged-away shard (whose sid the second
        split half reuses).
    rows_migrated:
        Rows whose owning shard changed.
    split_dim:
        Dimension of the query-driven split cut.
    split_cut:
        Coordinate of the cut (median observed query centroid).
    balance_before, balance_after:
        Engine balance factor around the pass.
    skew_before:
        Query skew that was observed when the pass was decided.
    """

    reason: str
    hot_sid: int
    cold_sid: int
    rows_migrated: int
    split_dim: int
    split_cut: float
    balance_before: float
    balance_after: float
    skew_before: float


class Rebalancer:
    """Split hot shards and merge cold ones when observed drift says so.

    Parameters
    ----------
    max_balance:
        Live-row balance factor (max/mean) above which a pass triggers.
    max_query_skew:
        Query-load skew (max/mean fan-out executions since the profile
        baseline) above which a pass triggers.
    min_queries:
        Minimum profiled queries before any decision — guards against
        re-tiling on noise right after build or a previous pass.
    min_centroids:
        Minimum observed centroids inside the hot shard for the cut to
        be query-driven; below it the cut falls back to the row-center
        median (a plain data-driven STR-style split).
    warmup:
        How many of the most recent observed query windows to replay
        against the two rebuilt shards before the pass returns.  A
        rebuilt QUASII starts unrefined; replaying the hot traffic
        pre-cracks it along exactly the regions the next queries will
        touch, moving the re-refinement cost off the serving path and
        into the (amortized) maintenance budget.  0 disables warm-up.

    A pass preserves every engine invariant: the ingest mirror is not
    touched (live fingerprint unchanged), pending shard buffers are
    flushed first so migrated stores hold every owned row, the ownership
    map is rewritten from the migrated stores, and the stacked routing
    MBBs are rebuilt before the pass returns.  The engine's
    ``rebalances`` / ``rows_migrated`` stats counters record the work.
    """

    def __init__(
        self,
        max_balance: float = 1.5,
        max_query_skew: float = 2.5,
        min_queries: int = 64,
        min_centroids: int = 8,
        warmup: int = 32,
    ) -> None:
        if max_balance < 1.0:
            raise ConfigurationError(
                f"max_balance must be >= 1.0, got {max_balance}"
            )
        if max_query_skew < 1.0:
            raise ConfigurationError(
                f"max_query_skew must be >= 1.0, got {max_query_skew}"
            )
        if min_queries < 1:
            raise ConfigurationError(
                f"min_queries must be >= 1, got {min_queries}"
            )
        if warmup < 0:
            raise ConfigurationError(f"warmup must be >= 0, got {warmup}")
        self.max_balance = float(max_balance)
        self.max_query_skew = float(max_query_skew)
        self.min_queries = int(min_queries)
        self.min_centroids = int(min_centroids)
        self.warmup = int(warmup)

    # ------------------------------------------------------------------
    # Decision
    # ------------------------------------------------------------------
    def drift_reason(self, engine: ShardedIndex) -> str | None:
        """Why a pass should run now, or ``None`` if the layout is fine.

        ``"balance"`` when skewed ingestion inflated a shard past
        ``max_balance``; ``"skew"`` when traffic concentrates past
        ``max_query_skew``.  Engines with fewer than two shards, or with
        fewer than ``min_queries`` profiled queries, never drift.
        """
        if engine.n_shards < 2 or not engine.is_built:
            return None
        if engine.profile.queries_seen < self.min_queries:
            return None
        if engine.balance_factor() > self.max_balance:
            return "balance"
        if engine.profile.query_skew(engine.shards) > self.max_query_skew:
            # Replica-aware placement: on a replicated engine the hot
            # tile already serves from R independent replicas, which
            # absorbs *traffic* concentration directly — splitting the
            # tile would shed no load (the queries still hit the same
            # window) while paying a full re-tile.  Data imbalance
            # ("balance", above) still re-tiles regardless of R.
            if getattr(engine, "replication_factor", 1) > 1:
                return None
            return "skew"
        return None

    def maybe_rebalance(self, engine: ShardedIndex) -> RebalanceResult | None:
        """Run one pass if drift crossed a threshold; else do nothing."""
        reason = self.drift_reason(engine)
        if reason is None:
            return None
        return self.rebalance(engine, reason=reason)

    # ------------------------------------------------------------------
    # Mechanics
    # ------------------------------------------------------------------
    def rebalance(
        self, engine: ShardedIndex, reason: str = "forced"
    ) -> RebalanceResult | None:
        """Apply one split+merge pass unconditionally (K >= 2).

        Steps, in order:

        1. Flush pending shard buffers — migration moves *stores*, and a
           buffered row is not in its store yet.
        2. Pick the **hot** shard (under ``"balance"`` drift: most owned
           rows; otherwise: most fan-out queries since the profile
           baseline) and the **cold** shard (the least, by the same
           measure) — the pair whose union the pass re-tiles.
        3. Merge the cold shard into the hot one's row pool, freeing its
           sid.
        4. Split the pool in two along the observed query centroid
           distribution — the dimension with the greatest centroid
           spread inside the hot shard's MBB (the QUASII move applied to
           the partition layout: cut where the queries are).  The cut
           coordinate depends on the drift being fixed: ``"balance"``
           cuts at the pool's row-center median (each half gets half the
           rows, so the max shard size strictly shrinks), while
           ``"skew"`` cuts at the centroid median (each half gets half
           the observed traffic).  With too few observed centroids both
           degrade to a data-median STR-style cut.
        5. Rebuild the two halves as fresh shards on the hot/cold sids,
           rewrite ownership for every moved row, and re-derive the
           routing MBBs from the migrated stores — a pass must leave no
           stale pruning MBB behind, or the very next least-enlargement
           insert would route against geometry that no longer exists.

        Returns the applied :class:`RebalanceResult`, or ``None`` when
        the engine cannot rebalance (fewer than two shards).
        """
        if engine.n_shards < 2:
            return None
        if not engine.is_built:
            engine.build()
        balance_before = engine.balance_factor()
        skew_before = engine.profile.query_skew(engine.shards)
        engine.flush_updates()

        loads = engine.profile.shard_loads(engine.shards)
        if reason == "balance":
            # Size drift: pair the biggest shard with the smallest so
            # the row-median split strictly reduces the maximum.
            key = lambda l: (l.live_rows, l.queries)  # noqa: E731
        else:
            # Traffic drift: pair the busiest shard with the idlest so
            # the centroid-median split halves the hot traffic.
            key = lambda l: (l.queries, l.live_rows)  # noqa: E731
        hot = max(loads, key=key).sid
        cold = min((l for l in loads if l.sid != hot), key=key).sid

        shards = engine.shards
        hot_store, cold_store = shards[hot].store, shards[cold].store
        hot_rows, cold_rows = hot_store.live_rows(), cold_store.live_rows()
        lo = np.concatenate([hot_store.lo[hot_rows], cold_store.lo[cold_rows]])
        hi = np.concatenate([hot_store.hi[hot_rows], cold_store.hi[cold_rows]])
        ids = np.concatenate(
            [hot_store.ids[hot_rows], cold_store.ids[cold_rows]]
        )

        if ids.size < 2:
            left = np.arange(ids.size)
            right = np.arange(0)
            dim, cut = 0, float("nan")
        else:
            dim, cut = self._split_cut(engine, shards[hot], lo, hi, reason)
            centers = (lo[:, dim] + hi[:, dim]) * 0.5
            mask = centers <= cut
            if not mask.any() or mask.all():
                # Degenerate cut (all centers on one side): fall back to
                # an exact half split in center order.
                order = np.argsort(centers, kind="stable")
                mask = np.zeros(ids.size, dtype=bool)
                mask[order[: ids.size // 2]] = True
                cut = float(centers[order[ids.size // 2 - 1]])
            left = np.flatnonzero(mask)
            right = np.flatnonzero(~mask)

        # Rows whose owner changes: hot rows landing on the cold sid
        # plus cold rows landing on the hot sid.  (The first hot_rows.size
        # pool positions came from the hot store.)
        moved = int((left >= hot_rows.size).sum())
        moved += int((right < hot_rows.size).sum())
        engine.rebuild_shard(hot, lo[left], hi[left], ids[left])
        engine.rebuild_shard(cold, lo[right], hi[right], ids[right])
        self._warm_up(engine, (hot, cold))
        engine.finish_rebalance(rows_migrated=moved)
        return RebalanceResult(
            reason=reason,
            hot_sid=hot,
            cold_sid=cold,
            rows_migrated=moved,
            split_dim=int(dim),
            split_cut=float(cut),
            balance_before=balance_before,
            balance_after=engine.balance_factor(),
            skew_before=skew_before,
        )

    def _warm_up(self, engine: ShardedIndex, sids: tuple[int, ...]) -> None:
        """Replay recent observed windows against freshly rebuilt shards.

        A rebuilt shard index is unrefined; without warm-up the very
        next hot query pays the full re-cracking bill on the serving
        path, which is exactly the latency spike rebalancing is meant to
        remove.  The replay runs each retained recent window (up to
        ``warmup``, newest last) directly against the rebuilt shard
        indexes whose MBB it intersects — off the engine's query path,
        so engine-level flow counters (queries, results) are untouched,
        while the refinement work lands in the fleet work roll-up like
        any other cracking.  Runs before
        :meth:`ShardedIndex.finish_rebalance`, whose rebaseline then
        absorbs the replay's shard-counter noise.
        """
        if not self.warmup:
            return
        windows = engine.profile.recent_windows(self.warmup)
        if not windows:
            return
        for sid in sids:
            shard = engine.shards[sid]
            # Count-only replays through the first-class API: cracking
            # (the whole point of the warm-up) happens identically for
            # every result mode, and count mode skips materializing ids
            # nobody reads.
            replay = [
                Query(Box(tuple(lo), tuple(hi)), mode="count")
                for lo, hi in windows
                if np.all(lo <= shard.mbb_hi) and np.all(shard.mbb_lo <= hi)
            ]
            if replay:
                shard.index.execute_batch(replay)

    def _split_cut(
        self,
        engine: ShardedIndex,
        hot: Shard,
        lo: np.ndarray,
        hi: np.ndarray,
        reason: str,
    ) -> tuple[int, float]:
        """The (dim, cut) re-tiling the pooled hot+cold rows.

        The dimension always follows the observed query centroids inside
        the hot shard's MBB (greatest spread — cutting across the axis
        queries roam keeps each half serving a coherent slice of the
        traffic).  The coordinate depends on the drift: ``"balance"``
        takes the pool's row-center median so the halves have equal row
        counts; anything else takes the centroid median so the halves
        see equal traffic.  With fewer than ``min_centroids`` observed
        centroids both choices degrade to the data median (a plain
        STR-style split).
        """
        pts = engine.profile.centroids_within(hot.mbb_lo, hot.mbb_hi)
        centers = (lo + hi) * 0.5
        if pts.shape[0] < self.min_centroids:
            dim = int(np.argmax(centers.std(axis=0)))
            return dim, float(np.median(centers[:, dim]))
        dim = int(np.argmax(pts.std(axis=0)))
        if reason == "balance":
            return dim, float(np.median(centers[:, dim]))
        return dim, float(np.median(pts[:, dim]))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Rebalancer(max_balance={self.max_balance}, "
            f"max_query_skew={self.max_query_skew}, "
            f"min_queries={self.min_queries})"
        )
