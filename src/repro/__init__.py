"""QUASII reproduction: query-aware spatial incremental indexing.

A from-scratch Python implementation of *QUASII: QUery-Aware Spatial
Incremental Index* (Pavlovic, Sidlauskas, Heinis, Ailamaki — EDBT 2018),
together with every baseline its evaluation compares against: full scan,
STR-bulk-loaded R-Tree, uniform grid (replication and query-extension
variants), static Z-order SFC index, SFCracker, and Mosaic.

Quick start::

    from repro import Query, QuasiiIndex, make_uniform, uniform_workload

    dataset = make_uniform(100_000, seed=42)
    index = QuasiiIndex(dataset.store)
    queries = [Query(q.window) for q in
               uniform_workload(dataset.universe, 100, seed=42)]
    for result in index.execute_batch(queries):   # refines as it answers
        result.ids, result.count, result.stats, result.seconds
"""

from repro.baselines import (
    MosaicIndex,
    RTreeIndex,
    SFCIndex,
    SFCrackerIndex,
    ScanIndex,
    UniformGridIndex,
)
from repro.core import PAPER_TAU, QuasiiConfig, QuasiiIndex
from repro.datasets import (
    BoxStore,
    Dataset,
    load_dataset,
    make_gaussian_mixture,
    make_neuro_like,
    make_points,
    make_uniform,
    save_dataset,
)
from repro.extensions import KNNResult, KNNRound, k_nearest
from repro.geometry import Box
from repro.index import IndexStats, MutableSpatialIndex, SpatialIndex
from repro.queries import (
    PREDICATES,
    RESULT_MODES,
    Query,
    QueryPlan,
    QueryResult,
    RangeQuery,
    WorkloadOp,
    as_query,
    clustered_workload,
    drifting_hotspot_workload,
    hotspot_workload,
    mixed_workload,
    selectivity_sweep,
    uniform_workload,
)
from repro.sharding import (
    BatchResult,
    MaintenancePolicy,
    MaintenanceScheduler,
    QueryExecutor,
    Rebalancer,
    RoundRobinPartitioner,
    STRPartitioner,
    ShardedIndex,
    WorkloadProfile,
)
from repro.telemetry import (
    LatencyHistogram,
    MetricsRegistry,
    Telemetry,
    TimeSeriesRecorder,
    Tracer,
)
from repro.updates import (
    MixedRunResult,
    UpdateBuffer,
    UpdateLedger,
    run_mixed_workload,
)

__version__ = "1.0.0"

__all__ = [
    "PAPER_TAU",
    "PREDICATES",
    "RESULT_MODES",
    "BatchResult",
    "Box",
    "BoxStore",
    "Dataset",
    "IndexStats",
    "LatencyHistogram",
    "MaintenancePolicy",
    "MaintenanceScheduler",
    "MetricsRegistry",
    "MixedRunResult",
    "MosaicIndex",
    "MutableSpatialIndex",
    "KNNResult",
    "KNNRound",
    "QuasiiConfig",
    "QuasiiIndex",
    "Query",
    "QueryExecutor",
    "QueryPlan",
    "QueryResult",
    "RTreeIndex",
    "RangeQuery",
    "Rebalancer",
    "RoundRobinPartitioner",
    "STRPartitioner",
    "SFCIndex",
    "SFCrackerIndex",
    "ScanIndex",
    "ShardedIndex",
    "SpatialIndex",
    "Telemetry",
    "TimeSeriesRecorder",
    "Tracer",
    "UniformGridIndex",
    "UpdateBuffer",
    "UpdateLedger",
    "WorkloadOp",
    "WorkloadProfile",
    "__version__",
    "as_query",
    "clustered_workload",
    "drifting_hotspot_workload",
    "hotspot_workload",
    "k_nearest",
    "load_dataset",
    "make_gaussian_mixture",
    "make_neuro_like",
    "make_points",
    "make_uniform",
    "mixed_workload",
    "run_mixed_workload",
    "save_dataset",
    "selectivity_sweep",
    "uniform_workload",
]
