"""The worker process: attach shard segments, rebuild, serve sub-batches.

One :func:`worker_main` loop runs per pool process.  A worker owns a
fixed subset of shards (dispatch is ``sid % n_workers``, so a shard's
snapshot is only ever cracked by a single process — shard affinity
extends across the process boundary) and keeps, per owned shard:

* a :class:`~repro.parallel.shm.SharedStoreView` — the zero-copy store
  over the shard's current shared-memory segment, and
* a locally rebuilt :class:`~repro.core.quasii.QuasiiIndex` over that
  snapshot, which keeps *cracking adaptively* inside the worker between
  refreshes — the warm structure is the whole point of a persistent
  pool over per-batch processes.

The worker-side index is always QUASII regardless of the engine's
``index_factory``: factory callables are exactly the kind of payload
the process boundary refuses to ship (QL008), and result correctness is
index-independent (every index is exact over its store).

Messages arrive as plain tuples of wire dataclasses (see
:mod:`repro.parallel.wire`); a ``batch`` message carries an optional
:class:`~repro.parallel.shm.SegmentSpec` that, when present, retires
the shard's previous view (mapping closed, index dropped) and attaches
the new segment version before serving — the epoch-invalidation
protocol's worker half.  Replies carry the result wire plus the
sub-batch's telemetry: fresh per-batch
:class:`~repro.telemetry.metrics.LatencyHistogram` instances (merged
into the driver registry after every batch) and the index work-counter
deltas (folded into the engine's ``IndexStats``), so a process-backend
run is observable exactly like a thread-backend one.
"""

from __future__ import annotations

import time
from typing import Any, Protocol

from repro.parallel.shm import SegmentSpec, SharedStoreView
from repro.parallel.wire import (
    QueryBatchWire,
    decode_queries,
    encode_results,
)
from repro.telemetry.metrics import LatencyHistogram
from repro.telemetry.naming import WORKER_BATCH_SECONDS, WORKER_QUERY_SECONDS

__all__ = ["PipeEndpoint", "ProcessShardWorker", "WORK_COUNTERS", "worker_main"]


class PipeEndpoint(Protocol):
    """The duplex-pipe surface the serving protocol needs.

    Structural on purpose: naming
    :class:`multiprocessing.connection.Connection` in annotations ties
    the code to a typeshed revision (the class grew type parameters),
    while every real pipe end satisfies this protocol unchanged.
    """

    def send(self, obj: Any) -> None: ...

    def recv(self) -> Any: ...

    def poll(self, timeout: float | None = ...) -> bool: ...

    def close(self) -> None: ...

#: Index work counters shipped back per sub-batch (the same set
#: ShardedIndex.sync_shard_work rolls up for thread-backend shards; the
#: flow counters stay driver-side or they would double count).
WORK_COUNTERS = (
    "objects_tested",
    "nodes_visited",
    "cracks",
    "rows_reorganized",
    "merges",
)


class _ShardState:
    """One owned shard inside a worker: view + warm local index."""

    __slots__ = ("view", "index", "version")

    def __init__(self, view: SharedStoreView) -> None:
        """Build the warm local index over an attached view."""
        from repro.core.quasii import QuasiiIndex

        self.view = view
        self.version = view.spec.version
        self.index = QuasiiIndex(view.store)
        self.index.build()

    def close(self) -> None:
        """Drop the index, then the mapping (order matters: a live
        index keeps the store's buffer exported, which would turn the
        mmap close into a no-op until GC)."""
        self.index = None  # type: ignore[assignment]
        try:
            self.view.close()
        except BufferError:  # pragma: no cover - stray view reference
            pass  # leak one mapping rather than kill the worker


def _serve(
    state: _ShardState, wire: QueryBatchWire
) -> tuple[object, float, dict[str, LatencyHistogram], dict[str, int]]:
    """Execute one sub-batch on a shard's warm local index."""
    queries = decode_queries(wire)
    index = state.index
    before = index.stats.snapshot()
    w0 = time.perf_counter()
    results = index.execute_batch(queries)
    batch_seconds = time.perf_counter() - w0
    batch_hist = LatencyHistogram()
    batch_hist.record(batch_seconds)
    query_hist = LatencyHistogram()
    for result in results:
        query_hist.record(result.seconds)
    delta = index.stats.delta_since(before)
    work = {name: int(getattr(delta, name)) for name in WORK_COUNTERS}
    reply = encode_results(results, index.store.ndim)
    hists = {
        WORKER_BATCH_SECONDS: batch_hist,
        WORKER_QUERY_SECONDS: query_hist,
    }
    return reply, batch_seconds, hists, work


def worker_main(
    conn: PipeEndpoint, wid: int, tracker_shared: bool = False
) -> None:
    """The worker process entry point (must stay module-level so the
    ``spawn`` start method can import it by qualified name).
    ``tracker_shared`` tells segment attaches whether this process
    writes to the driver's resource tracker (fork/forkserver) or its
    own (spawn) — see :mod:`repro.parallel.shm`.

    Protocol (requests -> replies, all plain picklable tuples):

    * ``("batch", sid, spec | None, QueryBatchWire)`` ->
      ``("ok", sid, ResultBatchWire, batch_seconds, hists, work)`` or
      ``("err", sid, message)``.  A non-``None`` spec switches the
      shard to that segment version first.
    * ``("shutdown",)`` -> ``("bye", wid)`` and the loop exits.

    A worker never exits on a per-batch failure — errors are reported
    to the driver, which decides whether to raise; only a lost pipe
    (driver gone) or a shutdown message ends the loop.
    """
    states: dict[int, _ShardState] = {}
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):  # driver went away
                break
            tag = msg[0]
            if tag == "shutdown":
                conn.send(("bye", wid))
                break
            if tag != "batch":
                conn.send(("err", -1, f"unknown message tag {tag!r}"))
                continue
            sid = int(msg[1])
            spec: SegmentSpec | None = msg[2]
            wire: QueryBatchWire = msg[3]
            try:
                if spec is not None:
                    old = states.pop(sid, None)
                    if old is not None:
                        old.close()
                    states[sid] = _ShardState(
                        SharedStoreView.attach(spec, tracker_shared)
                    )
                state = states.get(sid)
                if state is None:
                    raise RuntimeError(
                        f"worker {wid} has no segment for shard {sid}"
                    )
                reply, batch_seconds, hists, work = _serve(state, wire)
            # The serving loop's one broad catch: any failure must reach
            # the driver as an error reply, not kill the worker and
            # strand the rest of the batch.
            except Exception as exc:  # ql: allow[QL006]
                conn.send(("err", sid, f"{type(exc).__name__}: {exc}"))
                continue
            conn.send(("ok", sid, reply, batch_seconds, hists, work))
    finally:
        for state in states.values():
            state.close()
        conn.close()


class ProcessShardWorker:
    """Driver-side handle for one worker process.

    Tracks the per-shard segment versions the worker has attached, so
    dispatch only ships a :class:`SegmentSpec` when the worker's view
    is stale — and a respawned worker (fresh process, empty version
    map) transparently re-receives every spec it needs.
    """

    __slots__ = ("wid", "process", "conn", "seen_versions")

    def __init__(self, wid: int, process: object, conn: PipeEndpoint) -> None:
        self.wid = wid
        self.process = process
        self.conn = conn
        #: sid -> segment version this worker has attached.
        self.seen_versions: dict[int, int] = {}

    @property
    def pid(self) -> int | None:
        """OS pid of the worker process (``None`` before start)."""
        pid = getattr(self.process, "pid", None)
        return int(pid) if pid is not None else None

    def is_alive(self) -> bool:
        alive = getattr(self.process, "is_alive", None)
        return bool(alive()) if alive is not None else False
