"""The persistent process pool: segment publishing, dispatch, recovery.

:class:`ProcessPool` is the driver half of the process backend.  It
spawns its workers **once** (fork-preferred — see
:func:`resolve_start_method`) and keeps them warm across batches, so the
per-batch cost is a few small pickled wire structures per shard rather
than process creation, segment attach, and an index rebuild.  Per batch
it:

1. **Refreshes segments** — for every shard the batch touches, flushes
   the shard's buffered updates and republishes its shared-memory
   segment *iff* the existing one went stale (shard object replaced by
   a rebalance rebuild, store epoch bumped by append/delete/compact, or
   rows still pending in the update buffer).  Old versions are
   destroyed immediately; workers keep serving from their mapping until
   the new spec reaches them with the sub-batch that needs it.
2. **Dispatches sub-batches** — shard ``sid`` always goes to worker
   ``sid % n_workers`` (shard affinity across processes: one process
   cracks a given snapshot, ever), sending a
   :class:`~repro.parallel.shm.SegmentSpec` only when that worker's
   attached version is behind.
3. **Collects and folds** — decodes result wires back into
   :class:`~repro.queries.query.QueryResult` lists, absorbs the
   workers' per-batch histograms into the driver registry, and folds
   the index work-counter deltas into the engine's ``IndexStats``.

A worker that dies mid-service (OOM kill, SIGKILL, segfault) surfaces
as a broken pipe on send or EOF on recv; the pool respawns it, clears
its version map (the fresh process re-receives every spec), re-dispatches
the sub-batches that worker still owed, and emits ``worker.respawn`` —
the batch completes with no caller-visible difference.  Only a worker
that keeps dying faster than it can be respawned raises
:class:`~repro.errors.ParallelError`.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from multiprocessing import resource_tracker
from typing import TYPE_CHECKING, Any

from repro.errors import ConfigurationError, ParallelError
from repro.index.base import MutableSpatialIndex
from repro.parallel.shm import ShardSegment, publish_segment
from repro.parallel.wire import decode_results, encode_queries
from repro.parallel.worker import (
    WORK_COUNTERS,
    ProcessShardWorker,
    worker_main,
)
from repro.telemetry.naming import WORKER_DISPATCHES, WORKER_RESPAWNS

if TYPE_CHECKING:
    from repro.queries.query import Query, QueryResult
    from repro.sharding.sharded_index import ShardedIndex
    from repro.telemetry import Telemetry
    from repro.telemetry.events import EventLog

__all__ = ["ProcessPool", "resolve_start_method"]

#: Environment override for the pool's process start method.
START_METHOD_ENV = "QUASII_PROCESS_START_METHOD"

#: Pipe-level failures that mean "the worker process is gone".
_PIPE_ERRORS = (BrokenPipeError, ConnectionResetError, EOFError, OSError)

#: Respawns tolerated for one worker within one batch before giving up.
_MAX_RESPAWNS_PER_BATCH = 3


def resolve_start_method(requested: str | None = None) -> str:
    """Pick the multiprocessing start method for the pool.

    Preference order: explicit argument, then :data:`START_METHOD_ENV`,
    then ``fork`` when the platform offers it (workers inherit the
    imported modules for free — spawn pays a full interpreter boot and
    re-import per worker), else the platform default.
    """
    method = requested or os.environ.get(START_METHOD_ENV) or None
    available = multiprocessing.get_all_start_methods()
    if method is not None:
        if method not in available:
            raise ConfigurationError(
                f"process start method {method!r} not available here "
                f"(choose from {available})"
            )
        return method
    return "fork" if "fork" in available else multiprocessing.get_start_method()


class ProcessPool:
    """A persistent pool of shard-serving worker processes.

    Parameters
    ----------
    index:
        The driver-side engine.  The pool never mutates it beyond
        flushing shard update buffers before a republish; all update
        verbs stay driver-side.
    n_workers:
        Worker process count (>= 1).
    telemetry:
        Optional driver telemetry; worker histograms are absorbed into
        its registry after every batch and ``worker.*`` counters land
        there too.
    events:
        Optional event log for ``worker.spawn`` / ``worker.respawn`` /
        ``worker.refresh``.
    start_method:
        Explicit start method; defaults to :func:`resolve_start_method`.
    """

    def __init__(
        self,
        index: ShardedIndex,
        n_workers: int,
        telemetry: Telemetry | None = None,
        events: EventLog | None = None,
        start_method: str | None = None,
    ) -> None:
        # Teardown state first: __del__ runs even when construction
        # raises below, and close() must find a coherent (empty) pool.
        self._segments: dict[int, ShardSegment] = {}
        self._versions: dict[int, int] = {}
        self._workers: list[ProcessShardWorker] = []
        self._closed = False
        if n_workers < 1:
            raise ConfigurationError(
                f"process pool needs n_workers >= 1, got {n_workers}"
            )
        self._index = index
        self._telemetry = telemetry
        self._events = events
        self.start_method = resolve_start_method(start_method)
        self._ctx = multiprocessing.get_context(self.start_method)
        # Start the driver's resource tracker BEFORE forking: a forked
        # worker inherits (and shares) whatever tracker exists at fork
        # time.  Without this, the first worker to attach a segment
        # starts its own private tracker, whose exit-time "leak"
        # cleanup unlinks driver-owned segments when that worker dies —
        # exactly the crash the respawn path must survive.
        resource_tracker.ensure_running()
        self._workers = [self._spawn_worker(wid) for wid in range(n_workers)]

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    @property
    def n_workers(self) -> int:
        return len(self._workers)

    @property
    def worker_pids(self) -> list[int | None]:
        """Current worker pids, by wid (test/diagnostic hook)."""
        return [w.pid for w in self._workers]

    def _spawn_worker(self, wid: int) -> ProcessShardWorker:
        parent_conn, child_conn = multiprocessing.Pipe(duplex=True)
        # typeshed models contexts without a Process attribute on the
        # base class; the runtime attribute is the whole point of
        # get_context, so fetch it dynamically.
        process_cls: Any = getattr(self._ctx, "Process")  # noqa: B009
        # Workers always share the driver's resource tracker: fork and
        # forkserver children inherit its pipe fd, and spawn children
        # receive it through multiprocessing's preparation data.  Only a
        # genuinely foreign process (attaching by name from outside this
        # process tree) runs its own tracker and would pass False here.
        process = process_cls(
            target=worker_main,
            args=(child_conn, wid, True),
            name=f"quasii-shard-worker-{wid}",
            daemon=True,
        )
        process.start()
        # The parent's copy of the child end must close, or a dead
        # worker would never surface as EOF on recv.
        child_conn.close()
        worker = ProcessShardWorker(wid, process, parent_conn)
        if self._events is not None:
            self._events.emit(
                "worker.spawn",
                wid=wid,
                pid=worker.pid,
                start_method=self.start_method,
            )
        return worker

    def _respawn(self, wid: int, sids: list[int]) -> None:
        """Replace a dead worker and account for the loss."""
        old = self._workers[wid]
        old_pid = old.pid
        try:
            old.conn.close()
        except OSError:  # pragma: no cover - already torn down
            pass
        join = getattr(old.process, "join", None)
        if join is not None:
            join(timeout=1.0)
        replacement = self._spawn_worker(wid)
        self._workers[wid] = replacement
        self._count(WORKER_RESPAWNS)
        if self._events is not None:
            self._events.emit(
                "worker.respawn",
                wid=wid,
                old_pid=old_pid,
                new_pid=replacement.pid,
                sids=sorted(sids),
            )

    # ------------------------------------------------------------------
    # Segment lifecycle
    # ------------------------------------------------------------------
    def _refresh_segments(self, sids: list[int]) -> None:
        """Republish every stale segment among ``sids``.

        Staleness = the shard object was replaced (rebalance rebuild),
        the store epoch moved (append / delete / compact), or rows sit
        in the shard's update buffer.  Buffers are flushed first so the
        published snapshot owns every routed row — the segment is then
        exact for the live multiset, and pruning on it cannot miss.
        """
        shards = self._index.shards
        for sid in sids:
            shard = shards[sid]
            idx = shard.index
            pending = (
                idx.pending_updates()
                if isinstance(idx, MutableSpatialIndex)
                else 0
            )
            segment = self._segments.get(sid)
            if segment is not None and segment.is_current(
                shard, shard.store.epoch, pending
            ):
                continue
            if pending and isinstance(idx, MutableSpatialIndex):
                idx.flush_updates()
            version = self._versions.get(sid, -1) + 1
            self._versions[sid] = version
            spec, shm = publish_segment(shard.store, sid, version)
            if segment is not None:
                segment.destroy()
            self._segments[sid] = ShardSegment(spec, shm, shard)
            if self._events is not None:
                self._events.emit(
                    "worker.refresh",
                    sid=sid,
                    version=version,
                    rows=spec.n_rows,
                    epoch=spec.epoch,
                )

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def run_batch(
        self, queries: list[Query], queues: dict[int, list[int]]
    ) -> dict[int, tuple[list[int], list[QueryResult], float]]:
        """Serve one routed batch: ``sid -> (query idxs, results, seconds)``.

        ``queues`` is the executor's routing product (query indexes per
        shard sid).  Returns, per shard, the decoded sub-batch results
        aligned with its index list plus the worker-measured sub-batch
        wall-clock (the ``shard.batch.seconds`` sample).
        """
        if self._closed:
            raise ParallelError("process pool used after close()")
        if not queues:
            return {}
        self._refresh_segments(sorted(queues))
        sub_queries = {
            sid: [queries[i] for i in idxs] for sid, idxs in queues.items()
        }
        wires = {
            sid: encode_queries(sub) for sid, sub in sub_queries.items()
        }
        pending = set(queues)
        replies: dict[int, tuple[Any, ...]] = {}
        respawns: dict[int, int] = {}
        while pending:
            by_worker: dict[int, list[int]] = {}
            for sid in sorted(pending):
                by_worker.setdefault(sid % self.n_workers, []).append(sid)
            dead: set[int] = set()
            for wid, sids in by_worker.items():
                worker = self._workers[wid]
                for sid in sids:
                    spec = self._segments[sid].spec
                    ship = (
                        spec
                        if worker.seen_versions.get(sid) != spec.version
                        else None
                    )
                    try:
                        worker.conn.send(("batch", sid, ship, wires[sid]))
                    except _PIPE_ERRORS:
                        dead.add(wid)
                        break
                    if ship is not None:
                        worker.seen_versions[sid] = spec.version
                    self._count(WORKER_DISPATCHES)
            for wid, sids in by_worker.items():
                if wid in dead:
                    continue
                worker = self._workers[wid]
                for _ in sids:
                    try:
                        reply = worker.conn.recv()
                    except _PIPE_ERRORS:
                        dead.add(wid)
                        break
                    if reply[0] == "err":
                        raise ParallelError(
                            f"worker {wid} failed on shard {reply[1]}: "
                            f"{reply[2]}"
                        )
                    sid = int(reply[1])
                    replies[sid] = reply
                    pending.discard(sid)
            for wid in sorted(dead):
                respawns[wid] = respawns.get(wid, 0) + 1
                if respawns[wid] > _MAX_RESPAWNS_PER_BATCH:
                    raise ParallelError(
                        f"worker {wid} died {respawns[wid]} times in one "
                        f"batch; giving up"
                    )
                owed = [s for s in by_worker.get(wid, []) if s in pending]
                self._respawn(wid, owed)
        return self._fold_replies(queues, sub_queries, replies)

    def _fold_replies(
        self,
        queues: dict[int, list[int]],
        sub_queries: dict[int, list[Query]],
        replies: dict[int, tuple[Any, ...]],
    ) -> dict[int, tuple[list[int], list[QueryResult], float]]:
        """Decode replies and fold worker telemetry into the driver."""
        work_totals = dict.fromkeys(WORK_COUNTERS, 0)
        out: dict[int, tuple[list[int], list[QueryResult], float]] = {}
        for sid, idxs in queues.items():
            _tag, _sid, wire, batch_seconds, hists, work = replies[sid]
            results = decode_results(wire, sub_queries[sid])
            out[sid] = (idxs, results, float(batch_seconds))
            for name in WORK_COUNTERS:
                work_totals[name] += int(work.get(name, 0))
            if self._telemetry is not None:
                for name, hist in hists.items():
                    self._telemetry.registry.histogram(name).absorb(hist)
        stats = self._index.stats
        for name, total in work_totals.items():
            if total:
                setattr(stats, name, getattr(stats, name) + total)
        return out

    def _count(self, name: str, n: int = 1) -> None:
        if self._telemetry is not None:
            self._telemetry.registry.counter(name).inc(n)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut workers down and destroy every published segment.

        After this returns no pool-created name remains in the OS
        shared-memory namespace (the cleanup test attaches by name and
        expects ``FileNotFoundError``), and every worker process has
        exited (joined, or terminated if it ignored shutdown).
        """
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            if worker.is_alive():
                try:
                    worker.conn.send(("shutdown",))
                except _PIPE_ERRORS:
                    pass
        deadline = time.monotonic() + 5.0
        for worker in self._workers:
            join = getattr(worker.process, "join", None)
            if join is not None:
                join(timeout=max(0.1, deadline - time.monotonic()))
            if worker.is_alive():  # pragma: no cover - stuck worker
                terminate = getattr(worker.process, "terminate", None)
                if terminate is not None:
                    terminate()
                if join is not None:
                    join(timeout=1.0)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover - already torn down
                pass
        self._workers = []
        for segment in self._segments.values():
            segment.destroy()
        self._segments.clear()

    def __enter__(self) -> ProcessPool:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except (OSError, ValueError):
            pass
