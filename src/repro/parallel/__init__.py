"""Process-parallel shard serving over shared-memory stores.

The GIL caps the thread backend at interleaving, not parallelism —
refinement kernels release it only inside numpy calls, and the adaptive
cracking that makes QUASII fast is pure Python.  This package moves
shard serving into real OS processes without paying data movement:

* :mod:`~repro.parallel.shm` — shard snapshots as shared-memory
  *segments*, with :class:`~repro.parallel.shm.SharedStoreView` giving
  workers a zero-copy :class:`~repro.datasets.store.BoxStore` over the
  mapping.
* :mod:`~repro.parallel.wire` — compact numpy wire structures for the
  query/result round trip (per-shard sub-batches are the dispatch
  unit, exactly as in the thread backend).
* :mod:`~repro.parallel.worker` — the worker loop: attach, rebuild a
  warm local index, serve, report telemetry.
* :mod:`~repro.parallel.pool` — the driver:
  :class:`~repro.parallel.pool.ProcessPool` owns segment lifecycle
  (publish on epoch bump, destroy on retire), worker lifecycle
  (spawn, crash-respawn, shutdown), and the telemetry fold-back.

The user-facing switch is the executor seam:
``QueryExecutor(engine, backend="processes")`` (or
``QUASII_EXECUTOR_BACKEND=processes``); everything here is machinery
behind it.
"""

from repro.parallel.pool import ProcessPool, resolve_start_method
from repro.parallel.shm import (
    SegmentSpec,
    ShardSegment,
    SharedStoreView,
    attach_segment,
    publish_segment,
    segment_nbytes,
)
from repro.parallel.wire import (
    QueryBatchWire,
    ResultBatchWire,
    decode_queries,
    decode_results,
    encode_queries,
    encode_results,
)
from repro.parallel.worker import (
    WORK_COUNTERS,
    PipeEndpoint,
    ProcessShardWorker,
    worker_main,
)

__all__ = [
    "PipeEndpoint",
    "ProcessPool",
    "ProcessShardWorker",
    "QueryBatchWire",
    "ResultBatchWire",
    "SegmentSpec",
    "ShardSegment",
    "SharedStoreView",
    "WORK_COUNTERS",
    "attach_segment",
    "decode_queries",
    "decode_results",
    "encode_queries",
    "encode_results",
    "publish_segment",
    "resolve_start_method",
    "segment_nbytes",
    "worker_main",
]
