"""Wire format for the process boundary: query batches and result sets.

Dispatch ships *per-shard sub-batches*, so the unit of IPC is one
:class:`QueryBatchWire` per (shard, batch) pair — a handful of small
numpy arrays rather than a list of Python objects.  Frozen
:class:`~repro.queries.query.Query` specs are flattened to coordinate
matrices plus code vectors (predicates and result modes become indexes
into the canonical :data:`~repro.queries.query.PREDICATES` /
:data:`~repro.queries.query.RESULT_MODES` tuples); results come back as
id/count arrays with offset vectors in the classic concatenated-ragged
layout.  Everything on the wire is a dataclass of ndarrays and ints —
picklable by construction (QL008), and numpy arrays pickle as near-raw
buffer copies, so a sub-batch round trip costs microseconds, amortized
over the whole sub-batch's refine work.

The decoder rebuilds real :class:`Query` objects (validation included)
on the worker side and real :class:`QueryResult` objects on the driver
side, so neither side ever handles half-typed payloads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParallelError
from repro.geometry.box import Box
from repro.queries.query import PREDICATES, RESULT_MODES, Query, QueryResult

__all__ = [
    "QueryBatchWire",
    "ResultBatchWire",
    "decode_queries",
    "decode_results",
    "encode_queries",
    "encode_results",
]

_PREDICATE_CODE = {name: i for i, name in enumerate(PREDICATES)}
_MODE_CODE = {name: i for i, name in enumerate(RESULT_MODES)}


@dataclass(frozen=True)
class QueryBatchWire:
    """One shard sub-batch of queries, flattened to arrays.

    ``ks`` uses ``-1`` for "no top-k limit" (``k=None``); ``predicates``
    and ``modes`` index the canonical tuples, so an unknown code fails
    loudly at decode instead of silently misrouting a predicate.
    """

    lo: np.ndarray  # (q, d) float64 window lower corners
    hi: np.ndarray  # (q, d) float64 window upper corners
    predicates: np.ndarray  # (q,) uint8 codes into PREDICATES
    modes: np.ndarray  # (q,) uint8 codes into RESULT_MODES
    ks: np.ndarray  # (q,) int64 top-k limits, -1 = None
    seqs: np.ndarray  # (q,) int64 workload sequence numbers

    @property
    def n_queries(self) -> int:
        return int(self.lo.shape[0])


@dataclass(frozen=True)
class ResultBatchWire:
    """One shard sub-batch of results: counts + ragged id/box arrays.

    ``id_offsets``/``box_offsets`` are length ``q+1`` prefix vectors;
    query ``i``'s ids are ``ids[id_offsets[i]:id_offsets[i+1]]``.
    Count-mode queries contribute zero ids, id-mode queries zero box
    rows — the decoder knows each query's mode and restores ``None``
    payloads exactly as a local execution would have produced them.
    ``seconds`` carries the per-query equal-share timings the shard
    index stamped, so driver-side latency accounting matches the
    thread backend sample for sample.
    """

    counts: np.ndarray  # (q,) int64 match counts
    ids: np.ndarray  # (sum,) int64 concatenated id payloads
    id_offsets: np.ndarray  # (q+1,) int64
    box_lo: np.ndarray  # (m, d) float64 concatenated box corners
    box_hi: np.ndarray  # (m, d) float64
    box_offsets: np.ndarray  # (q+1,) int64
    seconds: np.ndarray  # (q,) float64 per-query seconds


def encode_queries(queries: list[Query]) -> QueryBatchWire:
    """Flatten a sub-batch of queries for the pipe (driver-side)."""
    q = len(queries)
    if q == 0:
        raise ParallelError("cannot encode an empty query sub-batch")
    d = queries[0].ndim
    lo = np.empty((q, d), dtype=np.float64)
    hi = np.empty((q, d), dtype=np.float64)
    predicates = np.empty(q, dtype=np.uint8)
    modes = np.empty(q, dtype=np.uint8)
    ks = np.empty(q, dtype=np.int64)
    seqs = np.empty(q, dtype=np.int64)
    for i, query in enumerate(queries):
        lo[i] = query.lo
        hi[i] = query.hi
        predicates[i] = _PREDICATE_CODE[query.predicate]
        modes[i] = _MODE_CODE[query.mode]
        ks[i] = -1 if query.k is None else query.k
        seqs[i] = query.seq
    return QueryBatchWire(
        lo=lo, hi=hi, predicates=predicates, modes=modes, ks=ks, seqs=seqs
    )


def decode_queries(wire: QueryBatchWire) -> list[Query]:
    """Rebuild validated :class:`Query` objects (worker-side)."""
    out: list[Query] = []
    for i in range(wire.n_queries):
        predicate_code = int(wire.predicates[i])
        mode_code = int(wire.modes[i])
        if predicate_code >= len(PREDICATES) or mode_code >= len(RESULT_MODES):
            raise ParallelError(
                f"corrupt query wire: predicate code {predicate_code}, "
                f"mode code {mode_code}"
            )
        k = int(wire.ks[i])
        out.append(
            Query(
                window=Box(tuple(wire.lo[i]), tuple(wire.hi[i])),
                predicate=PREDICATES[predicate_code],
                mode=RESULT_MODES[mode_code],
                k=None if k < 0 else k,
                seq=int(wire.seqs[i]),
            )
        )
    return out


def encode_results(results: list[QueryResult], ndim: int) -> ResultBatchWire:
    """Flatten a sub-batch of results for the pipe (worker-side)."""
    q = len(results)
    counts = np.empty(q, dtype=np.int64)
    seconds = np.empty(q, dtype=np.float64)
    id_offsets = np.zeros(q + 1, dtype=np.int64)
    box_offsets = np.zeros(q + 1, dtype=np.int64)
    id_parts: list[np.ndarray] = []
    lo_parts: list[np.ndarray] = []
    hi_parts: list[np.ndarray] = []
    for i, result in enumerate(results):
        counts[i] = result.count
        seconds[i] = result.seconds
        n_ids = 0
        if result.ids is not None:
            n_ids = int(result.ids.size)
            if n_ids:
                id_parts.append(result.ids)
        id_offsets[i + 1] = id_offsets[i] + n_ids
        n_boxes = 0
        if result.boxes is not None:
            n_boxes = int(result.boxes[0].shape[0])
            if n_boxes:
                lo_parts.append(result.boxes[0])
                hi_parts.append(result.boxes[1])
        box_offsets[i + 1] = box_offsets[i] + n_boxes
    empty_boxes = np.empty((0, ndim), dtype=np.float64)
    return ResultBatchWire(
        counts=counts,
        ids=(
            np.concatenate(id_parts)
            if id_parts
            else np.empty(0, dtype=np.int64)
        ),
        id_offsets=id_offsets,
        box_lo=np.concatenate(lo_parts) if lo_parts else empty_boxes,
        box_hi=np.concatenate(hi_parts) if hi_parts else empty_boxes.copy(),
        box_offsets=box_offsets,
        seconds=seconds,
    )


def decode_results(
    wire: ResultBatchWire, queries: list[Query]
) -> list[QueryResult]:
    """Rebuild per-query :class:`QueryResult` payloads (driver-side).

    ``queries`` must be the sub-batch the wire answers, in dispatch
    order — each query's mode decides whether its id/box slices decode
    to arrays or to ``None``, mirroring a local shard execution.
    """
    if wire.counts.shape[0] != len(queries):
        raise ParallelError(
            f"result wire answers {wire.counts.shape[0]} queries, "
            f"expected {len(queries)}"
        )
    out: list[QueryResult] = []
    for i, query in enumerate(queries):
        ids: np.ndarray | None = None
        boxes: tuple[np.ndarray, np.ndarray] | None = None
        if query.mode != "count":
            ids = wire.ids[int(wire.id_offsets[i]): int(wire.id_offsets[i + 1])]
            if query.mode in ("boxes", "top_k"):
                b0 = int(wire.box_offsets[i])
                b1 = int(wire.box_offsets[i + 1])
                boxes = (wire.box_lo[b0:b1], wire.box_hi[b0:b1])
        out.append(
            QueryResult(
                query=query,
                count=int(wire.counts[i]),
                ids=ids,
                boxes=boxes,
                stats=None,
                seconds=float(wire.seconds[i]),
            )
        )
    return out
