"""Shared-memory segments: zero-copy shard snapshots across processes.

The process-parallel serving tier re-homes each shard's column data in
POSIX shared memory so worker processes read (and crack) it without a
single row ever crossing a pipe.  A *segment* is one
:class:`~multiprocessing.shared_memory.SharedMemory` block holding a
shard's **packed live rows** — the ``(n, d)`` lower/upper corner
matrices followed by the id vector, gathered at publish time:

* Packing at publish keeps the store contract intact: the snapshot's
  live ``(id, box)`` multiset equals the source shard's at the moment of
  publish (:meth:`SharedStoreView.live_fingerprint` digests exactly
  that), tombstones are simply not shipped, and the worker-side
  :class:`~repro.datasets.store.BoxStore` starts at epoch 0 with every
  row live — a valid store by construction, not a back door into one.
* Segments are **immutable from the driver's side once published**.
  Mutations (appends, deletes, compaction remaps, rebalance rebuilds)
  bump the source store's epoch, and the pool reacts by publishing a
  *new* segment version and retiring the old one — workers never observe
  a segment changing under them.  The owning worker, however, may crack
  its snapshot in place: exactly one worker serves a given shard
  (dispatch is sharded by ``sid``), and permutation preserves the
  multiset invariant like any other query-path reorganization.

Lifecycle: the driver creates and eventually unlinks every segment
(:meth:`ShardSegment.destroy`); workers attach by name and close their
mapping when a newer version arrives (:meth:`SharedStoreView.close`).
Unlinking a segment a worker still maps is safe on POSIX — the mapping
stays valid until the worker closes it — which is what lets the driver
retire old versions without a handshake.

Python < 3.13 registers *attached* segments with the resource tracker
as if the attaching process owned them.  What that requires depends on
whose tracker the attaching process writes to:

* **Shared tracker** (every pool worker: fork/forkserver children
  inherit the driver tracker's pipe fd, spawn children receive it via
  multiprocessing's preparation data) — the attach-register is an
  idempotent set-add in the *driver's* tracker, and unregistering
  would strip the driver's own registration, turning its eventual
  ``unlink()`` into a tracker ``KeyError``.  Attachments must be left
  registered.
* **Private tracker** (a genuinely foreign process attaching by name
  from outside the driver's process tree) — its exit-time "leak"
  cleanup would unlink driver-owned segments, so the attachment must
  be unregistered immediately (the 3.13 ``track=`` parameter made
  this idiom official).

Callers therefore tell :func:`attach_segment` which case they are
(``tracker_shared``); the pool also starts the driver's tracker
*before* forking any worker, or early workers would spin up private
trackers and land in the second case by accident.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import resource_tracker
from multiprocessing.shared_memory import SharedMemory

import numpy as np

from repro.datasets.store import BoxStore
from repro.errors import ParallelError

__all__ = [
    "SegmentSpec",
    "ShardSegment",
    "SharedStoreView",
    "attach_segment",
    "publish_segment",
    "segment_nbytes",
]

_FLOAT = np.dtype(np.float64)
_INT = np.dtype(np.int64)


@dataclass(frozen=True)
class SegmentSpec:
    """Everything a worker needs to map one shard snapshot.

    Strings and integers only — picklable by construction (QL008), and
    small enough that shipping one per refresh is noise next to the
    rows it describes.

    Attributes
    ----------
    name:
        The OS-level shared-memory name (attach key).
    sid:
        Owning shard id.
    version:
        Monotonic per-shard segment version; bumped on every republish,
        so a worker can tell a refresh from a redundant spec.
    n_rows:
        Packed live rows in the segment.
    ndim:
        Box dimensionality.
    epoch:
        The source store's epoch at publish time (diagnostic only; the
        driver's staleness test lives with the source store, not here).
    """

    name: str
    sid: int
    version: int
    n_rows: int
    ndim: int
    epoch: int


def segment_nbytes(n_rows: int, ndim: int) -> int:
    """Payload bytes for a packed snapshot: lo + hi + ids."""
    return 2 * n_rows * ndim * _FLOAT.itemsize + n_rows * _INT.itemsize


def _layout(
    buf: memoryview, n_rows: int, ndim: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The three column views over a segment buffer (zero-copy)."""
    corner = n_rows * ndim * _FLOAT.itemsize
    lo = np.ndarray((n_rows, ndim), dtype=_FLOAT, buffer=buf, offset=0)
    hi = np.ndarray((n_rows, ndim), dtype=_FLOAT, buffer=buf, offset=corner)
    ids = np.ndarray((n_rows,), dtype=_INT, buffer=buf, offset=2 * corner)
    return lo, hi, ids


def publish_segment(
    store: BoxStore, sid: int, version: int
) -> tuple[SegmentSpec, SharedMemory]:
    """Snapshot a store's live rows into a fresh shared-memory segment.

    Driver-side half of the protocol.  Gathers the live rows (packed,
    tombstones dropped) into a newly created segment and returns the
    spec plus the owning handle — the caller keeps the handle so it can
    later :meth:`~multiprocessing.shared_memory.SharedMemory.unlink`
    the segment (see :class:`ShardSegment`).
    """
    rows = store.live_rows()
    n_rows = int(rows.size)
    ndim = store.ndim
    # A zero-byte segment is rejected by the OS; one spare byte keeps
    # the empty-shard snapshot representable with the same layout.
    shm = SharedMemory(create=True, size=max(1, segment_nbytes(n_rows, ndim)))
    lo, hi, ids = _layout(shm.buf, n_rows, ndim)
    lo[:] = store.lo[rows]
    hi[:] = store.hi[rows]
    ids[:] = store.ids[rows]
    spec = SegmentSpec(
        name=shm.name,
        sid=sid,
        version=version,
        n_rows=n_rows,
        ndim=ndim,
        epoch=store.epoch,
    )
    return spec, shm


def attach_segment(
    spec: SegmentSpec, tracker_shared: bool = False
) -> SharedMemory:
    """Map an existing segment by spec (worker-side attach).

    With ``tracker_shared=False`` (a foreign attacher running its own
    resource tracker) the mapping is unregistered immediately:
    ownership — and the unlink duty — stays with the driver, and the
    attacher's exit must neither warn about nor destroy a segment it
    only borrowed.  With ``tracker_shared=True`` (pool workers, which
    write to the *driver's* tracker under every start method) the
    registration is left alone — it lands as a set-level no-op
    driver-side, and removing it would instead cancel the driver's own
    registration out from under its ``unlink()``.
    """
    shm = SharedMemory(name=spec.name, create=False)
    if not tracker_shared:
        # The private _name carries the tracker's registration key (the
        # public .name strips the platform prefix on some systems).
        resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]  # noqa: SLF001
    return shm


class SharedStoreView:
    """A worker's zero-copy :class:`BoxStore` over a mapped segment.

    The store's ``lo``/``hi``/``ids`` columns are numpy views directly
    into the shared mapping — no copy is made on attach, so a worker's
    memory cost per shard is one ``live`` mask plus index structures.
    The view preserves the store discipline end to end:

    * **Live-multiset invariant** — the snapshot holds exactly the
      source shard's live rows at publish; queries may only permute it
      (cracking), so :meth:`live_fingerprint` stays equal to the
      driver-side shard's until the next epoch bump triggers a
      republish.
    * **Epoch discipline** — the view's store starts at epoch 0 and the
      worker never mutates it through the update verbs, so any index
      built over it keeps its ``_check_epoch`` contract; *driver-side*
      epoch bumps surface as a new segment version, never as in-place
      movement under a live index.
    """

    __slots__ = ("spec", "_shm", "_store")

    def __init__(self, spec: SegmentSpec, shm: SharedMemory) -> None:
        if spec.ndim < 1:
            raise ParallelError(f"segment {spec.name} has ndim {spec.ndim}")
        need = segment_nbytes(spec.n_rows, spec.ndim)
        if shm.size < need:
            raise ParallelError(
                f"segment {spec.name} holds {shm.size} bytes, spec needs "
                f"{need}"
            )
        self.spec = spec
        self._shm = shm
        lo, hi, ids = _layout(shm.buf, spec.n_rows, spec.ndim)
        # BoxStore's ascontiguousarray pass-through keeps these exact
        # views (C-contiguous float64/int64 already), so the store is
        # genuinely zero-copy over the mapping.
        self._store = BoxStore(lo, hi, ids)

    @classmethod
    def attach(
        cls, spec: SegmentSpec, tracker_shared: bool = False
    ) -> SharedStoreView:
        """Map the segment named by ``spec`` and wrap it (worker-side)."""
        return cls(spec, attach_segment(spec, tracker_shared))

    @property
    def store(self) -> BoxStore:
        """The zero-copy store (safe to crack; never update-mutate)."""
        return self._store

    def live_fingerprint(self) -> bytes:
        """Digest of the snapshot's live ``(id, box)`` multiset."""
        return self._store.live_fingerprint()

    def close(self) -> None:
        """Drop the mapping.  The caller must have dropped every index
        built over :attr:`store` first — a numpy view still referencing
        the buffer makes the underlying mmap close a no-op until GC."""
        # Release our own views before closing, or SharedMemory.close()
        # raises BufferError on the exported memoryview.
        self._store = None  # type: ignore[assignment]
        self._shm.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SharedStoreView(sid={self.spec.sid}, v{self.spec.version}, "
            f"rows={self.spec.n_rows})"
        )


class ShardSegment:
    """Driver-side record of one published segment (the owning handle).

    Tracks what the segment was published *from* — the shard object and
    its store epoch — which is exactly the staleness test the pool runs
    before every batch: a bumped epoch (append/delete/compact), a
    replaced :class:`~repro.sharding.shard.Shard` (rebalance rebuild),
    or rows still buffered in the shard index all force a republish.
    """

    __slots__ = ("spec", "shm", "shard_token", "epoch")

    def __init__(
        self, spec: SegmentSpec, shm: SharedMemory, shard_token: object
    ) -> None:
        self.spec = spec
        self.shm = shm
        #: Identity token of the Shard published from (rebuilds replace
        #: the Shard object wholesale, which must read as stale).
        self.shard_token = shard_token
        self.epoch = spec.epoch

    def is_current(self, shard_token: object, epoch: int, pending: int) -> bool:
        """True when the segment still mirrors the live shard exactly."""
        return (
            self.shard_token is shard_token
            and self.epoch == epoch
            and pending == 0
        )

    def destroy(self) -> None:
        """Close the driver's mapping and unlink the OS object.

        Workers still mapping the old version keep serving from it
        until they switch; the name is gone from ``/dev/shm``
        immediately, which is what the cleanup test asserts.
        """
        self.shm.close()
        self.shm.unlink()
