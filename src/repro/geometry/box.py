"""Axis-aligned minimum bounding box (MBB) value type.

The paper (Section 2) models every spatial object as the axis-aligned box
enclosing it, defined by its lower and upper corner: ``lower(b) = (xl, yl,
zl)`` and ``upper(b) = (xu, yu, zu)``.  :class:`Box` generalizes this to any
dimensionality ``d >= 1``; the reproduction primarily uses ``d = 3`` (the
paper's setting) and ``d = 2`` (the paper's running example, Figure 4).

Boxes are *closed*: two boxes that merely touch at a face, edge, or corner
intersect, matching the paper's ``b ∩ q ≠ ∅`` result definition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import GeometryError


@dataclass(frozen=True, slots=True)
class Box:
    """An immutable axis-aligned box, the universal shape of this library.

    Parameters
    ----------
    lo:
        Lower corner, one coordinate per dimension.
    hi:
        Upper corner; must satisfy ``lo[k] <= hi[k]`` in every dimension.

    Examples
    --------
    >>> b = Box((0.0, 0.0), (2.0, 3.0))
    >>> b.volume
    6.0
    >>> b.intersects(Box((2.0, 1.0), (5.0, 5.0)))  # face contact counts
    True
    """

    lo: tuple[float, ...]
    hi: tuple[float, ...]

    def __post_init__(self) -> None:
        lo = tuple(float(v) for v in self.lo)
        hi = tuple(float(v) for v in self.hi)
        if len(lo) == 0:
            raise GeometryError("a Box needs at least one dimension")
        if len(lo) != len(hi):
            raise GeometryError(
                f"corner dimensionality mismatch: lo has {len(lo)} dims, "
                f"hi has {len(hi)}"
            )
        for k, (l, h) in enumerate(zip(lo, hi)):
            if math.isnan(l) or math.isnan(h):
                raise GeometryError(f"NaN coordinate in dimension {k}")
            if l > h:
                raise GeometryError(
                    f"lower corner exceeds upper corner in dimension {k}: "
                    f"{l} > {h}"
                )
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_center(cls, center: Sequence[float], sides: Sequence[float]) -> Box:
        """Build a box from its center point and full side lengths."""
        if len(center) != len(sides):
            raise GeometryError("center and sides must have equal length")
        lo = tuple(c - s / 2.0 for c, s in zip(center, sides))
        hi = tuple(c + s / 2.0 for c, s in zip(center, sides))
        return cls(lo, hi)

    @classmethod
    def cube(cls, lo_corner: Sequence[float], side: float) -> Box:
        """Build an axis-aligned cube with the given lower corner and side."""
        if side < 0:
            raise GeometryError(f"cube side must be non-negative, got {side}")
        lo = tuple(float(v) for v in lo_corner)
        hi = tuple(v + side for v in lo)
        return cls(lo, hi)

    @classmethod
    def unit(cls, ndim: int) -> Box:
        """The unit box ``[0, 1]^ndim``."""
        return cls((0.0,) * ndim, (1.0,) * ndim)

    # ------------------------------------------------------------------
    # Basic measures
    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return len(self.lo)

    @property
    def sides(self) -> tuple[float, ...]:
        """Per-dimension side lengths (``hi - lo``)."""
        return tuple(h - l for l, h in zip(self.lo, self.hi))

    @property
    def volume(self) -> float:
        """Product of side lengths (area in 2-d, volume in 3-d)."""
        return math.prod(self.sides)

    @property
    def center(self) -> tuple[float, ...]:
        """Geometric center point."""
        return tuple((l + h) / 2.0 for l, h in zip(self.lo, self.hi))

    @property
    def is_degenerate(self) -> bool:
        """True when at least one side has zero length (a point/segment)."""
        return any(h == l for l, h in zip(self.lo, self.hi))

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def intersects(self, other: Box) -> bool:
        """Closed-interval intersection test (touching boxes intersect)."""
        self._check_ndim(other)
        return all(
            sl <= oh and ol <= sh
            for sl, sh, ol, oh in zip(self.lo, self.hi, other.lo, other.hi)
        )

    def contains_point(self, point: Sequence[float]) -> bool:
        """True when the (closed) box contains the point."""
        if len(point) != self.ndim:
            raise GeometryError("point dimensionality mismatch")
        return all(l <= p <= h for l, p, h in zip(self.lo, point, self.hi))

    def contains_box(self, other: Box) -> bool:
        """True when ``other`` lies entirely inside this box."""
        self._check_ndim(other)
        return all(
            sl <= ol and oh <= sh
            for sl, sh, ol, oh in zip(self.lo, self.hi, other.lo, other.hi)
        )

    # ------------------------------------------------------------------
    # Combinators
    # ------------------------------------------------------------------
    def union(self, other: Box) -> Box:
        """Smallest box enclosing both operands."""
        self._check_ndim(other)
        return Box(
            tuple(min(a, b) for a, b in zip(self.lo, other.lo)),
            tuple(max(a, b) for a, b in zip(self.hi, other.hi)),
        )

    def intersection(self, other: Box) -> Box | None:
        """Overlap region, or ``None`` when the boxes are disjoint."""
        self._check_ndim(other)
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        if any(l > h for l, h in zip(lo, hi)):
            return None
        return Box(lo, hi)

    def expanded(self, margins: Sequence[float]) -> Box:
        """Box grown by ``margins[k]`` on *both* sides of dimension ``k``.

        This implements the *query extension* technique (Stefanakis et al.)
        used by the query-extension grid and by QUASII's refinement step:
        enlarging a query window by the maximum object extent guarantees
        that representing objects by a single point cannot lose results.
        """
        if len(margins) != self.ndim:
            raise GeometryError("margins dimensionality mismatch")
        if any(m < 0 for m in margins):
            raise GeometryError("margins must be non-negative")
        return Box(
            tuple(l - m for l, m in zip(self.lo, margins)),
            tuple(h + m for h, m in zip(self.hi, margins)),
        )

    def translated(self, offset: Sequence[float]) -> Box:
        """Box shifted by the given per-dimension offset."""
        if len(offset) != self.ndim:
            raise GeometryError("offset dimensionality mismatch")
        return Box(
            tuple(l + o for l, o in zip(self.lo, offset)),
            tuple(h + o for h, o in zip(self.hi, offset)),
        )

    def clipped_to(self, bounds: Box) -> Box | None:
        """Alias of :meth:`intersection`, reading better for windows."""
        return self.intersection(bounds)

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[tuple[float, ...]]:
        yield self.lo
        yield self.hi

    def _check_ndim(self, other: Box) -> None:
        if other.ndim != self.ndim:
            raise GeometryError(
                f"dimensionality mismatch: {self.ndim} vs {other.ndim}"
            )
