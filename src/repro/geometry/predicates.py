"""Vectorized geometric predicate kernels.

Every index in this library ultimately answers a window query by testing a
batch of candidate MBBs against the query window.  These NumPy kernels are
the shared hot path; they all take coordinate matrices of shape ``(n, d)``
(``lo`` and ``hi`` corners of ``n`` boxes) and a scalar window given by two
length-``d`` vectors, and return boolean masks of length ``n``.

All interval comparisons are *closed* (touching counts as intersecting),
matching :meth:`repro.geometry.box.Box.intersects`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError
from repro.geometry.box import Box


def _as_vector(value: np.ndarray | tuple | list, ndim: int) -> np.ndarray:
    vec = np.asarray(value, dtype=np.float64)
    if vec.shape != (ndim,):
        raise GeometryError(f"expected a length-{ndim} vector, got shape {vec.shape}")
    return vec


def boxes_intersect_window(
    lo: np.ndarray,
    hi: np.ndarray,
    window_lo: np.ndarray,
    window_hi: np.ndarray,
) -> np.ndarray:
    """Mask of boxes whose closed extent intersects the closed window.

    This is the paper's result predicate ``b ∩ q ≠ ∅`` evaluated in bulk.
    """
    ndim = lo.shape[1]
    qlo = _as_vector(window_lo, ndim)
    qhi = _as_vector(window_hi, ndim)
    return np.all(lo <= qhi, axis=1) & np.all(hi >= qlo, axis=1)


def boxes_contained_in_window(
    lo: np.ndarray,
    hi: np.ndarray,
    window_lo: np.ndarray,
    window_hi: np.ndarray,
) -> np.ndarray:
    """Mask of boxes lying entirely inside the window."""
    ndim = lo.shape[1]
    qlo = _as_vector(window_lo, ndim)
    qhi = _as_vector(window_hi, ndim)
    return np.all(lo >= qlo, axis=1) & np.all(hi <= qhi, axis=1)


def boxes_contain_window(
    lo: np.ndarray,
    hi: np.ndarray,
    window_lo: np.ndarray,
    window_hi: np.ndarray,
) -> np.ndarray:
    """Mask of boxes that contain the entire window.

    With a degenerate (point) window this is the covers-point test:
    boxes whose closed extent holds the point.
    """
    ndim = lo.shape[1]
    qlo = _as_vector(window_lo, ndim)
    qhi = _as_vector(window_hi, ndim)
    return np.all(lo <= qlo, axis=1) & np.all(hi >= qhi, axis=1)


#: Predicate name -> bulk kernel.  Names follow the OGC convention with
#: the *object* as subject (see repro.queries.query): "within" means the
#: object lies within the window, "contains" that it contains the window.
#: Every predicate implies window intersection, so an index's intersects
#: candidate set is a superset of every predicate's matches — the fact
#: the shared candidate→refine kernel rests on.
_PREDICATE_KERNELS = {
    "intersects": boxes_intersect_window,
    "within": boxes_contained_in_window,
    "contains": boxes_contain_window,
    "covers_point": boxes_contain_window,
}


def predicate_mask(
    predicate: str,
    lo: np.ndarray,
    hi: np.ndarray,
    window_lo: np.ndarray,
    window_hi: np.ndarray,
) -> np.ndarray:
    """Evaluate a named predicate over a candidate batch (the refine step).

    ``window_lo``/``window_hi`` are either length-``d`` vectors (one
    window for the whole batch) or ``(n, d)`` matrices (a *per-row*
    window, used by natively batched execution where candidate rows of
    many queries are refined in one kernel call).
    """
    try:
        kernel = _PREDICATE_KERNELS[predicate]
    except KeyError:
        raise GeometryError(
            f"unknown predicate {predicate!r}; expected one of "
            f"{tuple(_PREDICATE_KERNELS)}"
        ) from None
    window_lo = np.asarray(window_lo, dtype=np.float64)
    if window_lo.ndim == 2:
        # Per-row windows: the kernels' comparisons broadcast elementwise,
        # so inline the same expressions without the vector-shape gate.
        qlo = window_lo
        qhi = np.asarray(window_hi, dtype=np.float64)
        if predicate == "intersects":
            return np.all(lo <= qhi, axis=1) & np.all(hi >= qlo, axis=1)
        if predicate == "within":
            return np.all(lo >= qlo, axis=1) & np.all(hi <= qhi, axis=1)
        return np.all(lo <= qlo, axis=1) & np.all(hi >= qhi, axis=1)
    return kernel(lo, hi, window_lo, window_hi)


def lower_corners_in_window(
    lo: np.ndarray,
    window_lo: np.ndarray,
    window_hi: np.ndarray,
) -> np.ndarray:
    """Mask of boxes whose *lower corner* falls inside the window.

    QUASII assigns objects to slices by their lower coordinate (Section
    5.1); combined with query extension this representative-point test is
    exact for refinement.
    """
    ndim = lo.shape[1]
    qlo = _as_vector(window_lo, ndim)
    qhi = _as_vector(window_hi, ndim)
    return np.all(lo >= qlo, axis=1) & np.all(lo <= qhi, axis=1)


def centers_in_window(
    lo: np.ndarray,
    hi: np.ndarray,
    window_lo: np.ndarray,
    window_hi: np.ndarray,
) -> np.ndarray:
    """Mask of boxes whose center falls inside the window.

    The query-extension grid (Section 3.2 / 6.2) assigns each object to the
    single cell containing its center.
    """
    centers = (lo + hi) * 0.5
    ndim = lo.shape[1]
    qlo = _as_vector(window_lo, ndim)
    qhi = _as_vector(window_hi, ndim)
    return np.all(centers >= qlo, axis=1) & np.all(centers <= qhi, axis=1)


def batch_predicate_masks(
    predicate: str,
    lo: np.ndarray,
    hi: np.ndarray,
    windows_lo: np.ndarray,
    windows_hi: np.ndarray,
) -> np.ndarray:
    """Evaluate one predicate for a whole query batch in one pass.

    ``lo``/``hi`` are the ``(n, d)`` corner matrices of all objects;
    ``windows_lo``/``windows_hi`` are ``(B, d)`` matrices of ``B`` query
    windows.  Returns the ``(B, n)`` boolean candidate matrix — row
    ``b`` is the match mask of query ``b`` over all objects.  Built one
    dimension at a time so the peak temporary is ``(B, n)``, never
    ``(B, n, d)``.
    """
    if predicate not in _PREDICATE_KERNELS:
        raise GeometryError(
            f"unknown predicate {predicate!r}; expected one of "
            f"{tuple(_PREDICATE_KERNELS)}"
        )
    n, d = lo.shape
    b = windows_lo.shape[0]
    mask = np.ones((b, n), dtype=bool)
    for k in range(d):
        obj_lo = lo[:, k][None, :]
        obj_hi = hi[:, k][None, :]
        win_lo = windows_lo[:, k][:, None]
        win_hi = windows_hi[:, k][:, None]
        if predicate == "intersects":
            mask &= obj_lo <= win_hi
            mask &= obj_hi >= win_lo
        elif predicate == "within":
            mask &= obj_lo >= win_lo
            mask &= obj_hi <= win_hi
        else:  # contains / covers_point
            mask &= obj_lo <= win_lo
            mask &= obj_hi >= win_hi
    return mask


def intersects(a_lo, a_hi, b_lo, b_hi) -> bool:
    """Scalar closed-interval intersection of two corner-pair boxes."""
    a_lo = np.asarray(a_lo, dtype=np.float64)
    a_hi = np.asarray(a_hi, dtype=np.float64)
    b_lo = np.asarray(b_lo, dtype=np.float64)
    b_hi = np.asarray(b_hi, dtype=np.float64)
    return bool(np.all(a_lo <= b_hi) and np.all(b_lo <= a_hi))


def mbr_of(lo: np.ndarray, hi: np.ndarray) -> Box:
    """Minimum bounding box of a non-empty batch of boxes."""
    if lo.shape[0] == 0:
        raise GeometryError("cannot compute the MBR of zero boxes")
    return Box(tuple(lo.min(axis=0)), tuple(hi.max(axis=0)))
