"""Vectorized geometric predicate kernels.

Every index in this library ultimately answers a window query by testing a
batch of candidate MBBs against the query window.  These NumPy kernels are
the shared hot path; they all take coordinate matrices of shape ``(n, d)``
(``lo`` and ``hi`` corners of ``n`` boxes) and a scalar window given by two
length-``d`` vectors, and return boolean masks of length ``n``.

All interval comparisons are *closed* (touching counts as intersecting),
matching :meth:`repro.geometry.box.Box.intersects`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError
from repro.geometry.box import Box


def _as_vector(value: np.ndarray | tuple | list, ndim: int) -> np.ndarray:
    vec = np.asarray(value, dtype=np.float64)
    if vec.shape != (ndim,):
        raise GeometryError(f"expected a length-{ndim} vector, got shape {vec.shape}")
    return vec


def boxes_intersect_window(
    lo: np.ndarray,
    hi: np.ndarray,
    window_lo: np.ndarray,
    window_hi: np.ndarray,
) -> np.ndarray:
    """Mask of boxes whose closed extent intersects the closed window.

    This is the paper's result predicate ``b ∩ q ≠ ∅`` evaluated in bulk.
    """
    ndim = lo.shape[1]
    qlo = _as_vector(window_lo, ndim)
    qhi = _as_vector(window_hi, ndim)
    return np.all(lo <= qhi, axis=1) & np.all(hi >= qlo, axis=1)


def boxes_contained_in_window(
    lo: np.ndarray,
    hi: np.ndarray,
    window_lo: np.ndarray,
    window_hi: np.ndarray,
) -> np.ndarray:
    """Mask of boxes lying entirely inside the window."""
    ndim = lo.shape[1]
    qlo = _as_vector(window_lo, ndim)
    qhi = _as_vector(window_hi, ndim)
    return np.all(lo >= qlo, axis=1) & np.all(hi <= qhi, axis=1)


def lower_corners_in_window(
    lo: np.ndarray,
    window_lo: np.ndarray,
    window_hi: np.ndarray,
) -> np.ndarray:
    """Mask of boxes whose *lower corner* falls inside the window.

    QUASII assigns objects to slices by their lower coordinate (Section
    5.1); combined with query extension this representative-point test is
    exact for refinement.
    """
    ndim = lo.shape[1]
    qlo = _as_vector(window_lo, ndim)
    qhi = _as_vector(window_hi, ndim)
    return np.all(lo >= qlo, axis=1) & np.all(lo <= qhi, axis=1)


def centers_in_window(
    lo: np.ndarray,
    hi: np.ndarray,
    window_lo: np.ndarray,
    window_hi: np.ndarray,
) -> np.ndarray:
    """Mask of boxes whose center falls inside the window.

    The query-extension grid (Section 3.2 / 6.2) assigns each object to the
    single cell containing its center.
    """
    centers = (lo + hi) * 0.5
    ndim = lo.shape[1]
    qlo = _as_vector(window_lo, ndim)
    qhi = _as_vector(window_hi, ndim)
    return np.all(centers >= qlo, axis=1) & np.all(centers <= qhi, axis=1)


def intersects(a_lo, a_hi, b_lo, b_hi) -> bool:
    """Scalar closed-interval intersection of two corner-pair boxes."""
    a_lo = np.asarray(a_lo, dtype=np.float64)
    a_hi = np.asarray(a_hi, dtype=np.float64)
    b_lo = np.asarray(b_lo, dtype=np.float64)
    b_hi = np.asarray(b_hi, dtype=np.float64)
    return bool(np.all(a_lo <= b_hi) and np.all(b_lo <= a_hi))


def mbr_of(lo: np.ndarray, hi: np.ndarray) -> Box:
    """Minimum bounding box of a non-empty batch of boxes."""
    if lo.shape[0] == 0:
        raise GeometryError("cannot compute the MBR of zero boxes")
    return Box(tuple(lo.min(axis=0)), tuple(hi.max(axis=0)))
