"""Geometric substrate: axis-aligned boxes and vectorized predicates.

Everything in the library — data objects, query windows, index partitions,
slice bounds — is an axis-aligned (hyper-)rectangle.  This package provides
the scalar :class:`~repro.geometry.box.Box` value type plus the NumPy
vectorized predicate kernels used by every index implementation.
"""

from repro.geometry.box import Box
from repro.geometry.predicates import (
    boxes_contain_window,
    boxes_contained_in_window,
    boxes_intersect_window,
    centers_in_window,
    intersects,
    lower_corners_in_window,
    mbr_of,
    predicate_mask,
)

__all__ = [
    "Box",
    "boxes_contain_window",
    "boxes_contained_in_window",
    "boxes_intersect_window",
    "centers_in_window",
    "intersects",
    "lower_corners_in_window",
    "mbr_of",
    "predicate_mask",
]
