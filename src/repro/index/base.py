"""Abstract interface implemented by every index in the library.

The paper compares seven systems (Scan, SFC, SFCracker, Grid, Mosaic,
R-Tree, QUASII).  They all expose the same two-phase contract:

* :meth:`SpatialIndex.build` — the static pre-processing step.  For
  incremental indexes this is (nearly) free; for static ones it is the
  "Building" bar of Figures 11 and 12.  The benchmark harness times it
  separately so cumulative-time plots can include it, exactly as the paper
  does.
* :meth:`SpatialIndex.query` — answer one range query, *possibly mutating
  internal state and the data array* (that is the whole point of
  incremental indexing).

Implementations also maintain an :class:`IndexStats` counter block so the
harness can report machine-independent work measures (objects tested,
cracks performed) next to wall-clock times.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.datasets.store import BoxStore
from repro.errors import QueryError
from repro.queries.range_query import RangeQuery


@dataclass
class IndexStats:
    """Machine-independent work counters, reset per benchmark phase.

    Attributes
    ----------
    queries:
        Number of queries answered.
    objects_tested:
        Candidate objects checked against a query window (the paper's
        "objects considered for intersection", e.g. the 3.1x GridQueryExt
        vs R-Tree factor of Section 6.2).
    results_returned:
        Total result-set cardinality.
    nodes_visited:
        Index nodes/slices/cells inspected.
    cracks:
        Reorganization operations performed (crack/split/repartition).
    rows_reorganized:
        Total rows physically moved by reorganizations — the paper's
        incremental-strategy cost driver.
    """

    queries: int = 0
    objects_tested: int = 0
    results_returned: int = 0
    nodes_visited: int = 0
    cracks: int = 0
    rows_reorganized: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.queries = 0
        self.objects_tested = 0
        self.results_returned = 0
        self.nodes_visited = 0
        self.cracks = 0
        self.rows_reorganized = 0

    def snapshot(self) -> IndexStats:
        """A frozen copy of the current counter values."""
        return IndexStats(
            queries=self.queries,
            objects_tested=self.objects_tested,
            results_returned=self.results_returned,
            nodes_visited=self.nodes_visited,
            cracks=self.cracks,
            rows_reorganized=self.rows_reorganized,
        )


class SpatialIndex(abc.ABC):
    """Base class for all spatial access methods in the library.

    Subclasses receive the shared :class:`~repro.datasets.store.BoxStore`
    and answer :class:`~repro.queries.range_query.RangeQuery` windows with
    NumPy arrays of object identifiers (unordered; callers sort when they
    need canonical output).
    """

    #: Short machine-readable name used by reports ("QUASII", "R-Tree", ...).
    name: str = "abstract"

    def __init__(self, store: BoxStore) -> None:
        self._store = store
        self.stats = IndexStats()
        self._built = False
        #: Work units spent by the static build step (0 for incrementals).
        #: Together with the per-query counters this yields a machine-
        #: independent comparison-cost model: testing or moving a row
        #: costs one unit, sorting m rows costs m*log2(m) units.
        self.build_work = 0

    @property
    def store(self) -> BoxStore:
        """The underlying data array (incremental indexes permute it)."""
        return self._store

    @property
    def is_built(self) -> bool:
        """Whether :meth:`build` has completed."""
        return self._built

    def build(self) -> None:
        """Run the static pre-processing step (idempotent).

        Incremental indexes keep the default no-op — their "build" happens
        as a side effect of queries.
        """
        self._built = True

    def query(self, query: RangeQuery) -> np.ndarray:
        """Answer a range query, returning intersecting object identifiers."""
        if query.ndim != self._store.ndim:
            raise QueryError(
                f"query has {query.ndim} dims, store has {self._store.ndim}"
            )
        self.stats.queries += 1
        result = self._query(query)
        self.stats.results_returned += int(result.size)
        return result

    @abc.abstractmethod
    def _query(self, query: RangeQuery) -> np.ndarray:
        """Index-specific query implementation."""

    def memory_bytes(self) -> int:
        """Approximate size of auxiliary index structures (not the data)."""
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(n={self._store.n})"
