"""Abstract interface implemented by every index in the library.

The paper compares seven systems (Scan, SFC, SFCracker, Grid, Mosaic,
R-Tree, QUASII).  They all expose the same contract:

* :meth:`SpatialIndex.build` — the static pre-processing step.  For
  incremental indexes this is (nearly) free; for static ones it is the
  "Building" bar of Figures 11 and 12.  The benchmark harness times it
  separately so cumulative-time plots can include it, exactly as the paper
  does.
* :meth:`SpatialIndex.execute` — answer one first-class
  :class:`~repro.queries.query.Query` (window + predicate + result
  mode), *possibly mutating internal state and the data array* (that is
  the whole point of incremental indexing), returning a
  :class:`~repro.queries.query.QueryResult` with the payload, a
  per-query :class:`IndexStats` delta, and wall-clock.
* :meth:`SpatialIndex.execute_batch` — answer a sequence of queries
  natively: shared validation, amortized maintenance, and (where the
  structure allows — Scan, Grid, SFC) genuinely vectorized candidate
  matrices covering the whole batch.
* :meth:`SpatialIndex.plan` — report what a query *would* touch
  (nodes/cells/slices, candidate rows, shards) without executing it.
* :meth:`SpatialIndex.query` — the legacy single-shot entry point
  (intersects predicate, ids payload).  Kept as a thin compatibility
  wrapper over :meth:`execute` so long-standing call sites and the
  property suites double as regression oracles for the new layer; new
  code should prefer :meth:`execute`.

Execution is split into the classic *filter → refine* pipeline, shared
across all indexes: each implementation supplies only
:meth:`SpatialIndex._candidates` (the filter step — a candidate row
superset for the query window, produced however the structure likes,
cracking included), while the refine step — predicate evaluation,
live-row masking, count-only short-circuits, and result packaging — is
implemented once here.

Implementations also maintain an :class:`IndexStats` counter block so the
harness can report machine-independent work measures (objects tested,
cracks performed) next to wall-clock times.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Sequence

import numpy as np

from repro.datasets.store import BoxStore
from repro.errors import ConfigurationError, QueryError
from repro.geometry.predicates import predicate_mask
from repro.queries.query import Query, QueryPlan, QueryResult, as_query
from repro.queries.range_query import RangeQuery


@dataclass
class IndexStats:
    """Machine-independent work counters, reset per benchmark phase.

    Attributes
    ----------
    queries:
        Number of queries answered.
    objects_tested:
        Candidate objects checked against a query window (the paper's
        "objects considered for intersection", e.g. the 3.1x GridQueryExt
        vs R-Tree factor of Section 6.2).
    results_returned:
        Total result-set cardinality.
    nodes_visited:
        Index nodes/slices/cells inspected.
    cracks:
        Reorganization operations performed (crack/split/repartition).
    rows_reorganized:
        Total rows physically moved by reorganizations — the paper's
        incremental-strategy cost driver.
    inserts:
        Objects inserted through :class:`MutableSpatialIndex.insert`.
    deletes:
        Objects deleted through :class:`MutableSpatialIndex.delete`.
    merges:
        Pending-update batches absorbed into the main index structure
        (QUASII buffer flushes, grid overflow compactions, ...).
    compactions:
        Store compactions absorbed through
        :meth:`MutableSpatialIndex.compact` (tombstoned rows physically
        reclaimed and positions remapped).
    rebalances:
        Shard-rebalancing passes applied
        (:class:`repro.sharding.Rebalancer`; 0 for unsharded indexes).
        Each pass splits a hot shard along the observed query
        distribution and merges a cold one away.
    rows_migrated:
        Rows physically moved between shards by rebalancing passes —
        the sharding layer's analogue of ``rows_reorganized``: migration
        is reorganization work paid to keep load balanced, exactly as
        cracking is reorganization work paid to keep scans short.
    shards_visited:
        Shards whose MBB intersected a query window and were fanned out
        to (:class:`repro.sharding.ShardedIndex`; 0 for unsharded
        indexes).
    shards_pruned:
        Shards skipped entirely because their MBB missed the query
        window — the sharding layer's analogue of ``nodes_visited``
        pruning.
    """

    queries: int = 0
    objects_tested: int = 0
    results_returned: int = 0
    nodes_visited: int = 0
    cracks: int = 0
    rows_reorganized: int = 0
    inserts: int = 0
    deletes: int = 0
    merges: int = 0
    compactions: int = 0
    rebalances: int = 0
    rows_migrated: int = 0
    shards_visited: int = 0
    shards_pruned: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.queries = 0
        self.objects_tested = 0
        self.results_returned = 0
        self.nodes_visited = 0
        self.cracks = 0
        self.rows_reorganized = 0
        self.inserts = 0
        self.deletes = 0
        self.merges = 0
        self.compactions = 0
        self.rebalances = 0
        self.rows_migrated = 0
        self.shards_visited = 0
        self.shards_pruned = 0

    # Coverage guarantee: every counter is a dataclass field, and
    # as_dict/snapshot/delta_since iterate ``dataclass_fields`` — so a
    # newly added counter is automatically covered by all three (and by
    # the telemetry ``stats.*`` flow built on as_dict).  A counter can
    # only escape deltas by not being a field at all, which
    # tests/unit/test_index_stats.py asserts cannot happen silently.

    def as_dict(self) -> dict[str, int]:
        """All counters as ``{name: value}``, in field order."""
        return {f.name: getattr(self, f.name) for f in dataclass_fields(self)}

    def snapshot(self) -> IndexStats:
        """A frozen copy of the current counter values."""
        return IndexStats(**self.as_dict())

    def delta_since(self, before: IndexStats) -> IndexStats:
        """Counter-wise difference ``self - before`` (per-query deltas).

        Covers every field — see the coverage guarantee above — so
        deltas of deltas, telemetry flows, and per-query stats all see
        the same complete counter set.
        """
        return IndexStats(
            **{
                name: value - getattr(before, name)
                for name, value in self.as_dict().items()
            }
        )


class SpatialIndex(abc.ABC):
    """Base class for all spatial access methods in the library.

    Subclasses receive the shared :class:`~repro.datasets.store.BoxStore`
    and answer :class:`~repro.queries.range_query.RangeQuery` windows with
    NumPy arrays of object identifiers (unordered; callers sort when they
    need canonical output).
    """

    #: Short machine-readable name used by reports ("QUASII", "R-Tree", ...).
    name: str = "abstract"

    def __init__(self, store: BoxStore) -> None:
        self._store = store
        self.stats = IndexStats()
        self._built = False
        #: Last store epoch this index has absorbed.  Queries verify it
        #: still matches: derived state (CSR arrays, tree nodes, slice
        #: forests) is only maintained for updates routed *through* the
        #: index, so a store updated behind its back must fail loudly
        #: instead of silently returning stale results.
        self._seen_epoch = store.epoch
        #: Work units spent by the static build step (0 for incrementals).
        #: Together with the per-query counters this yields a machine-
        #: independent comparison-cost model: testing or moving a row
        #: costs one unit, sorting m rows costs m*log2(m) units.
        self.build_work = 0

    @property
    def store(self) -> BoxStore:
        """The underlying data array (incremental indexes permute it)."""
        return self._store

    @property
    def is_built(self) -> bool:
        """Whether :meth:`build` has completed."""
        return self._built

    def build(self) -> None:
        """Run the static pre-processing step (idempotent).

        Incremental indexes keep the default no-op — their "build" happens
        as a side effect of queries.
        """
        self._built = True

    def query(self, query: RangeQuery) -> np.ndarray:
        """Answer a legacy range query, returning intersecting identifiers.

        **Legacy surface.**  This is the paper's original single-shot
        contract (intersects predicate, unordered-ids payload), kept as
        a thin wrapper over :meth:`execute` so existing call sites and
        the property suites keep working unchanged — it emits no
        warning and is not scheduled for removal, but new code should
        use :meth:`execute`, which exposes predicates, result modes,
        per-query stats, and timing.
        """
        return self.execute(Query.from_range(query)).ids

    # ------------------------------------------------------------------
    # First-class execution: execute / execute_batch / plan
    # ------------------------------------------------------------------
    def execute(self, query: Query | RangeQuery) -> QueryResult:
        """Execute one first-class query; returns payload + cost accounting.

        The single entry point behind every read verb: validates the
        window dimensionality and the store epoch, runs the index's
        filter step (:meth:`_candidates`) and the shared refine step
        (predicate + live mask + result packaging), and wraps the
        payload with this query's :class:`IndexStats` delta and
        wall-clock.
        """
        query = as_query(query)
        self._gate(query)
        return self._timed_one(query)

    def execute_batch(
        self, queries: Sequence[Query | RangeQuery]
    ) -> list[QueryResult]:
        """Execute a batch of queries natively, one result per query.

        Validation and the epoch check run once for the whole batch;
        implementations with vectorizable structure (Scan, Grid, SFC)
        additionally answer the batch through shared candidate matrices
        (one kernel invocation per predicate present instead of one per
        query), and incremental indexes amortize buffer merges across
        the batch.  Results come back in submission order and match a
        Python loop of :meth:`execute` calls exactly.
        """
        queries = [as_query(q) for q in queries]
        for q in queries:
            self._gate_dim(q)
        self._check_epoch()
        return self._execute_batch(queries)

    def plan(self, query: Query | RangeQuery) -> QueryPlan:
        """Report what this query *would* touch, without executing it.

        Planning never mutates the index — no cracking, splitting, or
        counter updates — so for incremental structures the numbers
        describe the pre-refinement state (``exact=False`` marks them
        as upper bounds).
        """
        query = as_query(query)
        self._gate(query)
        return self._plan(query)

    # -- gate helpers ---------------------------------------------------
    def _gate_dim(self, query: Query) -> None:
        if query.ndim != self._store.ndim:
            raise QueryError(
                f"query has {query.ndim} dims, store has {self._store.ndim}"
            )

    def _gate(self, query: Query) -> None:
        self._gate_dim(query)
        self._check_epoch()

    # -- shared execution skeleton --------------------------------------
    def _timed_one(self, query: Query) -> QueryResult:
        """Run one gated query with stats-delta and wall-clock capture."""
        before = self.stats.snapshot()
        t0 = time.perf_counter()
        self.stats.queries += 1
        count, ids, boxes = self._execute(query)
        self.stats.results_returned += (
            int(ids.size) if ids is not None else count
        )
        return QueryResult(
            query=query,
            count=count,
            ids=ids,
            boxes=boxes,
            stats=self.stats.delta_since(before),
            seconds=time.perf_counter() - t0,
        )

    def _execute(
        self, query: Query
    ) -> tuple[int, np.ndarray | None, tuple[np.ndarray, np.ndarray] | None]:
        """Produce one query's raw payload ``(count, ids, boxes)``.

        Default: the filter → refine pipeline over this index's
        candidate set.  Facade indexes that fan out to other indexes
        (:class:`~repro.sharding.sharded_index.ShardedIndex`) override
        this instead of :meth:`_candidates`.
        """
        return self._refine_candidates(query, self._candidates(query))

    def _execute_batch(self, queries: list[Query]) -> list[QueryResult]:
        """Batch execution after the shared gate; default is a loop.

        Overridden where the structure admits a genuinely batched
        path (vectorized candidate matrices, amortized merges,
        per-shard sub-batches).
        """
        return [self._timed_one(q) for q in queries]

    def _plan(self, query: Query) -> QueryPlan:
        """Index-specific plan; default assumes a full-store scan."""
        return QueryPlan(
            index=self.name,
            query=query,
            nodes=0,
            candidates=self._store.n,
            exact=True,
        )

    # -- the shared refine kernel ---------------------------------------
    def _refine_candidates(
        self, query: Query, rows: np.ndarray | None
    ) -> tuple[int, np.ndarray | None, tuple[np.ndarray, np.ndarray] | None]:
        """Refine candidate rows: predicate, live mask, packaging.

        ``rows`` is the filter step's output — a candidate row superset
        (dead rows and false positives allowed) or ``None`` meaning
        "every physical row" (the whole-store fast path, which tests
        the corner matrices in place without gathering).  Count-only
        queries short-circuit before any id/coordinate materialization.
        """
        store = self._store
        if rows is None:
            mask = predicate_mask(
                query.predicate, store.lo, store.hi, query.lo, query.hi
            )
            if store.n_dead:
                mask &= store.live
            if query.count_only:
                return int(mask.sum()), None, None
            return self._package(query, np.flatnonzero(mask))
        if rows.size == 0:
            return self._package(query, rows)
        mask = predicate_mask(
            query.predicate, store.lo[rows], store.hi[rows], query.lo, query.hi
        )
        if store.n_dead:
            mask &= store.live[rows]
        if query.count_only:
            return int(mask.sum()), None, None
        return self._package(query, rows[mask])

    def _package(
        self, query: Query, match_rows: np.ndarray
    ) -> tuple[int, np.ndarray | None, tuple[np.ndarray, np.ndarray] | None]:
        """Build the result-mode payload from final matching rows."""
        store = self._store
        count = int(match_rows.size)
        if query.count_only:
            return count, None, None
        ids = store.ids[match_rows]
        if query.mode == "ids":
            return count, ids, None
        lo = store.lo[match_rows]
        hi = store.hi[match_rows]
        if query.mode == "top_k" and count:
            volumes = np.prod(hi - lo, axis=1)
            # Largest volume first, ties broken by ascending id so the
            # ordering is deterministic across physical layouts.
            order = np.lexsort((ids, -volumes))[: query.k]
            ids, lo, hi = ids[order], lo[order], hi[order]
        return count, ids, (lo, hi)

    def _refine_stacked(
        self, queries: list[Query], rows_list: list[np.ndarray]
    ) -> list[tuple[int, np.ndarray | None, tuple | None]]:
        """Refine per-query candidate lists with one kernel per predicate.

        The batched form of :meth:`_refine`: all candidate rows of all
        queries sharing a predicate are concatenated and tested in a
        single vectorized call against per-row window matrices, then
        split back per query.  Used by the natively batched paths
        (Grid, SFC) whose candidate gathering is per-query but whose
        refine cost dominates.
        """
        store = self._store
        payloads: list = [None] * len(queries)
        groups: dict[str, list[int]] = {}
        for i, q in enumerate(queries):
            groups.setdefault(q.predicate, []).append(i)
        for pred, idxs in groups.items():
            counts = np.array(
                [rows_list[i].size for i in idxs], dtype=np.int64
            )
            offsets = np.concatenate(([0], np.cumsum(counts)))
            if offsets[-1]:
                cat = np.concatenate([rows_list[i] for i in idxs])
                win_lo = np.repeat(
                    np.stack([queries[i].lo for i in idxs]), counts, axis=0
                )
                win_hi = np.repeat(
                    np.stack([queries[i].hi for i in idxs]), counts, axis=0
                )
                mask = predicate_mask(
                    pred, store.lo[cat], store.hi[cat], win_lo, win_hi
                )
                if store.n_dead:
                    mask &= store.live[cat]
            else:
                cat = np.empty(0, dtype=np.int64)
                mask = np.empty(0, dtype=bool)
            for j, i in enumerate(idxs):
                q = queries[i]
                sub_mask = mask[offsets[j] : offsets[j + 1]]
                if q.count_only:
                    payloads[i] = (int(sub_mask.sum()), None, None)
                else:
                    sub_rows = cat[offsets[j] : offsets[j + 1]]
                    payloads[i] = self._package(q, sub_rows[sub_mask])
        return payloads

    def _wrap_batch(
        self,
        queries: list[Query],
        payloads: list[tuple[int, np.ndarray | None, tuple | None]],
        per_stats: list[IndexStats],
        seconds_total: float,
    ) -> list[QueryResult]:
        """Assemble batch results, attributing an equal time share each.

        ``per_stats`` carries the work counters the batch path tracked
        per query (candidates tested, nodes visited); the flow counters
        (``queries``, ``results_returned``) are filled in here, on both
        the per-query deltas and the cumulative index stats.
        """
        share = seconds_total / max(len(queries), 1)
        out: list[QueryResult] = []
        for query, (count, ids, boxes), stats in zip(
            queries, payloads, per_stats
        ):
            returned = int(ids.size) if ids is not None else count
            stats.queries = 1
            stats.results_returned = returned
            self.stats.queries += 1
            self.stats.results_returned += returned
            out.append(
                QueryResult(
                    query=query,
                    count=count,
                    ids=ids,
                    boxes=boxes,
                    stats=stats,
                    seconds=share,
                )
            )
        return out

    def _check_epoch(self) -> None:
        """Fail loudly if the store was updated outside this index.

        Derived state (CSR arrays, tree nodes, slice forests) is only
        maintained for updates routed through the index; serving — or
        absorbing more — on top of an out-of-band mutation would silently
        drop rows.
        """
        if self._store.epoch != self._seen_epoch:
            raise QueryError(
                f"store epoch {self._store.epoch} != index epoch "
                f"{self._seen_epoch}: the store was updated outside this "
                f"index; route inserts/deletes through the index, or "
                f"construct a fresh index over the store"
            )

    @abc.abstractmethod
    def _candidates(self, query: Query) -> np.ndarray | None:
        """The filter step: candidate physical rows for the query window.

        Returns a superset of the live rows intersecting ``query``'s
        window — dead rows and false positives are fine (the shared
        refine step removes them), duplicates are not — or ``None``
        meaning "every physical row" (lets whole-store scans skip the
        gather).  Incremental indexes may reorganize the store here
        (cracking, splitting); all reorganization for this query must
        finish before returning, since the refine step reads the
        returned row positions afterwards.  Implementations maintain
        their own ``objects_tested`` / ``nodes_visited`` counters.
        """

    def on_compaction(self, remap: np.ndarray) -> None:
        """Absorb a store compaction: remap or rebuild derived state.

        ``remap`` is the old-position → new-position vector returned by
        :meth:`BoxStore.compact` (``-1`` marks dropped rows).  After the
        index-specific remap, the index re-syncs to the store's epoch,
        so this is also the sanctioned way to revalidate an index whose
        store was compacted out-of-band (e.g. a static SFC index over a
        store compacted by its owner).  Indexes that cannot absorb a
        compaction raise; rebuild them over the compacted store instead.
        """
        if remap.ndim != 1:
            raise ConfigurationError("compaction remap must be a flat vector")
        self._on_compaction(remap)
        self._seen_epoch = self._store.epoch

    def _on_compaction(self, remap: np.ndarray) -> None:
        """Index-specific compaction absorption; default: unsupported."""
        raise ConfigurationError(
            f"{self.name} holds physical row references and cannot absorb "
            f"a store compaction; construct a fresh index over the "
            f"compacted store"
        )

    def memory_bytes(self) -> int:
        """Approximate size of auxiliary index structures (not the data)."""
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(n={self._store.n})"


class MutableSpatialIndex(SpatialIndex):
    """A :class:`SpatialIndex` that also absorbs inserts and deletes.

    The paper evaluates QUASII on a static data array and leaves updates
    as future work; this mixin is that future work for the reproduction.
    It adds the two write verbs of the mixed read/write workloads:

    * :meth:`insert` — add new objects.  How they reach the main
      structure is implementation-defined: QUASII stages them in an
      :class:`~repro.updates.buffer.UpdateBuffer` and merges lazily on
      the next query (cracking the appended run like any unrefined
      slice); the grid and R-Tree place them directly.
    * :meth:`delete` — remove objects by identifier.  The shared
      :class:`BoxStore` tombstones the rows, so every structure that
      resolves candidates through the store's live mask stays correct
      without reorganizing.

    plus the maintenance verb that pays the tombstones off:

    * :meth:`compact` — physically reclaim dead rows and absorb the
      position remap into the index structure, so scans stop paying for
      rows deletes left behind.

    The verbs maintain the ``inserts`` / ``deletes`` / ``compactions``
    counters; lazy implementations additionally bump ``merges`` when a
    pending batch is absorbed.  After any interleaving of queries and
    updates the index must return exactly the live-row set a full scan
    returns — the property suite enforces this against the Scan oracle.
    """

    def insert(
        self,
        lo: np.ndarray,
        hi: np.ndarray,
        ids: np.ndarray | None = None,
    ) -> np.ndarray:
        """Insert a batch of boxes; returns their assigned identifiers.

        ``lo``/``hi`` are ``(k, d)`` corner matrices (a single length-``d``
        pair is promoted to a batch of one).  Fresh identifiers are
        allocated unless ``ids`` is given.

        The full batch is validated by the store's shared gate *before*
        it reaches the index-specific path — lazy implementations stage
        rows long before the store sees them, and a batch that would fail
        the store's checks at merge time must be rejected up front, not
        lost.
        """
        self._check_epoch()
        lo, hi, ids = self._store.validate_batch(lo, hi, ids)
        assigned = self._insert(lo, hi, ids)
        self._seen_epoch = self._store.epoch
        self.stats.inserts += int(assigned.size)
        return assigned

    def delete(self, ids: np.ndarray) -> int:
        """Delete the objects with the given identifiers; returns the count.

        Deleting an id that is not currently live raises, keeping update
        ledgers exact.
        """
        self._check_epoch()
        ids = np.asarray(ids, dtype=np.int64).ravel()
        removed = self._delete(ids)
        self._seen_epoch = self._store.epoch
        self.stats.deletes += removed
        return removed

    def compact(self) -> int:
        """Physically reclaim tombstoned rows; returns the count dropped.

        The maintenance verb of the four-mutation model: the store drops
        its dead rows (:meth:`BoxStore.compact`) and the index absorbs
        the resulting position remap through :meth:`on_compaction` —
        slice forests defragment, CSR/leaf row vectors remap, pruning
        boxes re-tighten.  Query results are unchanged (the live
        multiset is invariant); what changes is the cost of computing
        them, since scans stop paying for dead rows.  A store with no
        dead rows is a no-op returning 0.
        """
        self._check_epoch()
        reclaimed = self._store.n_dead
        if reclaimed == 0:
            return 0
        self.on_compaction(self._store.compact())
        self.stats.compactions += 1
        return reclaimed

    def pending_updates(self) -> int:
        """Number of staged rows not yet merged into the main structure."""
        return 0

    def flush_updates(self) -> int:
        """Force pending (buffered) inserts into the main structure now.

        Lazy implementations (QUASII) normally merge their update buffer
        on the next query; maintenance operations that relocate rows —
        shard rebalancing migrates a shard's *store*, so a row still
        sitting in a buffer would be invisible to the move — need every
        owned row physically present first.  Returns the number of rows
        merged (0 when nothing was pending); eager implementations keep
        the default no-op.  Counts toward the ``merges`` counter exactly
        like a query-triggered merge.  Does not change query results:
        buffered rows are already part of the index's answer set.
        """
        return 0

    @abc.abstractmethod
    def _insert(
        self, lo: np.ndarray, hi: np.ndarray, ids: np.ndarray | None
    ) -> np.ndarray:
        """Index-specific insert of validated ``(k, d)`` corner batches."""

    def _delete(self, ids: np.ndarray) -> int:
        """Index-specific delete; the default tombstones store rows."""
        return self._store.delete_ids(ids)
