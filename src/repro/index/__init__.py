"""Common index interface shared by QUASII and every baseline."""

from repro.index.base import IndexStats, MutableSpatialIndex, SpatialIndex

__all__ = ["IndexStats", "MutableSpatialIndex", "SpatialIndex"]
