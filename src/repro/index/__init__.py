"""Common index interface shared by QUASII and every baseline."""

from repro.index.base import IndexStats, SpatialIndex

__all__ = ["IndexStats", "SpatialIndex"]
