"""Query model: first-class query specs, range windows, and workloads."""

from repro.queries.io import load_workload, save_workload
from repro.queries.query import (
    PREDICATES,
    RESULT_MODES,
    Query,
    QueryPlan,
    QueryResult,
    as_query,
)
from repro.queries.range_query import RangeQuery, side_for_volume_fraction
from repro.queries.workloads import (
    WorkloadOp,
    clustered_workload,
    drifting_hotspot_workload,
    hotspot_workload,
    mixed_workload,
    selectivity_sweep,
    sequential_workload,
    uniform_workload,
)

__all__ = [
    "PREDICATES",
    "Query",
    "QueryPlan",
    "QueryResult",
    "RESULT_MODES",
    "RangeQuery",
    "WorkloadOp",
    "as_query",
    "clustered_workload",
    "drifting_hotspot_workload",
    "hotspot_workload",
    "load_workload",
    "mixed_workload",
    "save_workload",
    "selectivity_sweep",
    "sequential_workload",
    "side_for_volume_fraction",
    "uniform_workload",
]
