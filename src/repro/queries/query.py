"""First-class query specs: predicates, result modes, plans, and results.

The paper's sole query type — an intersects-window returning all matching
ids — generalizes here into a small algebra (the common filter→refine
interface of "The Case for Learned Spatial Indexes"):

* :class:`Query` — a frozen spec: a window box, a *predicate* choosing
  which window/object relation counts as a match, a *result mode*
  choosing what the caller gets back, and per-query options (the top-k
  limit).  :class:`~repro.queries.range_query.RangeQuery` remains the
  legacy intersects/ids special case; :func:`as_query` upgrades either.
* :class:`QueryResult` — the payload plus a per-query
  :class:`~repro.index.base.IndexStats` delta and wall-clock, so every
  answer carries its own cost accounting.
* :class:`QueryPlan` — what an index *would* touch for a query
  (nodes/cells/slices, candidate rows, shards) without executing it;
  returned by :meth:`~repro.index.base.SpatialIndex.plan`.

Predicates follow the OGC convention with the *object* as subject
(``object.predicate(window)``):

============== =====================================================
``intersects`` object ∩ window ≠ ∅ (the paper's result definition)
``within``     object lies entirely inside the window
``contains``   object contains the whole window
``covers_point`` object covers the query point (degenerate window)
============== =====================================================

Every predicate implies window intersection, which is what makes one
shared candidate→refine kernel sufficient: any index's intersects
candidate set is already a superset of every predicate's matches.

Result modes:

============== =====================================================
``ids``        unordered object identifiers (the legacy payload)
``boxes``      ids plus the matching ``(k, d)`` corner matrices
``count``      match count only — no id/coordinate materialization
``top_k``      the ``k`` largest matches by box volume (descending,
               ties broken by ascending id), ids + boxes
============== =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import QueryError
from repro.geometry.box import Box
from repro.queries.range_query import RangeQuery

if TYPE_CHECKING:  # pragma: no cover - layering: index sits above queries
    from repro.index.base import IndexStats

#: Supported window/object predicates (object as subject).
PREDICATES = ("intersects", "within", "contains", "covers_point")

#: Supported result modes.
RESULT_MODES = ("ids", "boxes", "count", "top_k")


@dataclass(frozen=True)
class Query:
    """One spatial query: window + predicate + result mode + options.

    Attributes
    ----------
    window:
        The query box (degenerate point/line windows are legal).
    predicate:
        One of :data:`PREDICATES`; ``covers_point`` additionally
        requires the window to be a single point (all sides zero).
    mode:
        One of :data:`RESULT_MODES`.
    k:
        Top-k limit; required (>= 1) for ``top_k`` and rejected
        otherwise.
    seq:
        Zero-based workload position, as on :class:`RangeQuery`.
    """

    window: Box
    predicate: str = "intersects"
    mode: str = "ids"
    k: int | None = None
    seq: int = 0
    _lo: np.ndarray = field(init=False, repr=False, compare=False)
    _hi: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.predicate not in PREDICATES:
            raise QueryError(
                f"unknown predicate {self.predicate!r}; expected one of "
                f"{PREDICATES}"
            )
        if self.mode not in RESULT_MODES:
            raise QueryError(
                f"unknown result mode {self.mode!r}; expected one of "
                f"{RESULT_MODES}"
            )
        if self.seq < 0:
            raise QueryError(
                f"query sequence number must be >= 0, got {self.seq}"
            )
        if self.mode == "top_k":
            if self.k is None or self.k < 1:
                raise QueryError(
                    f"top_k queries need a limit k >= 1, got {self.k}"
                )
        elif self.k is not None:
            raise QueryError(
                f"k is a top_k option; mode {self.mode!r} does not take it"
            )
        if self.predicate == "covers_point" and any(
            l != h for l, h in zip(self.window.lo, self.window.hi)
        ):
            raise QueryError(
                "covers_point queries take a point window (all sides "
                f"zero); got sides {self.window.sides}"
            )
        object.__setattr__(
            self, "_lo", np.asarray(self.window.lo, dtype=np.float64)
        )
        object.__setattr__(
            self, "_hi", np.asarray(self.window.hi, dtype=np.float64)
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_range(cls, query: RangeQuery) -> Query:
        """Upgrade a legacy :class:`RangeQuery` (intersects/ids)."""
        return cls(window=query.window, seq=query.seq)

    @classmethod
    def point(
        cls, coords: Sequence[float], mode: str = "ids", seq: int = 0
    ) -> Query:
        """A covers-point query at the given coordinates."""
        pt = tuple(float(c) for c in coords)
        return cls(
            window=Box(pt, pt), predicate="covers_point", mode=mode, seq=seq
        )

    # ------------------------------------------------------------------
    # Accessors (mirror RangeQuery so kernels take either)
    # ------------------------------------------------------------------
    @property
    def lo(self) -> np.ndarray:
        """Lower corner as a float64 vector (cached)."""
        return self._lo

    @property
    def hi(self) -> np.ndarray:
        """Upper corner as a float64 vector (cached)."""
        return self._hi

    @property
    def ndim(self) -> int:
        """Window dimensionality."""
        return self.window.ndim

    @property
    def count_only(self) -> bool:
        """True when no ids/coordinates need materializing."""
        return self.mode == "count"

    def as_range(self) -> RangeQuery:
        """The legacy window-only view (predicate/mode dropped)."""
        return RangeQuery(self.window, seq=self.seq)


def as_query(query: Query | RangeQuery) -> Query:
    """Normalize either query flavour to a :class:`Query`."""
    if isinstance(query, Query):
        return query
    if isinstance(query, RangeQuery):
        return Query.from_range(query)
    raise QueryError(
        f"expected a Query or RangeQuery, got {type(query).__name__}"
    )


@dataclass(frozen=True)
class QueryPlan:
    """What an index *would* touch for a query, without executing it.

    Produced by :meth:`~repro.index.base.SpatialIndex.plan`; planning
    never mutates the index (no cracking, no splitting, no counters), so
    the numbers describe the structure *as it stands* — for incremental
    indexes the actual execution may touch less after it refines.

    Attributes
    ----------
    index:
        Display name of the planning index.
    query:
        The planned query.
    nodes:
        Index nodes the walk would inspect: slices (QUASII), cells
        (grid), code intervals (SFC/SFCracker), partitions (Mosaic),
        tree nodes (R-Tree), or the sum over fanned-out shards.
    candidates:
        Candidate rows the refine step would test against the window.
    shards:
        Shards the query would fan out to (0 for unsharded indexes).
    exact:
        False when the numbers are upper bounds (an unrefined
        incremental index reorganizes *during* execution, so its plan
        describes the pre-refinement structure).
    """

    index: str
    query: Query
    nodes: int
    candidates: int
    shards: int = 0
    exact: bool = True

    def explain(self) -> str:
        """One-line human-readable rendering of the plan."""
        parts = [
            f"{self.index}: predicate={self.query.predicate}",
            f"mode={self.query.mode}",
            f"nodes={self.nodes}",
            f"candidates={self.candidates}",
        ]
        if self.shards:
            parts.append(f"shards={self.shards}")
        if not self.exact:
            parts.append("(upper bound: execution refines the structure)")
        return " ".join(parts)


@dataclass(frozen=True, eq=False)
class QueryResult:
    """One executed query's payload plus its cost accounting.

    Identity-compared (``eq=False``): the ndarray payload fields make a
    generated field-wise ``__eq__`` raise on multi-element arrays, and
    two executions are distinct events anyway — compare payloads
    (``ids``/``count``) explicitly instead.

    Attributes
    ----------
    query:
        The executed query.
    count:
        Total number of matching objects (every mode reports it; for
        ``top_k`` it counts *all* matches, of which at most ``k`` are
        materialized).
    ids:
        Matching identifiers (``None`` in ``count`` mode; at most ``k``
        entries, volume-descending, in ``top_k`` mode).
    boxes:
        ``(lo, hi)`` corner matrices parallel to ``ids`` (``boxes`` and
        ``top_k`` modes only, ``None`` otherwise).
    stats:
        Per-query :class:`~repro.index.base.IndexStats` delta — the
        work this query caused (``None`` on executor paths that cannot
        attribute fleet work to a single query).
    seconds:
        Wall-clock spent executing this query.  Natively batched paths
        measure the batch once and attribute an equal share per query.
    """

    query: Query
    count: int
    ids: np.ndarray | None = None
    boxes: tuple[np.ndarray, np.ndarray] | None = None
    stats: "IndexStats | None" = None
    seconds: float = 0.0
