"""Range (window) queries — the paper's sole query type.

A range query is a box; all objects whose MBB intersects it belong to the
result (Section 2).  :class:`RangeQuery` wraps the window box with a stable
sequence number (its position in the workload) and caches the NumPy corner
vectors every index kernel consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import QueryError
from repro.geometry.box import Box


@dataclass(frozen=True)
class RangeQuery:
    """A window query with a workload sequence number.

    Attributes
    ----------
    window:
        The query box ``(ql, qu)``.
    seq:
        Zero-based position in the workload; used by benchmark reports
        ("query sequence" axis of every figure).
    """

    window: Box
    seq: int = 0
    _lo: np.ndarray = field(init=False, repr=False, compare=False)
    _hi: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.seq < 0:
            raise QueryError(f"query sequence number must be >= 0, got {self.seq}")
        object.__setattr__(
            self, "_lo", np.asarray(self.window.lo, dtype=np.float64)
        )
        object.__setattr__(
            self, "_hi", np.asarray(self.window.hi, dtype=np.float64)
        )

    @property
    def lo(self) -> np.ndarray:
        """Lower corner as a float64 vector (cached)."""
        return self._lo

    @property
    def hi(self) -> np.ndarray:
        """Upper corner as a float64 vector (cached)."""
        return self._hi

    @property
    def ndim(self) -> int:
        """Window dimensionality."""
        return self.window.ndim

    @property
    def volume(self) -> float:
        """Window volume (the paper's ``qvol`` measure, in absolute units)."""
        return self.window.volume

    def volume_fraction(self, universe: Box) -> float:
        """Window volume as a fraction of the universe volume.

        This is the paper's *selectivity* knob: e.g. ``1e-4`` is the
        "10^-2 %" clustered workload and ``1e-3`` the "0.1 %" uniform one.
        Degenerate windows are first-class point/line queries with volume
        0, so their fraction is 0.  A degenerate *universe* (e.g. a line
        dataset embedded in 2-d) is measured over its positive-extent
        dimensions only; a window spanning a dimension the universe does
        not is clipped to it by every generator, so the projected ratio
        remains the meaningful selectivity.
        """
        uni_sides = np.asarray(universe.sides, dtype=np.float64)
        if np.all(uni_sides <= 0):
            # A point universe: any window clipped to it is the whole
            # universe.
            return 1.0
        positive = uni_sides > 0
        win_sides = self._hi - self._lo
        return float(
            np.prod(win_sides[positive]) / np.prod(uni_sides[positive])
        )


def side_for_volume_fraction(universe: Box, fraction: float) -> float:
    """Side length of the cube covering ``fraction`` of the universe volume.

    The paper specifies query sizes as volume fractions ("selectivity");
    workload generators convert them to cubic windows with this helper.
    ``fraction == 0`` is the degenerate point-query limit and yields side
    0 — zero-extent windows are legal first-class queries.
    """
    if fraction < 0:
        raise QueryError(
            f"volume fraction must be non-negative, got {fraction}"
        )
    if fraction > 1:
        raise QueryError(f"volume fraction must be <= 1, got {fraction}")
    return float(universe.volume * fraction) ** (1.0 / universe.ndim)
