"""Workload persistence: save/replay exact query sequences.

The paper's evaluation depends on *sequences* (convergence is a property
of the order queries arrive in), so reproducibility requires replaying the
exact same workload.  Generators are seeded, but persisting the windows
also guards against generator evolution across versions.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import QueryError
from repro.geometry.box import Box
from repro.queries.range_query import RangeQuery

_FORMAT_VERSION = 1


def save_workload(queries: list[RangeQuery], path: str | Path) -> Path:
    """Write a query sequence to ``path`` (``.npz`` appended if missing)."""
    if not queries:
        raise QueryError("cannot save an empty workload")
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    lo = np.array([q.window.lo for q in queries], dtype=np.float64)
    hi = np.array([q.window.hi for q in queries], dtype=np.float64)
    seqs = np.array([q.seq for q in queries], dtype=np.int64)
    np.savez_compressed(
        path, version=np.int64(_FORMAT_VERSION), lo=lo, hi=hi, seq=seqs
    )
    return path


def load_workload(path: str | Path) -> list[RangeQuery]:
    """Read a query sequence written by :func:`save_workload`."""
    path = Path(path)
    if not path.exists():
        raise QueryError(f"workload file not found: {path}")
    with np.load(path, allow_pickle=False) as archive:
        try:
            version = int(archive["version"])
            lo = archive["lo"]
            hi = archive["hi"]
            seqs = archive["seq"]
        except KeyError as exc:
            raise QueryError(f"{path} is not a repro workload archive") from exc
    if version != _FORMAT_VERSION:
        raise QueryError(
            f"unsupported workload format version {version} "
            f"(this build reads version {_FORMAT_VERSION})"
        )
    return [
        RangeQuery(Box(tuple(lo[i]), tuple(hi[i])), seq=int(seqs[i]))
        for i in range(lo.shape[0])
    ]
