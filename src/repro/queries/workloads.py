"""Query workload generators matching the paper's evaluation (Section 6.1).

Two workload shapes drive every figure:

* **Clustered** (:func:`clustered_workload`) — the neuroscience use case:
  ``n_clusters`` regions are picked at random, then each receives a burst
  of spatially close queries whose centers follow a Gaussian around the
  cluster center.  The paper uses 5 clusters x 100 queries with a fixed
  window volume of 10^-2 % of the universe and sigma tied to the query
  extent.  The bursts produce the five per-cluster peaks visible in
  Figures 7–9.
* **Uniform** (:func:`uniform_workload`) — up to 10,000 independently
  placed queries of a fixed volume fraction, used for the convergence,
  scalability, and selectivity studies (Figures 10–12).

Windows are always clipped to the universe so a query never asks for space
where no data can live (matching how the paper samples query centers from
the dataset extent).

Beyond the paper, :func:`mixed_workload` interleaves window queries with
insert/delete batches — the update subsystem's mixed read/write scenario
(the paper leaves updates as future work; see :mod:`repro.updates`) —
:func:`hotspot_workload` generates the skewed 90/10 serving traffic
the sharding bench uses to study shard balance and pruning, and
:func:`drifting_hotspot_workload` moves that hot region across phases
(optionally with skewed ingestion into it) — the scenario shard
rebalancing exists for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.box import Box
from repro.queries.range_query import RangeQuery, side_for_volume_fraction


def _window_at(
    center: np.ndarray, side: float, universe: Box
) -> Box:
    """Cubic window of the given side centered at ``center``, clipped."""
    half = side / 2.0
    lo = np.maximum(center - half, np.asarray(universe.lo))
    hi = np.minimum(center + half, np.asarray(universe.hi))
    hi = np.maximum(hi, lo)
    return Box(tuple(lo), tuple(hi))


def clustered_workload(
    universe: Box,
    n_clusters: int = 5,
    queries_per_cluster: int = 100,
    volume_fraction: float = 1e-4,
    sigma_in_sides: float = 2.0,
    seed: int = 0,
) -> list[RangeQuery]:
    """The paper's clustered exploration workload.

    Parameters
    ----------
    universe:
        Box to draw cluster centers from (the dataset universe).
    n_clusters, queries_per_cluster:
        Workload shape; the paper uses 5 x 100.
    volume_fraction:
        Window volume as a fraction of the universe volume.  The paper's
        "selectivity 0.01%" is ``1e-4``.
    sigma_in_sides:
        Standard deviation of query centers around their cluster center,
        expressed in window side lengths.  The paper ties sigma to the
        query volume; measuring it in window sides keeps the bursts
        overlapping (each cluster's queries repeatedly touch the same
        region) for any selectivity.
    seed:
        RNG seed.

    Returns
    -------
    list[RangeQuery]
        ``n_clusters * queries_per_cluster`` queries ordered cluster by
        cluster — the order matters, it produces the per-cluster peaks of
        Figures 7–9.
    """
    if n_clusters < 1:
        raise ConfigurationError(f"need at least one cluster, got {n_clusters}")
    if queries_per_cluster < 1:
        raise ConfigurationError(
            f"need at least one query per cluster, got {queries_per_cluster}"
        )
    if sigma_in_sides < 0:
        raise ConfigurationError(
            f"sigma_in_sides must be non-negative, got {sigma_in_sides}"
        )
    rng = np.random.default_rng(seed)
    side = side_for_volume_fraction(universe, volume_fraction)
    uni_lo = np.asarray(universe.lo)
    uni_hi = np.asarray(universe.hi)

    # Keep cluster centers away from the boundary so the windows around
    # them stay (mostly) inside the universe.
    margin = min(side * (sigma_in_sides + 1.0), float((uni_hi - uni_lo).min()) / 4)
    centers = rng.uniform(uni_lo + margin, uni_hi - margin, size=(n_clusters, universe.ndim))

    queries: list[RangeQuery] = []
    sigma = side * sigma_in_sides
    for c in range(n_clusters):
        offsets = rng.normal(0.0, sigma, size=(queries_per_cluster, universe.ndim))
        for k in range(queries_per_cluster):
            window = _window_at(centers[c] + offsets[k], side, universe)
            queries.append(RangeQuery(window, seq=len(queries)))
    return queries


def uniform_workload(
    universe: Box,
    n_queries: int = 1000,
    volume_fraction: float = 1e-3,
    seed: int = 0,
) -> list[RangeQuery]:
    """Uniformly distributed cubic windows of a fixed volume fraction."""
    if n_queries < 1:
        raise ConfigurationError(f"need at least one query, got {n_queries}")
    rng = np.random.default_rng(seed)
    side = side_for_volume_fraction(universe, volume_fraction)
    uni_lo = np.asarray(universe.lo)
    uni_hi = np.asarray(universe.hi)
    centers = rng.uniform(uni_lo, uni_hi, size=(n_queries, universe.ndim))
    return [
        RangeQuery(_window_at(centers[k], side, universe), seq=k)
        for k in range(n_queries)
    ]


def sequential_workload(
    universe: Box,
    n_queries: int = 100,
    volume_fraction: float = 1e-3,
    overlap: float = 0.0,
    dim: int = 0,
    seed: int = 0,
) -> list[RangeQuery]:
    """Windows sweeping the universe along one dimension, left to right.

    Sequential patterns are the classic adversarial case for cracking
    (each query touches a fresh, never-cracked region, so per-query
    reorganization cost never converges within the sweep — the motivation
    behind stochastic cracking [Halim et al.], which the paper cites).
    This generator exists to probe that regime for spatial cracking.

    Parameters
    ----------
    universe:
        Box to sweep.
    n_queries:
        Number of windows in the sweep.
    volume_fraction:
        Window volume as a fraction of the universe volume.
    overlap:
        Fraction of a window side shared by consecutive windows
        (``0`` = disjoint steps, ``0.5`` = half-overlapping).
    dim:
        Sweep dimension; other dimensions get a fixed random center.
    seed:
        RNG seed for the off-sweep center coordinates.
    """
    if n_queries < 1:
        raise ConfigurationError(f"need at least one query, got {n_queries}")
    if not 0.0 <= overlap < 1.0:
        raise ConfigurationError(f"overlap must be in [0, 1), got {overlap}")
    if not 0 <= dim < universe.ndim:
        raise ConfigurationError(
            f"dim {dim} out of range for a {universe.ndim}-d universe"
        )
    rng = np.random.default_rng(seed)
    side = side_for_volume_fraction(universe, volume_fraction)
    uni_lo = np.asarray(universe.lo)
    uni_hi = np.asarray(universe.hi)
    center = rng.uniform(uni_lo + side / 2, uni_hi - side / 2)
    step = side * (1.0 - overlap)
    queries: list[RangeQuery] = []
    span = max(float(uni_hi[dim] - uni_lo[dim]) - side, 1e-12)
    for k in range(n_queries):
        # Sweep wraps around once the window reaches the universe edge.
        center[dim] = uni_lo[dim] + side / 2 + ((k * step) % span)
        queries.append(RangeQuery(_window_at(center, side, universe), seq=k))
    return queries


def hotspot_workload(
    universe: Box,
    n_queries: int = 1000,
    volume_fraction: float = 1e-3,
    hotspot_fraction: float = 0.9,
    hotspot_volume: float = 0.05,
    seed: int = 0,
) -> list[RangeQuery]:
    """A skewed serving workload: most queries land inside one hot region.

    The classic 90/10 pattern of serving traffic: ``hotspot_fraction`` of
    the queries draw their centers from a single randomly placed sub-box
    occupying ``hotspot_volume`` of the universe; the rest are uniform.
    The sharding bench uses it to measure shard *imbalance* (a spatial
    partitioning concentrates the hot queries on few shards) and what
    MBB pruning is worth when traffic is not uniform.

    Parameters
    ----------
    universe:
        Box to draw query centers from.
    n_queries:
        Number of queries.
    volume_fraction:
        Per-query window volume as a fraction of the universe volume.
    hotspot_fraction:
        Fraction of queries whose centers fall in the hot region.
    hotspot_volume:
        Hot region volume as a fraction of the universe volume.
    seed:
        RNG seed.  Query ``k`` is drawn from its own counter-based
        stream seeded by ``(seed, k)`` (the hot region's placement from
        ``seed`` alone), so the workload is *prefix-stable*: the first
        ``m`` queries are identical for every ``n_queries >= m``, which
        makes sweeps over the query count comparable.  (A single shared
        stream would shift every draw whenever ``n_queries`` changes.)
    """
    if n_queries < 1:
        raise ConfigurationError(f"need at least one query, got {n_queries}")
    if not 0.0 <= hotspot_fraction <= 1.0:
        raise ConfigurationError(
            f"hotspot_fraction must be in [0, 1], got {hotspot_fraction}"
        )
    if not 0.0 < hotspot_volume <= 1.0:
        raise ConfigurationError(
            f"hotspot_volume must be in (0, 1], got {hotspot_volume}"
        )
    side = side_for_volume_fraction(universe, volume_fraction)
    uni_lo = np.asarray(universe.lo)
    uni_hi = np.asarray(universe.hi)
    hot_lo, hot_hi = _hotspot_box(universe, hotspot_volume, seed)
    queries: list[RangeQuery] = []
    for k in range(n_queries):
        qrng = np.random.default_rng((seed, k))
        in_hot = qrng.uniform() < hotspot_fraction
        lo, hi = (hot_lo, hot_hi) if in_hot else (uni_lo, uni_hi)
        center = qrng.uniform(lo, hi)
        queries.append(RangeQuery(_window_at(center, side, universe), seq=k))
    return queries


def _hotspot_box(
    universe: Box, hotspot_volume: float, seed: int | tuple[int, ...]
) -> tuple[np.ndarray, np.ndarray]:
    """Place one hot sub-box of the given volume fraction, from ``seed``."""
    rng = np.random.default_rng(seed)
    hot_side = side_for_volume_fraction(universe, hotspot_volume)
    uni_lo = np.asarray(universe.lo)
    uni_hi = np.asarray(universe.hi)
    hot_lo = rng.uniform(uni_lo, np.maximum(uni_hi - hot_side, uni_lo))
    hot_hi = np.minimum(hot_lo + hot_side, uni_hi)
    return hot_lo, hot_hi


def drifting_hotspot_workload(
    universe: Box,
    n_ops: int = 600,
    phases: int = 3,
    volume_fraction: float = 1e-3,
    hotspot_fraction: float = 0.9,
    hotspot_volume: float = 0.05,
    insert_every: int = 0,
    insert_batch: int = 32,
    box_sides: tuple[float, float] = (1.0, 10.0),
    seed: int = 0,
) -> list[WorkloadOp]:
    """Hotspot traffic whose hot region *moves* — the rebalancing workload.

    Serving traffic is not stationary: today's hot region is not
    yesterday's — but it is usually *near* yesterday's.  This generator
    splits ``n_ops`` into ``phases`` equal stretches; the first phase's
    hot sub-box is placed at random, and each later phase's box takes a
    random-walk step of about one box side from the previous one
    (clipped to the universe), so the hotspot wanders through a coherent
    neighborhood instead of teleporting.  Within a phase, operations
    follow the :func:`hotspot_workload` 90/10 shape, and — when
    ``insert_every > 0`` — every ``insert_every``-th operation is
    instead an insert batch of ``insert_batch`` boxes placed *inside the
    current hot region* (skewed ingestion: new data arrives where the
    traffic is).  The combination drifts both rebalancing signals at
    once and lets them compound: traffic keeps returning to the same
    spatial neighborhood, so the shards covering it accrete rows phase
    after phase (balance factor) while serving most of the queries
    (query-load skew).

    Every draw comes from a counter-based stream seeded by
    ``(seed, phase, op)``, so workloads are prefix-stable per phase and
    comparable across ``n_ops`` sweeps.

    Parameters
    ----------
    universe:
        Box to draw hot regions, query centers, and inserted boxes from.
    n_ops:
        Total operation count across all phases.
    phases:
        Number of hot-region placements (>= 1); the hot box takes one
        random-walk step at each phase boundary.
    volume_fraction:
        Per-query window volume as a fraction of the universe volume.
    hotspot_fraction:
        Fraction of queries whose centers fall in the current hot region.
    hotspot_volume:
        Hot region volume as a fraction of the universe volume.
    insert_every:
        Cadence of insert ops (0 disables inserts; 4 means every fourth
        op is an insert batch).
    insert_batch:
        Boxes per insert batch.
    box_sides:
        Per-dimension side-length range of inserted boxes.
    seed:
        Base RNG seed.

    Returns
    -------
    list[WorkloadOp]
        ``n_ops`` operations (queries and insert batches) ready for
        :func:`repro.updates.executor.run_mixed_workload`.
    """
    if n_ops < 1:
        raise ConfigurationError(f"need at least one operation, got {n_ops}")
    if phases < 1:
        raise ConfigurationError(f"need at least one phase, got {phases}")
    if insert_every < 0:
        raise ConfigurationError(
            f"insert_every must be >= 0, got {insert_every}"
        )
    if insert_batch < 1:
        raise ConfigurationError(
            f"insert_batch must be >= 1, got {insert_batch}"
        )
    if not 0.0 <= hotspot_fraction <= 1.0:
        raise ConfigurationError(
            f"hotspot_fraction must be in [0, 1], got {hotspot_fraction}"
        )
    side = side_for_volume_fraction(universe, volume_fraction)
    uni_lo = np.asarray(universe.lo)
    uni_hi = np.asarray(universe.hi)
    per_phase = -(-n_ops // phases)  # ceil division
    hot_side = side_for_volume_fraction(universe, hotspot_volume)
    ops: list[WorkloadOp] = []
    for seq in range(n_ops):
        phase, k = divmod(seq, per_phase)
        if k == 0:
            if phase == 0:
                hot_lo, hot_hi = _hotspot_box(
                    universe, hotspot_volume, (seed, phase)
                )
            else:
                # Random-walk drift: step about one box side in a random
                # direction, clipped so the box stays in the universe.
                prng = np.random.default_rng((seed, phase))
                step = prng.uniform(-1.0, 1.0, size=universe.ndim) * hot_side
                hot_lo = np.clip(
                    hot_lo + step, uni_lo, np.maximum(uni_hi - hot_side, uni_lo)
                )
                hot_hi = np.minimum(hot_lo + hot_side, uni_hi)
        rng = np.random.default_rng((seed, phase, 1 + k))
        if insert_every and (k + 1) % insert_every == 0:
            centers = rng.uniform(hot_lo, hot_hi, size=(insert_batch, universe.ndim))
            half = rng.uniform(
                box_sides[0], box_sides[1], size=(insert_batch, universe.ndim)
            ) / 2.0
            blo = np.maximum(centers - half, uni_lo)
            bhi = np.minimum(centers + half, uni_hi)
            bhi = np.maximum(bhi, blo)
            ops.append(WorkloadOp("insert", seq, lo=blo, hi=bhi))
        else:
            in_hot = rng.uniform() < hotspot_fraction
            lo, hi = (hot_lo, hot_hi) if in_hot else (uni_lo, uni_hi)
            center = rng.uniform(lo, hi)
            ops.append(
                WorkloadOp(
                    "query",
                    seq,
                    query=RangeQuery(_window_at(center, side, universe), seq=seq),
                )
            )
    return ops


@dataclass(frozen=True, eq=False)
class WorkloadOp:
    """One operation of a mixed read/write workload.

    Attributes
    ----------
    kind:
        ``"query"``, ``"insert"``, or ``"delete"``.
    seq:
        Zero-based position in the workload.
    query:
        The window (``kind == "query"`` only).
    lo, hi:
        ``(k, d)`` corner matrices of the boxes to insert
        (``kind == "insert"`` only).
    count:
        How many live objects to delete (``kind == "delete"`` only).
        *Which* objects is resolved at execution time against the current
        live-id set — deterministically from ``seq`` — because the victim
        population depends on all preceding operations.
    """

    kind: str
    seq: int
    query: RangeQuery | None = None
    lo: np.ndarray | None = None
    hi: np.ndarray | None = None
    count: int = 0


def mixed_workload(
    universe: Box,
    n_ops: int = 500,
    write_ratio: float = 0.2,
    delete_fraction: float = 0.5,
    batch_size: int = 8,
    volume_fraction: float = 1e-3,
    box_sides: tuple[float, float] = (1.0, 10.0),
    seed: int = 0,
) -> list[WorkloadOp]:
    """An interleaved stream of queries, insert batches, and delete batches.

    Each operation is independently a write with probability
    ``write_ratio``; writes are deletes with probability
    ``delete_fraction`` (inserts otherwise), so at the default 0.5 the
    live object count stays roughly stationary.  Queries are uniform
    cubic windows (as :func:`uniform_workload`); inserted boxes have
    uniform centers and per-dimension sides drawn from ``box_sides``
    (the paper's small-object distribution), clipped to the universe.

    Parameters
    ----------
    universe:
        Box to draw query centers and inserted boxes from.
    n_ops:
        Total operation count (reads + writes).
    write_ratio:
        Fraction of operations that are writes, in ``[0, 1]``.
    delete_fraction:
        Fraction of writes that are deletes, in ``[0, 1]``.
    batch_size:
        Objects per insert/delete batch (writes are batched, as any
        ingestion pipeline would).
    volume_fraction:
        Query window volume as a fraction of the universe volume.
    box_sides:
        Per-dimension side-length range of inserted boxes.
    seed:
        RNG seed; the op sequence is fully deterministic given it.
    """
    if n_ops < 1:
        raise ConfigurationError(f"need at least one operation, got {n_ops}")
    if not 0.0 <= write_ratio <= 1.0:
        raise ConfigurationError(
            f"write_ratio must be in [0, 1], got {write_ratio}"
        )
    if not 0.0 <= delete_fraction <= 1.0:
        raise ConfigurationError(
            f"delete_fraction must be in [0, 1], got {delete_fraction}"
        )
    if batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
    rng = np.random.default_rng(seed)
    side = side_for_volume_fraction(universe, volume_fraction)
    uni_lo = np.asarray(universe.lo)
    uni_hi = np.asarray(universe.hi)
    ops: list[WorkloadOp] = []
    for seq in range(n_ops):
        roll = rng.uniform()
        if roll < write_ratio and rng.uniform() < delete_fraction:
            ops.append(WorkloadOp("delete", seq, count=batch_size))
        elif roll < write_ratio:
            centers = rng.uniform(uni_lo, uni_hi, size=(batch_size, universe.ndim))
            half = rng.uniform(
                box_sides[0], box_sides[1], size=(batch_size, universe.ndim)
            ) / 2.0
            lo = np.maximum(centers - half, uni_lo)
            hi = np.minimum(centers + half, uni_hi)
            hi = np.maximum(hi, lo)
            ops.append(WorkloadOp("insert", seq, lo=lo, hi=hi))
        else:
            center = rng.uniform(uni_lo, uni_hi, size=universe.ndim)
            ops.append(
                WorkloadOp(
                    "query", seq, query=RangeQuery(_window_at(center, side, universe), seq=seq)
                )
            )
    return ops


def selectivity_sweep(
    universe: Box,
    fractions: Sequence[float],
    n_queries: int,
    seed: int = 0,
) -> dict[float, list[RangeQuery]]:
    """One uniform workload per requested volume fraction (Figure 12).

    Each fraction's workload shares query *centers* (same seed) so the
    sweep isolates the selectivity effect from placement noise.
    """
    if not fractions:
        raise ConfigurationError("need at least one volume fraction")
    return {
        float(f): uniform_workload(universe, n_queries, float(f), seed)
        for f in fractions
    }
