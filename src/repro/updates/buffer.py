"""Staging area for pending inserts (the write path's front door).

Lazy-merging indexes (QUASII) do not place a new object immediately:
doing so would either pay a full reorganization per insert or violate the
slice ordering invariants.  Instead inserts land in an
:class:`UpdateBuffer` — a small columnar side array with already-final
identifiers — and are merged into the main structure in one batch when a
query next needs them (mirroring how QUASII treats any unrefined region:
as a coarse run to be cracked on demand).

The buffer is index-private state layered over the shared
:class:`~repro.datasets.store.BoxStore`: identifiers are reserved from the
store up front (so results referencing buffered objects are stable across
the merge), but the rows only reach the store at :meth:`drain` time.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.store import BoxStore
from repro.errors import DatasetError


class UpdateBuffer:
    """Columnar staging area of pending ``(id, box)`` rows.

    Parameters
    ----------
    store:
        The backing store; used for dimensionality checks and identifier
        reservation, never mutated by the buffer itself.
    """

    __slots__ = ("_store", "_lo", "_hi", "_ids")

    def __init__(self, store: BoxStore) -> None:
        self._store = store
        d = store.ndim
        self._lo = np.empty((0, d), dtype=np.float64)
        self._hi = np.empty((0, d), dtype=np.float64)
        self._ids = np.empty(0, dtype=np.int64)

    def __len__(self) -> int:
        return self._ids.size

    @property
    def ids(self) -> np.ndarray:
        """Identifiers of the staged rows (live view; do not mutate)."""
        return self._ids

    def add(
        self,
        lo: np.ndarray,
        hi: np.ndarray,
        ids: np.ndarray | None = None,
    ) -> np.ndarray:
        """Stage a validated ``(k, d)`` batch; returns its identifiers.

        Fresh identifiers are reserved from the store unless ``ids`` is
        given, so the caller can hand them out before the merge happens.
        Every staged id — fresh or explicit — is registered with the
        store (:meth:`~repro.datasets.store.BoxStore.stage_ids`): the
        allocator can never hand out a duplicate, and the store's
        collision gate rejects a second explicit insert of a pending id
        instead of letting the merge trip over it later.
        """
        k = lo.shape[0]
        if ids is None:
            ids = self._store.reserve_ids(k)
        else:
            ids = np.ascontiguousarray(ids, dtype=np.int64)
            if ids.shape != (k,):
                raise DatasetError(
                    f"ids shape {ids.shape} does not match {k} staged rows"
                )
        self._store.stage_ids(ids)
        if k:
            self._lo = np.concatenate([self._lo, lo])
            self._hi = np.concatenate([self._hi, hi])
            self._ids = np.concatenate([self._ids, ids])
        return ids

    def discard(self, ids: np.ndarray) -> np.ndarray:
        """Drop staged rows with identifiers in ``ids``; returns those removed.

        A delete that arrives while its target is still buffered never
        needs to touch the main structure at all.
        """
        if not self._ids.size:
            return np.empty(0, dtype=np.int64)
        doomed = np.isin(self._ids, ids)
        removed = self._ids[doomed]
        if removed.size:
            keep = ~doomed
            self._lo = self._lo[keep]
            self._hi = self._hi[keep]
            self._ids = self._ids[keep]
            self._store.unstage_ids(removed)
        return removed

    def drain(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return and clear all staged rows as ``(lo, hi, ids)``."""
        out = (self._lo, self._hi, self._ids)
        self._store.unstage_ids(self._ids)
        d = self._store.ndim
        self._lo = np.empty((0, d), dtype=np.float64)
        self._hi = np.empty((0, d), dtype=np.float64)
        self._ids = np.empty(0, dtype=np.int64)
        return out

    def memory_bytes(self) -> int:
        """Approximate footprint of the staged arrays."""
        return int(self._lo.nbytes + self._hi.nbytes + self._ids.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"UpdateBuffer(pending={len(self)})"
