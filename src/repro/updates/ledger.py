"""Reference ledger of applied updates — the expected live multiset.

The mutable store's documented invariant is *multiset of live rows*: after
any interleaving of queries/inserts/deletes, the store's live ``(id, box)``
set must equal the initial contents plus every applied insert minus every
applied delete.  :class:`UpdateLedger` is the executable form of that
sentence: it replays the same updates into a plain dictionary and can then
be compared against a store (or answer a window query as a slow oracle).

Used by the property suite and, optionally, by the mixed-workload runner's
verification mode.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.store import BoxStore
from repro.errors import DatasetError


class UpdateLedger:
    """Dictionary-of-record mirror of a store's live ``(id, box)`` rows.

    Parameters
    ----------
    store:
        Optional store to seed from; its current live rows become the
        ledger's initial population.
    """

    __slots__ = ("_rows",)

    def __init__(self, store: BoxStore | None = None) -> None:
        self._rows: dict[int, tuple[tuple[float, ...], tuple[float, ...]]] = {}
        if store is not None:
            for row in store.live_rows():
                self._rows[int(store.ids[row])] = (
                    tuple(store.lo[row]),
                    tuple(store.hi[row]),
                )

    def __len__(self) -> int:
        return len(self._rows)

    def record_insert(
        self, lo: np.ndarray, hi: np.ndarray, ids: np.ndarray
    ) -> None:
        """Record an applied insert batch (ids must be new to the ledger)."""
        for k, obj_id in enumerate(np.asarray(ids, dtype=np.int64)):
            key = int(obj_id)
            if key in self._rows:
                raise DatasetError(f"ledger already holds id {key}")
            self._rows[key] = (tuple(np.atleast_2d(lo)[k]), tuple(np.atleast_2d(hi)[k]))

    def record_delete(self, ids: np.ndarray) -> None:
        """Record an applied delete batch (every id must be live)."""
        for obj_id in np.asarray(ids, dtype=np.int64).ravel():
            key = int(obj_id)
            if key not in self._rows:
                raise DatasetError(f"ledger cannot delete unknown id {key}")
            del self._rows[key]

    def live_ids(self) -> np.ndarray:
        """Sorted identifiers of all live objects."""
        return np.array(sorted(self._rows), dtype=np.int64)

    def expected_result(
        self, window_lo: np.ndarray, window_hi: np.ndarray
    ) -> np.ndarray:
        """Sorted ids intersecting the window — a pure-ledger scan oracle."""
        hits = [
            obj_id
            for obj_id, (lo, hi) in self._rows.items()
            if all(l <= wh for l, wh in zip(lo, window_hi))
            and all(wl <= h for wl, h in zip(window_lo, hi))
        ]
        return np.array(sorted(hits), dtype=np.int64)

    def matches_store(self, store: BoxStore) -> bool:
        """Whether the store's live ``(id, box)`` multiset equals the ledger."""
        rows = store.live_rows()
        if rows.size != len(self._rows):
            return False
        for row in rows:
            key = int(store.ids[row])
            expect = self._rows.get(key)
            if expect is None:
                return False
            lo, hi = expect
            if tuple(store.lo[row]) != lo or tuple(store.hi[row]) != hi:
                return False
        return True

    def assert_matches(self, store: BoxStore) -> None:
        """Raise ``AssertionError`` unless :meth:`matches_store` holds."""
        assert self.matches_store(store), (
            f"store live multiset diverged from the update ledger: "
            f"{store.live_count} live rows vs {len(self._rows)} ledger rows"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"UpdateLedger(live={len(self._rows)})"
