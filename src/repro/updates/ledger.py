"""Reference ledger of applied updates — the expected live multiset.

The mutable store's documented invariant is *multiset of live rows*: after
any interleaving of queries/inserts/deletes, the store's live ``(id, box)``
set must equal the initial contents plus every applied insert minus every
applied delete.  :class:`UpdateLedger` is the executable form of that
sentence: it replays the same updates into a plain dictionary and can then
be compared against a store (or answer a window query as a slow oracle).

Used by the property suite and, optionally, by the mixed-workload runner's
verification mode.

Beyond the live mirror, the ledger keeps an *ordered op log*: a base
snapshot (the rows it was seeded with) plus every recorded
insert/delete batch in application order.  Replaying base + log into a
fresh :class:`~repro.datasets.store.BoxStore` reproduces the live
``(id, box)`` multiset exactly — which makes the ledger the replication
stream and recovery oracle for replicated shard serving
(:mod:`repro.sharding.replication`): a dead replica is rebuilt by
:meth:`rebuild_store` and proven identical to its peers via
:meth:`assert_matches` / ``BoxStore.live_fingerprint``.
:meth:`truncate` folds the log into the base snapshot once every
consumer has caught up, bounding replay cost.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.store import BoxStore
from repro.errors import DatasetError

#: One op-log entry: ("insert", lo, hi, ids) or ("delete", None, None, ids).
LedgerOp = tuple[str, np.ndarray | None, np.ndarray | None, np.ndarray]


class UpdateLedger:
    """Dictionary-of-record mirror of a store's live ``(id, box)`` rows.

    Parameters
    ----------
    store:
        Optional store to seed from; its current live rows become the
        ledger's initial population (and the op log's base snapshot).
    """

    __slots__ = ("_rows", "_base", "_log", "_ndim")

    def __init__(self, store: BoxStore | None = None) -> None:
        self._rows: dict[int, tuple[tuple[float, ...], tuple[float, ...]]] = {}
        self._ndim: int | None = None
        if store is not None:
            self._ndim = store.ndim
            for row in store.live_rows():
                self._rows[int(store.ids[row])] = (
                    tuple(store.lo[row]),
                    tuple(store.hi[row]),
                )
        #: Base snapshot for replay: the seed rows, before any logged op.
        self._base: dict[int, tuple[tuple[float, ...], tuple[float, ...]]] = (
            dict(self._rows)
        )
        self._log: list[LedgerOp] = []

    def __len__(self) -> int:
        return len(self._rows)

    def record_insert(
        self, lo: np.ndarray, hi: np.ndarray, ids: np.ndarray
    ) -> None:
        """Record an applied insert batch (ids must be new to the ledger)."""
        lo2 = np.ascontiguousarray(np.atleast_2d(lo), dtype=np.float64)
        hi2 = np.ascontiguousarray(np.atleast_2d(hi), dtype=np.float64)
        id_arr = np.asarray(ids, dtype=np.int64).ravel()
        # Validate the whole batch before mutating anything, so a rejected
        # batch leaves both the mirror and the op log untouched.
        seen: set[int] = set()
        for obj_id in id_arr:
            key = int(obj_id)
            if key in self._rows or key in seen:
                raise DatasetError(f"ledger already holds id {key}")
            seen.add(key)
        for k, obj_id in enumerate(id_arr):
            self._rows[int(obj_id)] = (tuple(lo2[k]), tuple(hi2[k]))
        if id_arr.size:
            if self._ndim is None:
                self._ndim = lo2.shape[1]
            self._log.append(("insert", lo2.copy(), hi2.copy(), id_arr.copy()))

    def record_delete(self, ids: np.ndarray) -> None:
        """Record an applied delete batch (every id must be live)."""
        id_arr = np.asarray(ids, dtype=np.int64).ravel()
        for obj_id in id_arr:
            key = int(obj_id)
            if key not in self._rows:
                raise DatasetError(f"ledger cannot delete unknown id {key}")
        for obj_id in id_arr:
            del self._rows[int(obj_id)]
        if id_arr.size:
            self._log.append(("delete", None, None, id_arr.copy()))

    # ------------------------------------------------------------------
    # Replication stream: replay & truncation
    # ------------------------------------------------------------------
    @property
    def log_length(self) -> int:
        """Number of op batches recorded since the base snapshot."""
        return len(self._log)

    def replay_into(self, store: BoxStore) -> None:
        """Apply the op log to a store holding exactly the base snapshot.

        The store must contain the base rows (live) and nothing else —
        :meth:`rebuild_store` builds such a store from scratch.  After
        replay the store's live multiset equals the ledger by
        construction (``assert_matches`` holds).
        """
        for op, lo, hi, ids in self._log:
            if op == "insert":
                assert lo is not None and hi is not None
                # A reinsert of a previously-deleted id is legal in the
                # stream once the original store compacted the tombstone
                # away; mirror that by compacting before the id gate
                # would see the stale row.
                if store.n_dead and bool(np.isin(ids, store.ids).any()):
                    store.compact()
                store.append(lo, hi, ids)
            else:
                store.delete_ids(ids)

    def rebuild_store(self) -> BoxStore:
        """Build a fresh store from the base snapshot plus op-log replay.

        This is ledger-replay recovery: the returned store's live
        ``(id, box)`` multiset is identical to any peer that applied the
        same stream, regardless of the peer's physical row order.  The
        ledger must have seen at least one row (seed or insert) so the
        dimensionality is known.
        """
        if self._ndim is None:
            raise DatasetError(
                "cannot rebuild a store from a ledger that never saw a row"
            )
        keys = sorted(self._base)
        lo = np.array(
            [self._base[k][0] for k in keys], dtype=np.float64
        ).reshape(len(keys), self._ndim)
        hi = np.array(
            [self._base[k][1] for k in keys], dtype=np.float64
        ).reshape(len(keys), self._ndim)
        store = BoxStore(lo, hi, np.array(keys, dtype=np.int64))
        self.replay_into(store)
        return store

    def truncate(self) -> int:
        """Fold the op log into the base snapshot; returns entries dropped.

        After truncation :meth:`rebuild_store` starts from the current
        live multiset directly — equivalent content, constant-length
        replay.  Call once every replica has applied the stream.
        """
        dropped = len(self._log)
        self._base = dict(self._rows)
        self._log.clear()
        return dropped

    def live_ids(self) -> np.ndarray:
        """Sorted identifiers of all live objects."""
        return np.array(sorted(self._rows), dtype=np.int64)

    def expected_result(
        self, window_lo: np.ndarray, window_hi: np.ndarray
    ) -> np.ndarray:
        """Sorted ids intersecting the window — a pure-ledger scan oracle."""
        hits = [
            obj_id
            for obj_id, (lo, hi) in self._rows.items()
            if all(l <= wh for l, wh in zip(lo, window_hi))
            and all(wl <= h for wl, h in zip(window_lo, hi))
        ]
        return np.array(sorted(hits), dtype=np.int64)

    def matches_store(self, store: BoxStore) -> bool:
        """Whether the store's live ``(id, box)`` multiset equals the ledger."""
        rows = store.live_rows()
        if rows.size != len(self._rows):
            return False
        for row in rows:
            key = int(store.ids[row])
            expect = self._rows.get(key)
            if expect is None:
                return False
            lo, hi = expect
            if tuple(store.lo[row]) != lo or tuple(store.hi[row]) != hi:
                return False
        return True

    def assert_matches(self, store: BoxStore) -> None:
        """Raise ``AssertionError`` unless :meth:`matches_store` holds."""
        assert self.matches_store(store), (
            f"store live multiset diverged from the update ledger: "
            f"{store.live_count} live rows vs {len(self._rows)} ledger rows"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"UpdateLedger(live={len(self._rows)})"
