"""The update subsystem: mutable stores under mixed read/write workloads.

The paper evaluates QUASII on a static data array and explicitly leaves
updates as future work (Section 7).  This package closes that gap for the
reproduction:

* :class:`UpdateBuffer` — columnar staging area for pending inserts with
  pre-reserved identifiers; lazy-merging indexes (QUASII) drain it into
  the store as an appended run on the next query.
* :class:`UpdateLedger` — the executable form of the store's
  multiset-of-live-rows invariant, for tests and verification.
* :func:`run_mixed_workload` / :class:`MixedRunResult` — per-op-timed
  execution of interleaved query/insert/delete streams
  (:func:`repro.queries.workloads.mixed_workload`), with deterministic
  delete-victim resolution so Scan can serve as the correctness oracle;
  a :class:`~repro.sharding.maintenance.MaintenancePolicy` can ride
  along to run compaction/rebalancing between operations.

The write verbs themselves live on the indexes
(:class:`repro.index.base.MutableSpatialIndex`): QUASII cracks appended
runs exactly like unrefined slices, the grid and R-Tree take direct
insert paths, and every index inherits tombstone deletes from the store.
"""

from repro.updates.buffer import UpdateBuffer
from repro.updates.executor import (
    MixedRunResult,
    OpTiming,
    resolve_delete_victims,
    run_mixed_workload,
)
from repro.updates.ledger import UpdateLedger

__all__ = [
    "MixedRunResult",
    "OpTiming",
    "UpdateBuffer",
    "UpdateLedger",
    "resolve_delete_victims",
    "run_mixed_workload",
]
