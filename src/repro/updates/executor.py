"""Mixed read/write workload execution, timed per operation.

:func:`run_mixed_workload` is the update-subsystem counterpart of
:func:`repro.bench.runner.run_workload`: it drives one
:class:`~repro.index.base.MutableSpatialIndex` through an interleaved
stream of :class:`~repro.queries.workloads.WorkloadOp`, resolving delete
victims deterministically so every index sees the *same* effective
update sequence, and records per-op wall-clock plus the new write
counters (``inserts`` / ``deletes`` / ``merges``).

Delete resolution: a ``delete`` op carries only a count — which live ids
die is decided here, by an RNG seeded from ``(victim_seed, op.seq)`` over
the sorted current live-id set.  Because every index starts from an
identical store copy and ids are reserved in the same order, the victim
sequence (and therefore every query's expected result) is identical
across indexes, which is what lets Scan serve as the correctness oracle.

A :class:`~repro.sharding.maintenance.MaintenancePolicy` can ride along:
the runner then ticks a maintenance scheduler after every operation, so
compaction (any mutable index) and rebalancing (sharded engines) happen
on the workload path exactly as they would in a serving loop — amortized
between operations and charged to ``maintenance_seconds``, never to any
operation's own timing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError
from repro.index.base import MutableSpatialIndex
from repro.queries.query import as_query
from repro.queries.workloads import WorkloadOp

if TYPE_CHECKING:  # pragma: no cover - layering: sharding sits above updates
    from repro.sharding.maintenance import MaintenancePolicy


@dataclass(frozen=True)
class OpTiming:
    """Measurements for one executed operation."""

    seq: int
    kind: str
    seconds: float
    rows: int  # results returned (query) or batch size (insert/delete)


@dataclass
class MixedRunResult:
    """A full mixed-workload execution for one index.

    ``query_results`` holds each query's sorted id array (in op order) so
    callers can cross-check indexes against the Scan oracle without
    re-running anything.  ``inserts`` / ``deletes`` / ``merges`` /
    ``compactions`` / ``rebalances`` / ``rows_migrated`` are the
    :class:`~repro.index.base.IndexStats` counter deltas over the run;
    ``shards_visited`` / ``shards_pruned`` are nonzero only for sharded
    targets.  ``maintenance_seconds`` is the wall-clock the maintenance
    scheduler spent between operations (0.0 without a policy) — it is
    *excluded* from every per-op timing, so throughput and maintenance
    cost can be priced separately.
    """

    name: str
    timings: list[OpTiming] = field(default_factory=list)
    query_results: list[np.ndarray] = field(default_factory=list)
    inserts: int = 0
    deletes: int = 0
    merges: int = 0
    compactions: int = 0
    rebalances: int = 0
    rows_migrated: int = 0
    shards_visited: int = 0
    shards_pruned: int = 0
    maintenance_seconds: float = 0.0
    final_live: int = 0

    @property
    def n_ops(self) -> int:
        """Number of executed operations."""
        return len(self.timings)

    def total_seconds(self) -> float:
        """Total wall-clock across all operations."""
        return float(sum(t.seconds for t in self.timings))

    def throughput(self) -> float:
        """Operations per second over the whole run."""
        total = self.total_seconds()
        return self.n_ops / total if total > 0 else float("inf")

    def kind_seconds(self, kind: str) -> float:
        """Total wall-clock spent on one op kind."""
        return float(sum(t.seconds for t in self.timings if t.kind == kind))

    def kind_count(self, kind: str) -> int:
        """Number of executed ops of one kind."""
        return sum(1 for t in self.timings if t.kind == kind)

    def mean_query_ms(self) -> float:
        """Mean per-query latency in milliseconds."""
        n = self.kind_count("query")
        return self.kind_seconds("query") / n * 1000 if n else 0.0


def resolve_delete_victims(
    live_ids: np.ndarray, count: int, seq: int, victim_seed: int
) -> np.ndarray:
    """The ids a ``delete`` op kills, given the current live population.

    Deterministic in ``(victim_seed, seq, live_ids)``; clamps to the
    population size so a delete against a nearly-empty store degrades to
    a smaller batch instead of failing.
    """
    count = min(count, live_ids.size)
    if count == 0:
        return np.empty(0, dtype=np.int64)
    rng = np.random.default_rng((victim_seed, seq))
    return rng.choice(np.sort(live_ids), size=count, replace=False)


def run_mixed_workload(
    index: MutableSpatialIndex,
    ops: list[WorkloadOp],
    victim_seed: int = 0,
    build: bool = True,
    maintenance: MaintenancePolicy | None = None,
) -> MixedRunResult:
    """Build (optionally) then execute every op against ``index``.

    The executor maintains its own live-id set (seeded from the store)
    purely to resolve delete victims; the index is never consulted for
    membership, so a broken index cannot steer the workload.

    With ``maintenance`` given, a
    :class:`~repro.sharding.maintenance.MaintenanceScheduler` is ticked
    after every operation: compaction and (for sharded engines)
    rebalancing run between operations under the policy's thresholds.
    Their cost lands in ``maintenance_seconds`` and their work in the
    ``compactions`` / ``rebalances`` / ``rows_migrated`` counters, so
    throughput comparisons can price the maintenance separately.
    """
    if not isinstance(index, MutableSpatialIndex):
        raise ConfigurationError(
            f"{type(index).__name__} does not support updates; "
            "use a MutableSpatialIndex"
        )
    if build and not index.is_built:
        index.build()
    scheduler = None
    if maintenance is not None:
        # Imported here: repro.sharding layers *above* repro.updates.
        from repro.sharding.maintenance import MaintenanceScheduler

        scheduler = MaintenanceScheduler(index, maintenance)
    store = index.store
    # Maintained incrementally as a flat array: converting/sorting a
    # Python set per delete op would dominate the harness at scale
    # (victim resolution sorts internally, so order here is free).
    live = store.ids[store.live_rows()].copy()
    before = index.stats.snapshot()
    result = MixedRunResult(name=index.name)
    for op in ops:
        if op.kind == "query":
            t0 = time.perf_counter()
            res = index.execute(as_query(op.query))
            elapsed = time.perf_counter() - t0
            result.query_results.append(np.sort(res.ids))
            result.timings.append(OpTiming(op.seq, "query", elapsed, res.count))
        elif op.kind == "insert":
            t0 = time.perf_counter()
            assigned = index.insert(op.lo, op.hi)
            elapsed = time.perf_counter() - t0
            live = np.concatenate([live, assigned])
            result.timings.append(
                OpTiming(op.seq, "insert", elapsed, int(assigned.size))
            )
        elif op.kind == "delete":
            victims = resolve_delete_victims(live, op.count, op.seq, victim_seed)
            t0 = time.perf_counter()
            removed = index.delete(victims)
            elapsed = time.perf_counter() - t0
            live = live[~np.isin(live, victims)]
            result.timings.append(OpTiming(op.seq, "delete", elapsed, removed))
        else:
            raise ConfigurationError(f"unknown workload op kind {op.kind!r}")
        if scheduler is not None:
            scheduler.after_ops(1)
    after = index.stats
    result.inserts = after.inserts - before.inserts
    result.deletes = after.deletes - before.deletes
    result.merges = after.merges - before.merges
    result.compactions = after.compactions - before.compactions
    result.rebalances = after.rebalances - before.rebalances
    result.rows_migrated = after.rows_migrated - before.rows_migrated
    if scheduler is not None:
        result.maintenance_seconds = scheduler.report.seconds
    # Nonzero only for sharded targets (repro.sharding.ShardedIndex):
    # how many shard visits the fan-out paid vs. skipped over the run.
    result.shards_visited = after.shards_visited - before.shards_visited
    result.shards_pruned = after.shards_pruned - before.shards_pruned
    result.final_live = int(live.size)
    return result
