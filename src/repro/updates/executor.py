"""Mixed read/write workload execution, timed per operation.

:func:`run_mixed_workload` is the update-subsystem counterpart of
:func:`repro.bench.runner.run_workload`: it drives one
:class:`~repro.index.base.MutableSpatialIndex` through an interleaved
stream of :class:`~repro.queries.workloads.WorkloadOp`, resolving delete
victims deterministically so every index sees the *same* effective
update sequence, and records per-op wall-clock plus the new write
counters (``inserts`` / ``deletes`` / ``merges``).

Delete resolution: a ``delete`` op carries only a count — which live ids
die is decided here, by an RNG seeded from ``(victim_seed, op.seq)`` over
the sorted current live-id set.  Because every index starts from an
identical store copy and ids are reserved in the same order, the victim
sequence (and therefore every query's expected result) is identical
across indexes, which is what lets Scan serve as the correctness oracle.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.index.base import MutableSpatialIndex
from repro.queries.workloads import WorkloadOp


@dataclass(frozen=True)
class OpTiming:
    """Measurements for one executed operation."""

    seq: int
    kind: str
    seconds: float
    rows: int  # results returned (query) or batch size (insert/delete)


@dataclass
class MixedRunResult:
    """A full mixed-workload execution for one index.

    ``query_results`` holds each query's sorted id array (in op order) so
    callers can cross-check indexes against the Scan oracle without
    re-running anything.
    """

    name: str
    timings: list[OpTiming] = field(default_factory=list)
    query_results: list[np.ndarray] = field(default_factory=list)
    inserts: int = 0
    deletes: int = 0
    merges: int = 0
    shards_visited: int = 0
    shards_pruned: int = 0
    final_live: int = 0

    @property
    def n_ops(self) -> int:
        """Number of executed operations."""
        return len(self.timings)

    def total_seconds(self) -> float:
        """Total wall-clock across all operations."""
        return float(sum(t.seconds for t in self.timings))

    def throughput(self) -> float:
        """Operations per second over the whole run."""
        total = self.total_seconds()
        return self.n_ops / total if total > 0 else float("inf")

    def kind_seconds(self, kind: str) -> float:
        """Total wall-clock spent on one op kind."""
        return float(sum(t.seconds for t in self.timings if t.kind == kind))

    def kind_count(self, kind: str) -> int:
        """Number of executed ops of one kind."""
        return sum(1 for t in self.timings if t.kind == kind)

    def mean_query_ms(self) -> float:
        """Mean per-query latency in milliseconds."""
        n = self.kind_count("query")
        return self.kind_seconds("query") / n * 1000 if n else 0.0


def resolve_delete_victims(
    live_ids: np.ndarray, count: int, seq: int, victim_seed: int
) -> np.ndarray:
    """The ids a ``delete`` op kills, given the current live population.

    Deterministic in ``(victim_seed, seq, live_ids)``; clamps to the
    population size so a delete against a nearly-empty store degrades to
    a smaller batch instead of failing.
    """
    count = min(count, live_ids.size)
    if count == 0:
        return np.empty(0, dtype=np.int64)
    rng = np.random.default_rng((victim_seed, seq))
    return rng.choice(np.sort(live_ids), size=count, replace=False)


def run_mixed_workload(
    index: MutableSpatialIndex,
    ops: list[WorkloadOp],
    victim_seed: int = 0,
    build: bool = True,
) -> MixedRunResult:
    """Build (optionally) then execute every op against ``index``.

    The executor maintains its own live-id set (seeded from the store)
    purely to resolve delete victims; the index is never consulted for
    membership, so a broken index cannot steer the workload.
    """
    if not isinstance(index, MutableSpatialIndex):
        raise ConfigurationError(
            f"{type(index).__name__} does not support updates; "
            "use a MutableSpatialIndex"
        )
    if build and not index.is_built:
        index.build()
    store = index.store
    # Maintained incrementally as a flat array: converting/sorting a
    # Python set per delete op would dominate the harness at scale
    # (victim resolution sorts internally, so order here is free).
    live = store.ids[store.live_rows()].copy()
    before = index.stats.snapshot()
    result = MixedRunResult(name=index.name)
    for op in ops:
        if op.kind == "query":
            t0 = time.perf_counter()
            hits = index.query(op.query)
            elapsed = time.perf_counter() - t0
            result.query_results.append(np.sort(hits))
            result.timings.append(OpTiming(op.seq, "query", elapsed, int(hits.size)))
        elif op.kind == "insert":
            t0 = time.perf_counter()
            assigned = index.insert(op.lo, op.hi)
            elapsed = time.perf_counter() - t0
            live = np.concatenate([live, assigned])
            result.timings.append(
                OpTiming(op.seq, "insert", elapsed, int(assigned.size))
            )
        elif op.kind == "delete":
            victims = resolve_delete_victims(live, op.count, op.seq, victim_seed)
            t0 = time.perf_counter()
            removed = index.delete(victims)
            elapsed = time.perf_counter() - t0
            live = live[~np.isin(live, victims)]
            result.timings.append(OpTiming(op.seq, "delete", elapsed, removed))
        else:
            raise ConfigurationError(f"unknown workload op kind {op.kind!r}")
    after = index.stats
    result.inserts = after.inserts - before.inserts
    result.deletes = after.deletes - before.deletes
    result.merges = after.merges - before.merges
    # Nonzero only for sharded targets (repro.sharding.ShardedIndex):
    # how many shard visits the fan-out paid vs. skipped over the run.
    result.shards_visited = after.shards_visited - before.shards_visited
    result.shards_pruned = after.shards_pruned - before.shards_pruned
    result.final_live = int(live.size)
    return result
