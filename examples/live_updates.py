#!/usr/bin/env python3
"""Live updates: querying while the dataset changes underneath.

The paper evaluates QUASII on a static array (updates are Section 7
future work); this demo exercises the reproduction's update subsystem:
an interleaved stream of window queries, insert batches, and delete
batches runs through QUASII, the uniform grid, and the R-Tree, with a
full scan as the correctness oracle.

QUASII absorbs inserts lazily — they stage in a buffer, and the next
query merges them into the store as an appended run that gets cracked
exactly like any other unrefined region.  Deletes tombstone rows in
place for every index.

Run:  python examples/live_updates.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    QuasiiIndex,
    RTreeIndex,
    ScanIndex,
    UniformGridIndex,
    make_uniform,
    mixed_workload,
    run_mixed_workload,
)


def main() -> None:
    # 1. Data: 100k boxes in the paper's synthetic 10,000^3 universe.
    dataset = make_uniform(100_000, seed=42)
    print(f"dataset: {dataset.n:,} boxes in {dataset.universe.sides} universe")

    # 2. Workload: 30% writes (half inserts, half deletes), batches of 16.
    ops = mixed_workload(
        dataset.universe,
        n_ops=400,
        write_ratio=0.3,
        delete_fraction=0.5,
        batch_size=16,
        volume_fraction=1e-3,
        seed=7,
    )
    kinds = {k: sum(1 for o in ops if o.kind == k) for k in ("query", "insert", "delete")}
    print(f"workload: {kinds['query']} queries, {kinds['insert']} insert "
          f"batches, {kinds['delete']} delete batches\n")

    # 3. Run every update-capable index over its own copy of the store.
    indexes = {
        "Scan": ScanIndex(dataset.store.copy()),
        "Grid": UniformGridIndex(dataset.store.copy(), dataset.universe, 32),
        "R-Tree": RTreeIndex(dataset.store.copy()),
        "QUASII": QuasiiIndex(dataset.store.copy()),
    }
    runs = {}
    for name, index in indexes.items():
        runs[name] = run_mixed_workload(index, ops, victim_seed=99)
        r = runs[name]
        print(f"{name:>7}: {r.throughput():8.0f} ops/s | "
              f"query {r.mean_query_ms():7.3f} ms | "
              f"{r.inserts} inserts, {r.deletes} deletes, "
              f"{r.merges} merges | {r.final_live:,} live at end")

    # 4. Verify: every index answered every query exactly like the scan.
    oracle = runs["Scan"].query_results
    for name, r in runs.items():
        assert all(
            np.array_equal(a, b) for a, b in zip(oracle, r.query_results)
        ), f"{name} diverged from the Scan oracle"
    print("\nall indexes returned exactly the live-row set of the Scan oracle")

    # 5. QUASII's slice forest stayed structurally sound throughout.
    quasii = indexes["QUASII"]
    quasii.validate_structure()
    print(f"QUASII structure invariants: OK "
          f"({quasii.runs - 1} appended run(s) in the slice forest, "
          f"{quasii.store.n_dead:,} tombstoned rows)")


if __name__ == "__main__":
    main()
