#!/usr/bin/env python3
"""The paper's Figure 4, step by step, on a 2-d toy dataset.

Ten small rectangles, the handcrafted thresholds τx = 4, τy = 2, and two
range queries.  After each query the physical data-array order and the
slice hierarchy are printed, mirroring the three rows of the paper's
Figure 4 sub-figures.

Run:  python examples/figure4_walkthrough.py
"""

from __future__ import annotations

import numpy as np

from repro.core import QuasiiConfig, QuasiiIndex
from repro.datasets import BoxStore
from repro.geometry import Box
from repro.queries import RangeQuery

EXTENT = 0.3

# Lower corners of objects o0..o9 (our coordinates; the figure's are not
# published, but the slice populations below match it).
LOWER = {
    0: (6.5, 3.0),
    1: (7.5, 7.0),
    2: (1.0, 5.0),
    3: (9.0, 0.5),
    4: (2.6, 4.5),
    5: (4.5, 1.5),
    6: (3.8, 5.5),
    7: (2.2, 1.0),
    8: (5.0, 6.5),
    9: (3.0, 2.5),
}


def show(title: str, store: BoxStore, index: QuasiiIndex) -> None:
    print(f"--- {title}")
    order = " ".join(f"o{store.id_at(i)}" for i in range(store.n))
    print(f"data array: {order}")
    print(index.format_structure())
    print()


def main() -> None:
    lo = np.array([LOWER[i] for i in range(10)], dtype=np.float64)
    store = BoxStore(lo, lo + EXTENT)
    index = QuasiiIndex(store, QuasiiConfig(ndim=2, level_thresholds=(4, 2)))

    show("initial state (Figure 4a): one slice, arbitrary order", store, index)

    q1 = RangeQuery(Box((2.0, 4.0), (4.0, 6.0)), seq=0)
    hits = sorted(index.query(q1).tolist())
    print(f"q1 = x:[2,4] y:[4,6]  ->  result {{{', '.join(f'o{i}' for i in hits)}}}\n")
    show(
        "after q1 (Figure 4b+4c): three x-slices, middle one y-refined",
        store,
        index,
    )

    q2 = RangeQuery(Box((4.4, 0.5), (9.6, 3.5)), seq=1)
    hits = sorted(index.query(q2).tolist())
    print(f"q2 = x:[4.4,9.6] y:[0.5,3.5]  ->  result {{{', '.join(f'o{i}' for i in hits)}}}\n")
    show(
        "after q2 (Figure 4d): only the coarse right slice was refined",
        store,
        index,
    )

    index.validate_structure()
    print("structure invariants: OK")


if __name__ == "__main__":
    main()
