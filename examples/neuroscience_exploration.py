#!/usr/bin/env python3
"""The paper's motivating scenario: exploratory analysis of a brain model.

A neuroscientist builds a spatial model, then validates it by inspecting a
handful of regions with bursts of spatially close range queries (Section 2).
The crucial question: is it worth building a full index first, when the
analysis might stop after a few hundred queries?

This example replays that workflow on the skewed neuroscience surrogate
dataset and compares three strategies end-to-end:

* Scan        — no index, every query pays a full pass;
* R-Tree      — build first (STR bulk load), then query;
* QUASII      — start querying immediately, index as you go.

Run:  python examples/neuroscience_exploration.py
"""

from __future__ import annotations

import time

from repro import QuasiiIndex, clustered_workload, make_neuro_like
from repro.baselines import RTreeIndex, ScanIndex
from repro.bench import run_workload


def main() -> None:
    print("building the 'brain model' (skewed surrogate, 300k cylinders)...")
    dataset = make_neuro_like(300_000, seed=7)

    # 3 regions of interest, 60 spatially close queries each, windows of
    # 0.01% of the model volume — the paper's validation workload shape.
    queries = clustered_workload(
        dataset.universe,
        n_clusters=3,
        queries_per_cluster=60,
        volume_fraction=1e-4,
        seed=11,
    )
    print(f"workload: {len(queries)} clustered validation queries\n")

    runs = {}
    for make in (
        lambda: ScanIndex(dataset.store.copy()),
        lambda: RTreeIndex(dataset.store.copy()),
        lambda: QuasiiIndex(dataset.store.copy()),
    ):
        index = make()
        runs[index.name] = run_workload(index, queries)

    print(f"{'strategy':10s} {'build (s)':>10s} {'first answer (s)':>17s} "
          f"{'all queries (s)':>16s} {'total (s)':>10s}")
    for name, run in runs.items():
        print(
            f"{name:10s} {run.build_seconds:10.3f} "
            f"{run.first_answer_seconds():17.3f} "
            f"{run.total_seconds() - run.build_seconds:16.3f} "
            f"{run.total_seconds():10.3f}"
        )

    quasii = runs["QUASII"]
    rtree = runs["R-Tree"]
    print(
        f"\ndata-to-insight: QUASII answers its first query "
        f"{rtree.first_answer_seconds() / quasii.first_answer_seconds():.1f}x "
        f"sooner than build-then-query with the R-Tree."
    )
    print(
        f"converged per-query time (last 30 queries): "
        f"QUASII {quasii.tail_mean_seconds(30) * 1e3:.2f} ms vs "
        f"R-Tree {rtree.tail_mean_seconds(30) * 1e3:.2f} ms"
    )
    if quasii.total_seconds() < rtree.total_seconds():
        print("after the whole session QUASII is STILL ahead cumulatively — "
              "the build never amortized.")
    else:
        crossover = next(
            (
                i + 1
                for i, (a, b) in enumerate(
                    zip(quasii.cumulative_seconds(), rtree.cumulative_seconds())
                )
                if a > b
            ),
            None,
        )
        print(f"the R-Tree's build amortized after {crossover} queries "
              f"in this (Python-substrate) run.")


if __name__ == "__main__":
    main()
