#!/usr/bin/env python3
"""Scrape a serving loop live: MetricsServer + slow-query events.

A short sharded serving run with the full observability stack on: a
`Telemetry` handle feeding counters/gauges/histograms/spans, an
`EventLog` catching slow-query events from the executor, and a
stdlib-only `MetricsServer` exposing all of it over HTTP *while the
loop runs*.  The script plays its own Prometheus: between batches it
scrapes `/metrics`, `/healthz`, and `/spans` with `urllib` and prints
excerpts, then finishes with the slowest queries straight from the
event log.

The same server rides inside the soak benchmark via
`quasii-bench soak --smoke --serve-metrics 9464` — point a real
scraper (or `curl localhost:9464/metrics`) at it mid-run.

Run:  python examples/live_metrics.py
"""

from __future__ import annotations

import json
import urllib.request

from repro import QueryExecutor, ShardedIndex, hotspot_workload, make_uniform
from repro.telemetry import EventLog, MetricsServer, Telemetry


def scrape(url: str) -> str:
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.read().decode()


def main() -> None:
    # 1. A sharded engine with telemetry and an event log attached.
    dataset = make_uniform(100_000, seed=42)
    engine = ShardedIndex(dataset.store.copy(), n_shards=8, partitioner="str")
    engine.build()

    telemetry = Telemetry()
    events = EventLog()
    executor = QueryExecutor(
        engine,
        max_workers=2,
        telemetry=telemetry,
        events=events,
        slow_query_threshold=5e-4,  # 0.5 ms: anything slower becomes an event
    )

    # 2. The live endpoint: port=0 picks an ephemeral port.
    with MetricsServer(telemetry, port=0, events=events) as server:
        print(f"serving metrics at {server.url}  (endpoints: /metrics, "
              "/snapshot.json, /spans, /events, /healthz)\n")

        # 3. Serve hotspot batches; scrape between them like Prometheus would.
        for batch_no in range(3):
            queries = hotspot_workload(
                dataset.universe, 200, 1e-4, seed=100 + batch_no
            )
            with telemetry.tracer.span("serve.batch", batch=batch_no):
                executor.run(queries)

            exposition = scrape(server.url + "/metrics")
            excerpt = [
                line for line in exposition.splitlines()
                if line.startswith(("repro_query_seconds_count",
                                    "repro_query_seconds_sum",
                                    "repro_batch_seconds_count"))
            ]
            print(f"after batch {batch_no + 1}:")
            for line in excerpt:
                print(f"  {line}")

        # 4. The JSON sides of the same state.
        health = json.loads(scrape(server.url + "/healthz"))
        print(f"\n/healthz: status={health['status']} "
              f"spans={health['spans_recorded']} "
              f"events={health['events_emitted']}")

        spans = json.loads(scrape(server.url + "/spans?limit=3"))
        print(f"/spans:   {spans['recorded']} recorded, "
              f"{spans['dropped']} dropped")

    # 5. Post-hoc: the slowest queries, straight from the event log.
    slow = sorted(
        events.recent("slow_query"),
        key=lambda e: e.payload["seconds"],
        reverse=True,
    )
    print(f"\n{len(slow)} slow_query event(s) over the 0.5 ms threshold; "
          "slowest three:")
    for event in slow[:3]:
        p = event.payload
        print(f"  seq {p['seq']:>3}  {p['seconds'] * 1e3:6.2f} ms  "
              f"{p['predicate']}/{p['mode']}  "
              f"visited {p['shards_visited']} shard(s)")


if __name__ == "__main__":
    main()
