#!/usr/bin/env python3
"""Quickstart: index spatial data incrementally, as a side effect of queries.

Generates a synthetic 3-d dataset, runs a handful of window queries through
QUASII (no build step!), and shows the index growing and query times
dropping as the same region is queried again.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import time

from repro import QuasiiIndex, make_uniform, uniform_workload


def main() -> None:
    # 1. Data: 200k boxes, uniformly placed in a 10,000^3 universe
    #    (the paper's synthetic distribution, Section 6.1).
    dataset = make_uniform(200_000, seed=42)
    print(f"dataset: {dataset.n:,} boxes in {dataset.universe.sides} universe")

    # 2. Index: QUASII needs no pre-processing — just wrap the store.
    index = QuasiiIndex(dataset.store)
    print(f"threshold ladder (top→leaf): {index.config.level_thresholds}")

    # 3. Query: windows covering 0.1% of the universe volume.
    queries = uniform_workload(dataset.universe, n_queries=10, volume_fraction=1e-3, seed=1)

    print("\nfirst pass — the index builds itself while answering:")
    for q in queries[:5]:
        t0 = time.perf_counter()
        ids = index.query(q)
        ms = (time.perf_counter() - t0) * 1000
        print(f"  query {q.seq}: {ids.size:4d} results in {ms:7.2f} ms "
              f"(cracks so far: {index.stats.cracks})")

    print("\nsecond pass over the same windows — now (mostly) refined:")
    for q in queries[:5]:
        t0 = time.perf_counter()
        ids = index.query(q)
        ms = (time.perf_counter() - t0) * 1000
        print(f"  query {q.seq}: {ids.size:4d} results in {ms:7.2f} ms")

    counts = index.slice_counts()
    full_leaves = dataset.n // index.config.leaf_threshold
    print(f"\nslices per level (x/y/z): {counts} "
          f"(a full build would create ~{full_leaves:,} leaves)")
    print(f"index structure memory:   ~{index.memory_bytes() / 1024:.0f} KiB")
    print(f"cumulative rows moved:    {index.stats.rows_reorganized:,} "
          f"(~{index.stats.rows_reorganized / dataset.n:.1f} passes over the "
          f"data; an STR build sorts every row at every level)")

    # The structural invariants can be checked at any point:
    index.validate_structure()
    print("structure invariants: OK")


if __name__ == "__main__":
    main()
