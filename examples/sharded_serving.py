#!/usr/bin/env python3
"""Sharded serving: partition, fan out, prune, and route updates.

The sharding subsystem (`repro.sharding`) turns the single-process
QUASII reproduction into a partition-then-search serving engine: an STR
partitioner splits the store into K compact spatial tiles, one QUASII is
built per tile, queries fan out only to shards whose MBB intersects the
window, and inserts/deletes route to the owning shard so every shard
keeps cracking adaptively on its own slice forest.

This demo builds the engine, serves a batch of queries sequentially and
through the thread-pool executor, verifies both against a full scan,
pushes a stream of updates through the ownership routing, and finally
turns on automatic maintenance: a MaintenancePolicy attached to the
executor compacts tombstone-heavy shards and — when skewed ingestion
drifts the balance factor — splits the hot shard along the observed
query centroids (query-driven rebalancing, QUASII's principle applied
to the partition layout).

Run:  python examples/sharded_serving.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    MaintenancePolicy,
    QueryExecutor,
    ScanIndex,
    ShardedIndex,
    hotspot_workload,
    make_uniform,
    uniform_workload,
)


def main() -> None:
    # 1. Data: 200k boxes in the paper's synthetic 10,000^3 universe.
    dataset = make_uniform(200_000, seed=42)
    print(f"dataset: {dataset.n:,} boxes in {dataset.universe.sides} universe")

    # 2. Build the engine: STR split into 8 shards, one QUASII per shard.
    engine = ShardedIndex(dataset.store.copy(), n_shards=8, partitioner="str")
    engine.build()
    print(f"engine: {engine.name}, shard sizes {engine.shard_sizes()}, "
          f"balance {engine.balance_factor():.2f}\n")

    # 3. Serve a batch of small queries two ways and check both vs Scan.
    queries = uniform_workload(dataset.universe, 300, 1e-4, seed=7)
    scan = ScanIndex(dataset.store.copy())
    expected = [np.sort(scan.query(q)) for q in queries]

    sequential = QueryExecutor(engine, max_workers=1).run(queries)
    assert all(
        np.array_equal(np.sort(got), want)
        for got, want in zip(sequential.results, expected)
    )
    visited, pruned = engine.stats.shards_visited, engine.stats.shards_pruned
    print(f"sequential: {sequential.seconds:.3f}s "
          f"({sequential.throughput():.0f} queries/s), "
          f"{pruned}/{visited + pruned} shard visits pruned")

    parallel = QueryExecutor(engine, max_workers=4).run(queries)
    assert all(
        np.array_equal(np.sort(got), want)
        for got, want in zip(parallel.results, expected)
    )
    print(f"parallel:   {parallel.seconds:.3f}s "
          f"({parallel.throughput():.0f} queries/s), "
          f"fan-out profile {parallel.shard_queries}")
    print("(the second batch also rides on the refinement the first batch "
          "cracked out — run `quasii-bench shard-scaling` for fair "
          "fresh-engine comparisons)\n")

    # 4. Skewed serving traffic: the hot region concentrates on few shards.
    hot = hotspot_workload(dataset.universe, 300, 1e-4, seed=11)
    engine.stats.reset()
    QueryExecutor(engine, max_workers=1).run(hot)
    v, p = engine.stats.shards_visited, engine.stats.shards_pruned
    print(f"hotspot traffic: {p}/{v + p} shard visits pruned "
          f"(spatial tiles keep hot queries on few shards)\n")

    # 5. Shard-aware updates: inserts route by least enlargement, deletes
    #    by ownership; the Scan oracle keeps verifying results.
    rng = np.random.default_rng(3)
    centers = rng.uniform(0, 10_000, size=(500, 3))
    lo, hi = centers - 2.0, centers + 2.0
    new_ids = engine.insert(lo, hi)
    scan.insert(lo, hi)
    victims = new_ids[::2]
    engine.delete(victims)
    scan.delete(victims)
    print(f"inserted {new_ids.size}, deleted {victims.size}; "
          f"pending (buffered) rows fleet-wide: {engine.pending_updates()}")
    check = uniform_workload(dataset.universe, 50, 1e-3, seed=13)
    assert all(
        np.array_equal(np.sort(engine.query(q)), np.sort(scan.query(q)))
        for q in check
    )
    engine.validate_routing()
    owner = engine.owner_of(int(new_ids[1]))
    print(f"id {int(new_ids[1])} is owned by shard {owner}; "
          f"all results still match the Scan oracle\n")

    # 6. Automatic maintenance: skew the ingestion into one corner, then
    #    let the executor's MaintenancePolicy rebalance on the query path.
    burst = rng.uniform(0, 2_000, size=(30_000, 3))
    engine.insert(burst - 2.0, burst + 2.0)
    scan.insert(burst - 2.0, burst + 2.0)
    print(f"after a skewed burst: balance factor {engine.balance_factor():.2f} "
          f"(max/mean owned rows)")
    serve = QueryExecutor(
        engine,
        max_workers=1,
        maintenance=MaintenancePolicy(check_every=64, max_balance=1.3,
                                      max_query_skew=2.5, min_queries=32),
    )
    corner = hotspot_workload(dataset.universe, 300, 1e-4,
                              hotspot_volume=0.002, seed=17)
    batch = serve.run(corner)
    report = serve.scheduler.report
    print(f"served {batch.n_queries} hotspot queries; maintenance ran "
          f"{report.checks} checks, {report.rebalances} rebalancing pass(es), "
          f"migrated {report.rows_migrated:,} rows in {report.seconds*1000:.0f}ms")
    print(f"balance factor now {engine.balance_factor():.2f}; results still "
          f"match the oracle: ", end="")
    check = uniform_workload(dataset.universe, 30, 1e-3, seed=19)
    ok = all(
        np.array_equal(np.sort(engine.query(q)), np.sort(scan.query(q)))
        for q in check
    )
    engine.validate_routing()
    print("yes" if ok else "NO")


if __name__ == "__main__":
    main()
