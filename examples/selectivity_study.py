#!/usr/bin/env python3
"""When does incremental indexing pay off? A selectivity study (Figure 12).

Sweeps query selectivity (window volume as a fraction of the universe) and
reports, for each: QUASII's cumulative cost relative to build-then-query
with the R-Tree, in both wall-clock and the machine-independent work model
(rows touched).  Large windows reorganize a lot of data per query, so
QUASII's advantage narrows exactly as the paper describes.

Run:  python examples/selectivity_study.py [n_objects] [n_queries]
"""

from __future__ import annotations

import sys

from repro import QuasiiIndex, make_uniform, uniform_workload
from repro.baselines import RTreeIndex
from repro.bench import run_workload
from repro.bench.metrics import work_ratio


def main() -> None:
    n_objects = int(sys.argv[1]) if len(sys.argv) > 1 else 200_000
    n_queries = int(sys.argv[2]) if len(sys.argv) > 2 else 300
    dataset = make_uniform(n_objects, seed=9)
    print(f"{n_objects:,} objects, {n_queries} uniform queries per selectivity\n")

    print(f"{'selectivity':>12s} {'R-Tree total (s)':>17s} {'QUASII total (s)':>17s} "
          f"{'time ratio':>11s} {'work ratio':>11s}")
    for fraction in (1e-5, 1e-4, 1e-3, 1e-2, 1e-1):
        queries = uniform_workload(dataset.universe, n_queries, fraction, seed=13)
        rtree = RTreeIndex(dataset.store.copy())
        quasii = QuasiiIndex(dataset.store.copy())
        rt = run_workload(rtree, queries)
        qz = run_workload(quasii, queries)
        print(
            f"{fraction * 100:11g}% {rt.total_seconds():17.3f} "
            f"{qz.total_seconds():17.3f} "
            f"{qz.total_seconds() / rt.total_seconds():11.2f} "
            f"{work_ratio(qz, rt):11.2f}"
        )

    print(
        "\npaper shape: the ratio rises with selectivity — at 10% windows "
        "every query touches (and reorganizes) a tenth of the dataset, so "
        "the incremental strategy's edge over a one-shot build shrinks."
    )


if __name__ == "__main__":
    main()
