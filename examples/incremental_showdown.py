#!/usr/bin/env python3
"""All three incremental strategies, head to head (paper Sections 3 & 6.4).

The paper motivates QUASII by showing that the two obvious ways to build an
incremental spatial index both disappoint:

* SFCracker — map objects to a space-filling curve and crack the 1-d code
  array.  The first query pays for transforming *all* data, and every query
  cracks once per decomposed curve interval.
* Mosaic — incrementally deepen an octree one level per query.  Frequently
  queried data is re-partitioned over and over on its way down.
* QUASII — crack the multidimensional data directly, one dimension per
  level, only inside query bounds.

This example prints the per-query work counters that make the difference
visible regardless of machine: rows physically moved and objects tested.

Run:  python examples/incremental_showdown.py
"""

from __future__ import annotations

from repro import QuasiiIndex, clustered_workload, make_neuro_like
from repro.baselines import MosaicIndex, SFCrackerIndex
from repro.bench import run_workload


def main() -> None:
    dataset = make_neuro_like(200_000, seed=3)
    queries = clustered_workload(
        dataset.universe, n_clusters=2, queries_per_cluster=50,
        volume_fraction=1e-4, seed=5,
    )

    indexes = [
        QuasiiIndex(dataset.store.copy()),
        MosaicIndex(dataset.store.copy(), dataset.universe),
        SFCrackerIndex(dataset.store.copy(), dataset.universe),
    ]
    runs = {idx.name: run_workload(idx, queries) for idx in indexes}

    print(f"{'index':10s} {'q1 rows moved':>14s} {'total rows moved':>17s} "
          f"{'objects tested':>15s} {'q1 (ms)':>9s} {'tail avg (ms)':>14s}")
    for name, run in runs.items():
        print(
            f"{name:10s} {run.timings[0].rows_reorganized:14,d} "
            f"{sum(t.rows_reorganized for t in run.timings):17,d} "
            f"{run.total_objects_tested():15,d} "
            f"{run.timings[0].seconds * 1e3:9.1f} "
            f"{run.tail_mean_seconds(20) * 1e3:14.2f}"
        )

    q = runs["QUASII"]
    m = runs["Mosaic"]
    s = runs["SFCracker"]
    print("\nwhat the paper predicts, and what we measured:")
    print(
        f"* first-query (data-to-insight) time: QUASII "
        f"{q.timings[0].seconds * 1e3:.1f} ms < Mosaic "
        f"{m.timings[0].seconds * 1e3:.1f} ms < SFCracker "
        f"{s.timings[0].seconds * 1e3:.1f} ms — QUASII's x-pass examines one "
        f"coordinate, Mosaic reassigns every object on all coordinates, "
        f"SFCracker transforms the whole dataset to Z-codes"
    )
    print(
        f"* SFCracker's first query also moves by far the most rows "
        f"({s.timings[0].rows_reorganized:,} vs QUASII "
        f"{q.timings[0].rows_reorganized:,}) — it cracks once per curve "
        f"interval: {s.timings[0].cracks} cracks in that single query"
    )
    print(
        f"* converged per-query time: QUASII "
        f"{q.tail_mean_seconds(20) * 1e3:.2f} ms beats Mosaic "
        f"{m.tail_mean_seconds(20) * 1e3:.2f} ms and SFCracker "
        f"{s.tail_mean_seconds(20) * 1e3:.2f} ms — data-oriented slices "
        f"avoid query extension and dimensionality loss"
    )


if __name__ == "__main__":
    main()
