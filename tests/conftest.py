"""Shared fixtures: small deterministic datasets and workloads.

Scaled-down versions of the paper's data (Section 6.1) sized so the whole
suite runs in seconds; correctness and structural invariants do not depend
on n.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.scan import ScanIndex
from repro.datasets import Dataset, make_neuro_like, make_uniform
from repro.queries import RangeQuery, clustered_workload, uniform_workload


@pytest.fixture(scope="session")
def uniform_ds() -> Dataset:
    """Small instance of the paper's uniform synthetic dataset."""
    return make_uniform(3_000, seed=101)


@pytest.fixture(scope="session")
def neuro_ds() -> Dataset:
    """Small instance of the skewed neuroscience surrogate."""
    return make_neuro_like(3_000, seed=202)


@pytest.fixture(scope="session")
def uniform_queries(uniform_ds) -> list[RangeQuery]:
    """Mixed-selectivity uniform workload over the uniform dataset."""
    qs = []
    for frac, seed in ((1e-4, 1), (1e-3, 2), (1e-2, 3), (0.1, 4)):
        qs.extend(uniform_workload(uniform_ds.universe, 10, frac, seed))
    return [RangeQuery(q.window, seq=i) for i, q in enumerate(qs)]


@pytest.fixture(scope="session")
def clustered_queries(neuro_ds) -> list[RangeQuery]:
    """Clustered workload over the skewed dataset (paper Section 6.1)."""
    return clustered_workload(
        neuro_ds.universe, n_clusters=3, queries_per_cluster=15,
        volume_fraction=1e-4, seed=7,
    )


def expected_results(ds: Dataset, queries) -> list[np.ndarray]:
    """Ground-truth ids per query via a full scan (sorted)."""
    scan = ScanIndex(ds.store)
    return [np.sort(scan.query(q)) for q in queries]


def assert_matches_scan(index, ds: Dataset, queries) -> None:
    """Assert an index returns exactly the scan results for every query."""
    truth = expected_results(ds, queries)
    for q, expect in zip(queries, truth):
        got = np.sort(index.query(q))
        assert np.array_equal(got, expect), (
            f"{index.name}: query {q.seq} returned {got.size} ids, "
            f"expected {expect.size}"
        )
