"""Integration: the chaos soak serves correctly while replicas die.

Runs the real soak harness (``soak_experiment(..., chaos=True)``) at
tiny scale: a replicated engine under drifting-hotspot traffic with
periodic replica kills and self-healing maintenance.  The acceptance
criteria from the replication tier: zero wrong results against the Scan
oracle, kills actually happened, recoveries actually happened, and the
canonical ``replica.*`` events were emitted.
"""

from __future__ import annotations

from repro.bench.experiments import Scale, run_experiment
from repro.bench.reporting import to_json_dict, validate_bench_json

#: Tiny but chaotic: kills every 25 ops over a ~1.2 s soak.
TINY_CHAOS = Scale(
    name="tiny-chaos",
    neuro_n=2_500,
    uniform_n=2_500,
    rebalance_n=2_500,
    soak_seconds=1.2,
    soak_window=0.2,
    soak_ops=200,
    soak_delete_batch=150,
    soak_chaos_every=25,
    soak_chaos_replication=2,
)


def test_chaos_soak_serves_zero_wrong_results():
    report = run_experiment("soak", TINY_CHAOS, chaos=True)
    chaos = report.metrics["chaos"]
    assert chaos["enabled"] is True
    assert chaos["replication"] == 2
    assert chaos["kills"] >= 1, "the chaos soak never killed a replica"
    assert chaos["recoveries"] >= 1, (
        "maintenance never healed a killed replica"
    )
    # Every executed query was verified against the Scan oracle.
    assert chaos["verified_queries"] > 0
    assert chaos["mismatches"] == 0, (
        f"{chaos['mismatches']} of {chaos['verified_queries']} queries "
        "returned wrong results under chaos"
    )
    # The canonical replica.* telemetry fired.
    assert chaos["replica_events"].get("replica.kill", 0) >= 1
    assert chaos["replica_events"].get("replica.recover", 0) >= 1
    # The chaos run still satisfies the persisted-results schema.
    assert validate_bench_json(to_json_dict(report, "tiny", 1.0)) == []


def test_plain_soak_reports_chaos_disabled():
    report = run_experiment("soak", TINY_CHAOS)
    chaos = report.metrics["chaos"]
    assert chaos["enabled"] is False
    assert chaos["kills"] == 0
    assert chaos["verified_queries"] == 0
