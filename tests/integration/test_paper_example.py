"""Integration: the paper's Figure 4 walk-through, mechanically.

A 2-d dataset of ten small objects indexed with the paper's handcrafted
thresholds (τx = 4, τy = 2).  The assertions follow the figure:

* q1's x-range slices the initial slice three ways (s1/s2/s3 with 1, 4 and
  5 objects);
* the middle x-slice is then y-refined into two non-empty slices of two
  objects each — the empty third slice (the paper's s23) is dropped;
* the untouched right slice s3 stays coarse;
* a later query refines only s3, leaving the earlier slices intact.

Coordinates are our own (the figure's exact numbers are not published),
but sizes, slice counts, and refinement types mirror the figure.
"""

from __future__ import annotations

import numpy as np

from repro.core import QuasiiConfig, QuasiiIndex
from repro.datasets import BoxStore
from repro.geometry import Box
from repro.queries import RangeQuery

EXTENT = 0.3

# Lower corners of o0..o9, named as in the figure.
LOWER = {
    0: (6.5, 3.0),
    1: (7.5, 7.0),
    2: (1.0, 5.0),
    3: (9.0, 0.5),
    4: (2.6, 4.5),
    5: (4.5, 1.5),
    6: (3.8, 5.5),
    7: (2.2, 1.0),
    8: (5.0, 6.5),
    9: (3.0, 2.5),
}


def make_figure4_index() -> tuple[BoxStore, QuasiiIndex]:
    lo = np.array([LOWER[i] for i in range(10)], dtype=np.float64)
    store = BoxStore(lo, lo + EXTENT)
    config = QuasiiConfig(ndim=2, level_thresholds=(4, 2))
    return store, QuasiiIndex(store, config)


Q1 = RangeQuery(Box((2.0, 4.0), (4.0, 6.0)), seq=0)
Q2 = RangeQuery(Box((4.4, 0.5), (9.6, 3.5)), seq=1)


class TestQueryOne:
    def test_result_is_o4_and_o6(self):
        _, idx = make_figure4_index()
        assert sorted(idx.query(Q1).tolist()) == [4, 6]

    def test_three_x_slices_with_figure_sizes(self):
        _, idx = make_figure4_index()
        idx.query(Q1)
        top = idx._top
        assert [s.size for s in top] == [1, 4, 5], "s1/s2/s3 of Figure 4b"
        idx.validate_structure()

    def test_objects_partitioned_by_lower_x(self):
        store, idx = make_figure4_index()
        idx.query(Q1)
        # Physical layout: o2 | {o4,o6,o7,o9} | {o0,o1,o3,o5,o8}.
        assert store.id_at(0) == 2
        assert set(store.ids[1:5].tolist()) == {4, 6, 7, 9}
        assert set(store.ids[5:10].tolist()) == {0, 1, 3, 5, 8}

    def test_middle_slice_y_refined_two_children(self):
        _, idx = make_figure4_index()
        idx.query(Q1)
        middle = idx._top[1]
        assert middle.children is not None
        sizes = [s.size for s in middle.children]
        assert sizes == [2, 2], "s21/s22 of Figure 4c; empty s23 dropped"

    def test_right_slice_stays_coarse(self):
        _, idx = make_figure4_index()
        idx.query(Q1)
        right = idx._top[2]
        assert right.size == 5
        assert not right.final, "s3 exceeds τx but was not in q1's x-range"
        assert right.children is None

    def test_slice_mbbs_reflect_actual_extents(self):
        store, idx = make_figure4_index()
        idx.query(Q1)
        middle = idx._top[1]
        rows_lo = store.lo[middle.begin : middle.end]
        rows_hi = store.hi[middle.begin : middle.end]
        assert np.all(rows_lo >= middle.mbb_lo - 1e-12)
        assert np.all(rows_hi <= middle.mbb_hi + 1e-12)


class TestQueryTwo:
    def test_result(self):
        _, idx = make_figure4_index()
        idx.query(Q1)
        assert sorted(idx.query(Q2).tolist()) == [0, 3, 5]

    def test_only_s3_is_refined_further(self):
        _, idx = make_figure4_index()
        idx.query(Q1)
        left_before = idx._top[0]
        middle_before = idx._top[1]
        idx.query(Q2)
        top = idx._top
        # s1 and s2 untouched (same objects, same children).
        assert top[0] is left_before
        assert top[1] is middle_before
        # s3 replaced by smaller slices, each within τx.
        assert len(top) >= 4
        assert all(s.size <= 4 for s in list(top)[2:])
        idx.validate_structure()

    def test_cumulative_reorganization_bounded(self):
        _, idx = make_figure4_index()
        idx.query(Q1)
        moved_q1 = idx.stats.rows_reorganized
        idx.query(Q2)
        moved_q2 = idx.stats.rows_reorganized - moved_q1
        # q2 only reorganizes within s3 (5 objects), never the whole array.
        assert moved_q2 <= 5 * 2  # at most a couple of cracks over s3


class TestRepeatedQueries:
    def test_replays_produce_identical_results_and_no_new_cracks(self):
        _, idx = make_figure4_index()
        first_q1 = sorted(idx.query(Q1).tolist())
        first_q2 = sorted(idx.query(Q2).tolist())
        cracks = idx.stats.cracks
        assert sorted(idx.query(Q1).tolist()) == first_q1
        assert sorted(idx.query(Q2).tolist()) == first_q2
        assert idx.stats.cracks == cracks
