"""Integration: the library is dimension-generic.

The paper presents QUASII in 3-d with a 2-d walk-through; the number of
levels "always equals the dimensionality of the queried dataset".  These
tests pin that genericity down:

* 1-d QUASII degenerates to relational database cracking (one level,
  interval queries);
* 2-d exercises the quadtree variant of Mosaic and 2-d Z-order;
* 4-d checks nothing hard-codes d = 3.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    MosaicIndex,
    RTreeIndex,
    SFCIndex,
    SFCrackerIndex,
    ScanIndex,
    UniformGridIndex,
)
from repro.core import QuasiiConfig, QuasiiIndex
from repro.datasets import BoxStore, make_uniform
from repro.geometry import Box
from repro.queries import RangeQuery, uniform_workload


def random_dataset(ndim, n, seed):
    return make_uniform(n, ndim=ndim, universe_side=1000.0, seed=seed)


class TestOneDimensional:
    def test_quasii_1d_is_relational_cracking(self):
        rng = np.random.default_rng(51)
        keys = rng.uniform(0, 1000, size=(400, 1))
        store = BoxStore(keys, keys)  # zero-extent: pure values
        index = QuasiiIndex(store, QuasiiConfig(1, (16,)))
        scan = ScanIndex(store.copy())
        for i, (lo, hi) in enumerate([(100, 300), (50, 120), (700, 900), (0, 1000)]):
            q = RangeQuery(Box((float(lo),), (float(hi),)), seq=i)
            assert np.array_equal(np.sort(index.query(q)), np.sort(scan.query(q)))
        index.validate_structure()
        # The array is now partially sorted around the queried bounds:
        # piece-wise, every slice's keys fit between its cut bounds.
        assert index.slice_counts()[0] > 1

    def test_1d_repeated_queries_converge(self):
        rng = np.random.default_rng(52)
        keys = rng.uniform(0, 1000, size=(500, 1))
        store = BoxStore(keys, keys + 1.0)
        index = QuasiiIndex(store, QuasiiConfig(1, (8,)))
        q = RangeQuery(Box((250.0,), (260.0,)))
        index.query(q)
        index.query(q)
        cracks = index.stats.cracks
        index.query(q)
        assert index.stats.cracks == cracks


@pytest.mark.parametrize("ndim", [2, 4])
class TestOtherDimensions:
    def test_all_indexes_agree(self, ndim):
        ds = random_dataset(ndim, 800, seed=53)
        scan = ScanIndex(ds.store)
        indexes = [
            QuasiiIndex(ds.store.copy(), tau=16),
            MosaicIndex(ds.store.copy(), ds.universe, capacity=16),
            RTreeIndex(ds.store.copy(), capacity=16),
            UniformGridIndex(ds.store.copy(), ds.universe, 5),
        ]
        if ndim <= 3:
            indexes.append(SFCIndex(ds.store.copy(), ds.universe))
            indexes.append(SFCrackerIndex(ds.store.copy(), ds.universe))
        for idx in indexes:
            idx.build()
        for q in uniform_workload(ds.universe, 15, 1e-2, seed=54):
            expect = np.sort(scan.query(q))
            for idx in indexes:
                assert np.array_equal(np.sort(idx.query(q)), expect), (
                    f"{idx.name} wrong in {ndim}-d"
                )

    def test_quasii_level_count_equals_ndim(self, ndim):
        ds = random_dataset(ndim, 500, seed=55)
        index = QuasiiIndex(ds.store.copy(), tau=8)
        for q in uniform_workload(ds.universe, 10, 0.05, seed=56):
            index.query(q)
        counts = index.slice_counts()
        assert len(counts) == ndim
        index.validate_structure()

    def test_mosaic_fanout_is_two_to_the_d(self, ndim):
        ds = random_dataset(ndim, 2000, seed=57)
        index = MosaicIndex(ds.store.copy(), ds.universe, capacity=10)
        index.query(uniform_workload(ds.universe, 1, 1e-2, seed=58)[0])
        assert index.partition_count() == 2**ndim


class TestSFCDimensionLimit:
    def test_4d_sfc_supported_with_reduced_bits(self):
        # 10 bits x 4 dims = 40 <= 63: still fits a 64-bit code.
        ds = random_dataset(4, 300, seed=59)
        idx = SFCIndex(ds.store.copy(), ds.universe, bits=10)
        idx.build()
        scan = ScanIndex(ds.store)
        for q in uniform_workload(ds.universe, 5, 0.05, seed=60):
            assert np.array_equal(np.sort(idx.query(q)), np.sort(scan.query(q)))
