"""Integration: every index returns exactly the Scan results, always.

This is invariant #1 of DESIGN.md — the strongest end-to-end check the
library has.  Each index runs over shared query sequences on both dataset
families, including mixed selectivities, boundary-hugging windows, and
degenerate windows.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    MosaicIndex,
    RTreeIndex,
    SFCIndex,
    SFCrackerIndex,
    UniformGridIndex,
)
from repro.core import QuasiiIndex
from repro.geometry import Box
from repro.queries import RangeQuery

from tests.conftest import assert_matches_scan


def make_index(kind, ds):
    """Fresh index over a private copy of the dataset store."""
    store = ds.store.copy()
    if kind == "quasii":
        return QuasiiIndex(store)
    if kind == "rtree":
        idx = RTreeIndex(store)
        idx.build()
        return idx
    if kind == "grid-ext":
        idx = UniformGridIndex(store, ds.universe, 20, "query_extension")
        idx.build()
        return idx
    if kind == "grid-rep":
        idx = UniformGridIndex(store, ds.universe, 20, "replication")
        idx.build()
        return idx
    if kind == "sfc":
        idx = SFCIndex(store, ds.universe)
        idx.build()
        return idx
    if kind == "sfcracker":
        return SFCrackerIndex(store, ds.universe)
    if kind == "mosaic":
        return MosaicIndex(store, ds.universe)
    raise ValueError(kind)


ALL_KINDS = ["quasii", "rtree", "grid-ext", "grid-rep", "sfc", "sfcracker", "mosaic"]


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_matches_scan_on_uniform(kind, uniform_ds, uniform_queries):
    index = make_index(kind, uniform_ds)
    assert_matches_scan(index, uniform_ds, uniform_queries)


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_matches_scan_on_clustered(kind, neuro_ds, clustered_queries):
    index = make_index(kind, neuro_ds)
    assert_matches_scan(index, neuro_ds, clustered_queries)


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_boundary_and_degenerate_windows(kind, uniform_ds):
    side = uniform_ds.universe.hi[0]
    queries = [
        # Whole universe.
        RangeQuery(uniform_ds.universe, 0),
        # Degenerate plane and point windows.
        RangeQuery(Box((side / 2, 0.0, 0.0), (side / 2, side, side)), 1),
        RangeQuery(Box((side / 2,) * 3, (side / 2,) * 3), 2),
        # Hugging the lower and upper corners.
        RangeQuery(Box((0.0,) * 3, (side * 0.05,) * 3), 3),
        RangeQuery(Box((side * 0.95,) * 3, (side,) * 3), 4),
        # Entirely outside the data (legal: window beyond the universe).
        RangeQuery(Box((side * 2,) * 3, (side * 3,) * 3), 5),
    ]
    index = make_index(kind, uniform_ds)
    assert_matches_scan(index, uniform_ds, queries)


@pytest.mark.parametrize("kind", ["quasii", "sfcracker", "mosaic"])
def test_incremental_indexes_stay_correct_under_repeats(kind, uniform_ds, uniform_queries):
    """Re-running the same workload twice must give identical answers —
    the second pass runs on a (partially) refined structure."""
    index = make_index(kind, uniform_ds)
    first = [np.sort(index.query(q)) for q in uniform_queries]
    second = [np.sort(index.query(q)) for q in uniform_queries]
    for a, b in zip(first, second):
        assert np.array_equal(a, b)


def test_quasii_structure_valid_after_mixed_workloads(uniform_ds, uniform_queries):
    index = make_index("quasii", uniform_ds)
    for q in uniform_queries:
        index.query(q)
    index.validate_structure()
