"""Integration: the whole pipeline is deterministic.

Reproducing a paper requires runs to be replayable: same seeds, same
datasets, same workloads, same physical layouts, same counters.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import MosaicIndex, SFCrackerIndex
from repro.core import QuasiiIndex
from repro.datasets import make_neuro_like, make_uniform
from repro.queries import clustered_workload, sequential_workload, uniform_workload


def test_generators_are_bit_reproducible():
    for make in (make_uniform, make_neuro_like):
        a = make(2_000, seed=77)
        b = make(2_000, seed=77)
        assert np.array_equal(a.store.lo, b.store.lo)
        assert np.array_equal(a.store.hi, b.store.hi)


def test_workloads_are_bit_reproducible():
    universe = make_uniform(10, seed=1).universe
    for gen in (
        lambda: uniform_workload(universe, 30, 1e-3, seed=5),
        lambda: clustered_workload(universe, 2, 15, 1e-3, seed=5),
        lambda: sequential_workload(universe, 30, 1e-3, seed=5),
    ):
        a, b = gen(), gen()
        assert all(x.window == y.window for x, y in zip(a, b))


def test_quasii_layout_is_deterministic():
    ds = make_uniform(3_000, seed=78)
    queries = uniform_workload(ds.universe, 25, 1e-2, seed=79)
    runs = []
    for _ in range(2):
        store = ds.store.copy()
        index = QuasiiIndex(store)
        for q in queries:
            index.query(q)
        runs.append((store.ids.copy(), index.stats.snapshot()))
    ids_a, stats_a = runs[0]
    ids_b, stats_b = runs[1]
    assert np.array_equal(ids_a, ids_b), "cracking must be deterministic"
    assert stats_a.cracks == stats_b.cracks
    assert stats_a.rows_reorganized == stats_b.rows_reorganized
    assert stats_a.objects_tested == stats_b.objects_tested


def test_incremental_baselines_deterministic_counters():
    ds = make_uniform(2_000, seed=80)
    queries = uniform_workload(ds.universe, 15, 1e-2, seed=81)

    def counters(make_index):
        index = make_index()
        for q in queries:
            index.query(q)
        s = index.stats
        return (s.cracks, s.rows_reorganized, s.objects_tested, s.results_returned)

    for make_index in (
        lambda: SFCrackerIndex(ds.store.copy(), ds.universe),
        lambda: MosaicIndex(ds.store.copy(), ds.universe),
    ):
        assert counters(make_index) == counters(make_index)
