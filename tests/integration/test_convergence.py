"""Integration: incremental indexes converge (DESIGN.md invariant #6).

After enough queries in a region, further queries there must perform zero
reorganization, and incremental work must shrink monotonically in
aggregate.  These are the mechanisms behind the paper's Figures 7–9.
"""

from __future__ import annotations

import pytest

from repro.baselines import MosaicIndex, RTreeIndex, SFCrackerIndex
from repro.core import QuasiiIndex
from repro.queries import clustered_workload


@pytest.fixture(scope="module")
def repeated_region_queries(neuro_ds):
    """Many queries hammering one small region (one paper 'cluster')."""
    return clustered_workload(
        neuro_ds.universe, n_clusters=1, queries_per_cluster=60,
        volume_fraction=1e-4, seed=33,
    )


class TestQuasiiConvergence:
    def test_cracking_ceases_in_hammered_region(self, neuro_ds, repeated_region_queries):
        index = QuasiiIndex(neuro_ds.store.copy())
        for q in repeated_region_queries:
            index.query(q)
        cracks = index.stats.cracks
        rows = index.stats.rows_reorganized
        # Replay the same region: fully refined, nothing to reorganize.
        for q in repeated_region_queries[:10]:
            index.query(q)
        assert index.stats.cracks == cracks
        assert index.stats.rows_reorganized == rows

    def test_objects_tested_approaches_result_size(self, neuro_ds, repeated_region_queries):
        index = QuasiiIndex(neuro_ds.store.copy())
        for q in repeated_region_queries:
            index.query(q)
        index.stats.reset()
        q = repeated_region_queries[0]
        hits = index.query(q)
        # Converged: only bottom slices overlapping the window are scanned,
        # bounded by a few leaves of tau objects each.
        tau = index.config.leaf_threshold
        assert index.stats.objects_tested <= max(4 * tau, 8 * hits.size + 2 * tau)

    def test_work_decays_across_query_sequence(self, neuro_ds, repeated_region_queries):
        index = QuasiiIndex(neuro_ds.store.copy())
        moved = []
        for q in repeated_region_queries:
            before = index.stats.rows_reorganized
            index.query(q)
            moved.append(index.stats.rows_reorganized - before)
        first_five = sum(moved[:5])
        last_five = sum(moved[-5:])
        assert last_five < first_five / 10

    def test_untouched_regions_stay_coarse(self, uniform_ds):
        index = QuasiiIndex(uniform_ds.store.copy())
        qs = clustered_workload(
            uniform_ds.universe, n_clusters=1, queries_per_cluster=20,
            volume_fraction=1e-4, seed=44,
        )
        for q in qs:
            index.query(q)
        counts = index.slice_counts()
        # Far fewer slices than a full build would create (n/tau leaves).
        full_leaves = uniform_ds.n / index.config.leaf_threshold
        assert counts[-1] < full_leaves / 2, (
            "only the queried region should be refined"
        )


class TestSFCrackerConvergence:
    def test_repeat_region_stops_cracking(self, neuro_ds, repeated_region_queries):
        index = SFCrackerIndex(neuro_ds.store.copy(), neuro_ds.universe)
        for q in repeated_region_queries:
            index.query(q)
        cracks = index.stats.cracks
        for q in repeated_region_queries[:10]:
            index.query(q)
        assert index.stats.cracks == cracks


class TestMosaicConvergence:
    def test_depth_stabilizes(self, neuro_ds, repeated_region_queries):
        index = MosaicIndex(neuro_ds.store.copy(), neuro_ds.universe)
        for q in repeated_region_queries:
            index.query(q)
        depth = index.max_depth_reached()
        splits = index.stats.cracks
        for q in repeated_region_queries[:10]:
            index.query(q)
        assert index.max_depth_reached() == depth
        assert index.stats.cracks == splits


class TestConvergedPerformanceParity:
    def test_quasii_converged_work_comparable_to_rtree(self, neuro_ds):
        """The paper's headline (Fig. 9a): converged QUASII touches about
        as few objects per query as the R-Tree."""
        qs = clustered_workload(
            neuro_ds.universe, 1, 80, volume_fraction=1e-4, seed=55
        )
        quasii = QuasiiIndex(neuro_ds.store.copy())
        for q in qs:
            quasii.query(q)
        rtree = RTreeIndex(neuro_ds.store.copy())
        rtree.build()
        quasii.stats.reset()
        rtree.stats.reset()
        for q in qs[:20]:
            quasii.query(q)
            rtree.query(q)
        assert quasii.stats.objects_tested <= 3 * max(rtree.stats.objects_tested, 1)
