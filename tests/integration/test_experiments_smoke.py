"""Integration: every registered experiment runs end-to-end at tiny scale.

These do not validate performance numbers (that is the benchmark suite's
job); they validate that the harness produces well-formed reports for each
figure and that the CLI wiring works.
"""

from __future__ import annotations

import pytest

from repro.bench.cli import build_parser, main
from repro.bench.experiments import EXPERIMENTS, Scale, run_experiment
from repro.errors import ConfigurationError

#: Minimal scale: just enough data for every experiment to be non-trivial.
TINY = Scale(
    name="tiny",
    neuro_n=2_500,
    uniform_n=2_500,
    clusters=2,
    per_cluster=6,
    clustered_fraction=5e-3,
    uniform_queries=25,
    uniform_fraction=5e-3,
    selectivity_fractions=(1e-4, 1e-2),
    selectivity_queries=10,
    grid_candidates=(3, 6),
    grid_uniform_parts=4,
    grid_neuro_parts=6,
    mixed_ops=60,
    mixed_write_batch=4,
    mixed_ratios=(0.0, 0.4),
    soak_seconds=1.2,
    soak_window=0.2,
    soak_ops=200,
    soak_delete_batch=150,
)


@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_experiment_produces_report(name):
    report = run_experiment(name, TINY)
    assert report.experiment == name
    assert report.tables, f"{name} produced no tables"
    for table in report.tables:
        assert table.headers
        assert all(len(r) == len(table.headers) for r in table.rows)
    text = report.render()
    assert name in text


def test_soak_report_meets_trajectory_contract():
    """The soak acceptance criteria: windows, spans, valid JSON payload."""
    from repro.bench.reporting import to_json_dict, validate_bench_json

    report = run_experiment("soak", TINY)
    windows = report.metrics["windows"]
    assert len(windows) >= 3, "soak must produce >= 3 time windows"
    assert report.metrics["ops_executed"] > 0
    # At least one maintenance pass attributable to a named span: at
    # tiny scale the delete storms always push shards over the 0.15
    # dead-fraction gate, so compaction work is guaranteed.
    spans = report.metrics["spans"]
    assert spans, "soak produced no attributable maintenance spans"
    assert all(s["name"].startswith("maintenance.") for s in spans)
    assert all(0 <= s["window"] < len(windows) for s in spans)
    # The persisted form passes the schema gate CI enforces.
    assert validate_bench_json(to_json_dict(report, "tiny", 1.0)) == []


def test_unknown_experiment_rejected():
    with pytest.raises(ConfigurationError, match="unknown experiment"):
        run_experiment("fig99", TINY)


def test_unknown_scale_rejected():
    with pytest.raises(ConfigurationError, match="unknown scale"):
        run_experiment("fig6a", "galactic")


class TestCli:
    def test_parser_lists_experiments(self):
        parser = build_parser()
        args = parser.parse_args(["fig6a", "--scale", "smoke"])
        assert args.experiments == ["fig6a"]
        assert args.scale == "smoke"

    def test_main_rejects_unknown(self, capsys):
        rc = main(["not-an-experiment"])
        assert rc == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_main_runs_and_writes_output(self, tmp_path, capsys, monkeypatch):
        # Register a tiny scale so the end-to-end CLI test stays fast.
        # SCALES is shared between the cli and experiments modules (same
        # dict object), so one patch covers validation and lookup.
        from repro.bench.experiments import SCALES

        monkeypatch.setitem(SCALES, "tiny", TINY)
        out_file = tmp_path / "report.txt"
        rc = main(
            [
                "fig6b",
                "--scale", "tiny",
                "--output", str(out_file),
                "--json-out", str(tmp_path),
            ]
        )
        assert rc == 0
        assert out_file.exists()
        assert "fig6b" in out_file.read_text()
        assert "fig6b" in capsys.readouterr().out
        # Persistence rides every run: the JSON trajectory point landed
        # in --json-out (not the repo root).
        assert (tmp_path / "BENCH_fig6b.json").is_file()
