"""Integration: incremental indexes only ever *permute* the data array.

Invariant #2 of DESIGN.md — whatever queries run, the multiset of
(id, box) rows in the store never changes, and static index structures
never mutate the store at all.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import (
    MosaicIndex,
    RTreeIndex,
    SFCIndex,
    SFCrackerIndex,
    UniformGridIndex,
)
from repro.core import QuasiiIndex


def test_quasii_only_permutes(neuro_ds, clustered_queries):
    store = neuro_ds.store.copy()
    fp = store.fingerprint()
    index = QuasiiIndex(store)
    for q in clustered_queries:
        index.query(q)
    assert store.fingerprint() == fp


def test_quasii_permutation_is_nontrivial(neuro_ds, clustered_queries):
    store = neuro_ds.store.copy()
    ids_before = store.ids.copy()
    index = QuasiiIndex(store)
    for q in clustered_queries[:5]:
        index.query(q)
    assert not np.array_equal(store.ids, ids_before)


def test_static_indexes_never_touch_store(uniform_ds, uniform_queries):
    store = uniform_ds.store.copy()
    ids_before = store.ids.copy()
    lo_before = store.lo.copy()
    for idx in (
        RTreeIndex(store),
        UniformGridIndex(store, uniform_ds.universe, 10),
        SFCIndex(store, uniform_ds.universe),
    ):
        idx.build()
        for q in uniform_queries[:10]:
            idx.query(q)
    assert np.array_equal(store.ids, ids_before)
    assert np.array_equal(store.lo, lo_before)


def test_sfcracker_keeps_store_and_conserves_rows(uniform_ds, uniform_queries):
    store = uniform_ds.store.copy()
    ids_before = store.ids.copy()
    index = SFCrackerIndex(store, uniform_ds.universe)
    for q in uniform_queries:
        index.query(q)
    # SFCracker cracks its own code/row arrays; the store is untouched.
    assert np.array_equal(store.ids, ids_before)
    assert sorted(index._rows.tolist()) == list(range(store.n))


def test_mosaic_conserves_rows(uniform_ds, uniform_queries):
    store = uniform_ds.store.copy()
    index = MosaicIndex(store, uniform_ds.universe, capacity=20)
    for q in uniform_queries:
        index.query(q)
    rows = []
    stack = [index._root]
    while stack:
        part = stack.pop()
        if part.is_leaf:
            rows.extend(part.rows.tolist())
        else:
            stack.extend(part.children)
    assert sorted(rows) == list(range(store.n))
