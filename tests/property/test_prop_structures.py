"""Property tests for structural helpers: STR packing, SliceList search,
grid assignment, and the gather-ranges kernel."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.grid import UniformGridIndex
from repro.baselines.rtree import str_pack
from repro.core.slices import Slice, SliceList
from repro.datasets import BoxStore
from repro.geometry import Box
from repro.queries import RangeQuery
from repro.util import gather_ranges

INF = float("inf")


@given(st.integers(1, 400), st.integers(1, 80), st.integers(0, 2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_str_pack_partitions_rows(n, capacity, seed):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, 100, size=(n, 3))
    hi = lo + rng.uniform(0, 5, size=(n, 3))
    runs = str_pack(lo, hi, capacity)
    assert all(1 <= r.size <= capacity for r in runs)
    assert sorted(np.concatenate(runs).tolist()) == list(range(n))


@given(st.data())
@settings(max_examples=80)
def test_slicelist_find_start_matches_linear_scan(data):
    # Build a valid sibling run with strictly increasing cut bounds.
    n_slices = data.draw(st.integers(1, 12))
    cuts = sorted(
        data.draw(
            st.lists(
                st.floats(-1e6, 1e6, allow_nan=False),
                min_size=n_slices - 1,
                max_size=n_slices - 1,
                unique=True,
            )
        )
    )
    cut_los = [-INF, *cuts]
    slices = []
    begin = 0
    for cut in cut_los:
        end = begin + data.draw(st.integers(1, 5))
        slices.append(
            Slice(0, begin, end, cut, np.full(2, -INF), np.full(2, INF))
        )
        begin = end
    lst = SliceList(0, slices)
    value = data.draw(st.floats(-2e6, 2e6, allow_nan=False))
    got = lst.find_start(value)
    # Linear reference: last slice whose cut_lo <= value, clamped to 0.
    expected = 0
    for i, s in enumerate(slices):
        if s.cut_lo <= value:
            expected = i
    assert got == expected


@given(st.integers(1, 10), st.integers(2, 120), st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_grid_replication_covers_query_extension(parts, n, seed):
    """Both assignment strategies answer identically on random windows."""
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, 100, size=(n, 2))
    hi = lo + rng.uniform(0, 30, size=(n, 2))
    hi = np.minimum(hi, 100.0)
    universe = Box((0.0, 0.0), (100.0, 100.0))
    a = UniformGridIndex(BoxStore(lo, hi), universe, parts, "query_extension")
    b = UniformGridIndex(BoxStore(lo.copy(), hi.copy()), universe, parts, "replication")
    a.build()
    b.build()
    for i in range(3):
        qlo = rng.uniform(-5, 100, size=2)
        qhi = qlo + rng.uniform(0, 60, size=2)
        q = RangeQuery(Box(tuple(qlo), tuple(qhi)), seq=i)
        assert np.array_equal(np.sort(a.query(q)), np.sort(b.query(q)))


@given(
    st.lists(
        st.tuples(st.integers(0, 1000), st.integers(0, 50)),
        min_size=0,
        max_size=60,
    )
)
def test_gather_ranges_property(segments):
    starts = np.array([s for s, _ in segments], dtype=np.int64)
    ends = np.array([s + l for s, l in segments], dtype=np.int64)
    expected: list[int] = []
    for s, l in segments:
        expected.extend(range(s, s + l))
    assert gather_ranges(starts, ends).tolist() == expected
