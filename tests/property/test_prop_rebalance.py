"""Property tests for query-driven shard rebalancing.

Hypothesis drives an initial dataset plus an arbitrary interleaving of
window queries, insert batches, delete batches, compactions, forced
rebalancing passes, and maintenance ticks against a
:class:`ShardedIndex` for **every partitioner** and shard counts
K ∈ {1, 2, 7}.  Invariants that must survive every interleaving:

* **Oracle agreement** — every query returns exactly the live-row set
  the Scan oracle returns, and a final full-window query returns the
  complete live id set.
* **Fingerprint preservation** — a rebalancing pass moves rows between
  shards only: the ingest mirror's physical fingerprint (and therefore
  its live ``(id, box)`` multiset) is bit-identical before and after
  every pass.
* **Ledger agreement** — the mirror ends with precisely the live
  multiset implied by the applied updates.
* **Ownership consistency** — after every pass, each live object is
  owned by exactly one shard, the ownership map agrees with the shard
  stores, and the routing MBBs are re-derived from the migrated stores
  (each shard's pruning MBB contains its store's live bounds).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import ScanIndex
from repro.core import QuasiiConfig, QuasiiIndex
from repro.datasets import BoxStore
from repro.geometry import Box
from repro.queries import RangeQuery
from repro.sharding import (
    PARTITIONERS,
    MaintenancePolicy,
    MaintenanceScheduler,
    Rebalancer,
    ShardedIndex,
)
from repro.updates import UpdateLedger

UNIVERSE_SIDE = 100.0

SHARD_COUNTS = (1, 2, 7)


@st.composite
def dataset_and_ops(draw, ndim=2):
    n = draw(st.integers(2, 60))
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    lo = rng.uniform(0, UNIVERSE_SIDE, size=(n, ndim))
    hi = np.minimum(lo + rng.uniform(0, 10, size=(n, ndim)), UNIVERSE_SIDE)

    n_ops = draw(st.integers(1, 12))
    ops = []
    for _ in range(n_ops):
        kind = draw(
            st.sampled_from(
                ["query", "query", "insert", "delete", "rebalance", "compact", "maintain"]
            )
        )
        if kind == "query":
            qlo = rng.uniform(-10, UNIVERSE_SIDE, size=ndim)
            qhi = qlo + rng.uniform(0, 60, size=ndim)
            ops.append(("query", Box(tuple(qlo), tuple(qhi))))
        elif kind == "insert":
            k = draw(st.integers(1, 5))
            blo = rng.uniform(0, UNIVERSE_SIDE, size=(k, ndim))
            bhi = np.minimum(blo + rng.uniform(0, 8, size=(k, ndim)), UNIVERSE_SIDE)
            ops.append(("insert", (blo, bhi)))
        elif kind == "delete":
            ops.append(
                ("delete", (draw(st.integers(1, 4)), draw(st.integers(0, 2**31 - 1))))
            )
        else:
            ops.append((kind, None))
    return (lo, hi), ops


def _full_window(ndim: int) -> RangeQuery:
    return RangeQuery(
        Box((-1.0,) * ndim, (UNIVERSE_SIDE + 1.0,) * ndim), seq=10_000
    )


def _small_quasii(store: BoxStore) -> QuasiiIndex:
    # A handcrafted tiny ladder keeps refinement exercised at toy sizes.
    return QuasiiIndex(store, QuasiiConfig(2, (8, 4)), max_runs=2)


def _assert_routing_mbbs_fresh(engine: ShardedIndex) -> None:
    """Every shard's pruning MBB must cover its store's live bounds, and
    the stacked routing MBBs must agree with the per-shard boxes (the
    post-migration re-derivation the insert router depends on)."""
    stack_lo, stack_hi = engine._mbb_stacks()
    for shard in engine.shards:
        assert np.array_equal(stack_lo[shard.sid], shard.mbb_lo)
        assert np.array_equal(stack_hi[shard.sid], shard.mbb_hi)
        store = shard.store
        rows = store.live_rows()
        if rows.size:
            assert np.all(shard.mbb_lo <= store.lo[rows].min(axis=0) + 1e-12)
            assert np.all(shard.mbb_hi >= store.hi[rows].max(axis=0) - 1e-12)


@pytest.mark.parametrize("partitioner", sorted(PARTITIONERS))
@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
@given(case=dataset_and_ops())
@settings(max_examples=10, deadline=None)
def test_rebalancing_preserves_all_invariants(partitioner, n_shards, case):
    (lo, hi), ops = case
    scan = ScanIndex(BoxStore(lo.copy(), hi.copy()))
    engine = ShardedIndex(
        BoxStore(lo.copy(), hi.copy()),
        n_shards=n_shards,
        partitioner=partitioner,
        index_factory=_small_quasii,
    )
    engine.build()
    ledger = UpdateLedger(scan.store)
    rebalancer = Rebalancer(min_queries=1, min_centroids=2, warmup=4)
    scheduler = MaintenanceScheduler(
        engine,
        MaintenancePolicy(
            check_every=1, dead_fraction=0.2, max_balance=1.1,
            max_query_skew=1.1, min_queries=1,
        ),
    )

    seq = 0
    for kind, payload in ops:
        if kind == "query":
            query = RangeQuery(payload, seq=seq)
            seq += 1
            expect = np.sort(scan.query(query))
            got = np.sort(engine.query(query))
            assert np.array_equal(got, expect), (
                f"{engine.name} diverged from Scan on query {query.seq}"
            )
        elif kind == "insert":
            blo, bhi = payload
            expect_ids = scan.insert(blo, bhi)
            got_ids = engine.insert(blo, bhi)
            assert np.array_equal(got_ids, expect_ids), "id streams diverged"
            ledger.record_insert(blo, bhi, expect_ids)
        elif kind == "delete":
            count, victim_seed = payload
            live = ledger.live_ids()
            count = min(count, live.size)
            if count == 0:
                continue
            victims = np.random.default_rng(victim_seed).choice(
                live, size=count, replace=False
            )
            assert scan.delete(victims) == count
            assert engine.delete(victims) == count
            ledger.record_delete(victims)
        elif kind == "rebalance":
            mirror_before = engine.store.fingerprint()
            result = rebalancer.rebalance(engine)
            assert engine.store.fingerprint() == mirror_before, (
                "rebalancing touched the ingest mirror"
            )
            if n_shards < 2:
                assert result is None
            else:
                assert result is not None
                assert result.rows_migrated >= 0
            engine.validate_routing()
            _assert_routing_mbbs_fresh(engine)
        elif kind == "compact":
            live_before = engine.store.live_fingerprint()
            engine.compact()
            assert engine.store.live_fingerprint() == live_before, (
                "compaction changed the live multiset"
            )
        else:  # maintain: one full policy-driven maintenance check
            live_before = engine.store.live_fingerprint()
            scheduler.run()
            assert engine.store.live_fingerprint() == live_before, (
                "maintenance changed the live multiset"
            )
            engine.validate_routing()
            _assert_routing_mbbs_fresh(engine)

    # Final full-window query: the complete live set from the engine.
    full = _full_window(2)
    expect = np.sort(scan.query(full))
    assert np.array_equal(expect, ledger.live_ids())
    assert np.array_equal(np.sort(engine.query(full)), expect)

    # The ingest mirror holds exactly the ledger's live multiset, the
    # ownership map agrees with the shard stores, and every shard-level
    # QUASII kept its structural invariants.
    ledger.assert_matches(engine.store)
    engine.validate_routing()
    for shard in engine.shards:
        shard.index.validate_structure()
