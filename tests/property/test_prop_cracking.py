"""Property tests for the cracking kernels (DESIGN.md invariant #4)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import crack, crack_values, partition_order
from repro.datasets import BoxStore

KEYS = st.lists(
    st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
    min_size=1,
    max_size=200,
)


@given(KEYS, st.floats(min_value=-1e9, max_value=1e9, allow_nan=False))
def test_two_way_partition_postcondition(keys, bound):
    arr = np.array(keys)
    order, sizes = partition_order(arr, [bound])
    assert sorted(order.tolist()) == list(range(len(keys)))
    rearranged = arr[order]
    split = sizes[0]
    assert np.all(rearranged[:split] < bound)
    assert np.all(rearranged[split:] >= bound)


@given(
    KEYS,
    st.tuples(
        st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
        st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
    ).filter(lambda t: t[0] < t[1]),
)
def test_three_way_partition_postcondition(keys, bounds):
    lo, hi = bounds
    arr = np.array(keys)
    order, sizes = partition_order(arr, [lo, hi])
    rearranged = arr[order]
    s0, s1 = sizes[0], sizes[0] + sizes[1]
    assert np.all(rearranged[:s0] < lo)
    assert np.all((rearranged[s0:s1] >= lo) & (rearranged[s0:s1] < hi))
    assert np.all(rearranged[s1:] >= hi)


@given(
    st.lists(
        st.tuples(
            st.floats(-1e4, 1e4, allow_nan=False),
            st.floats(0, 100, allow_nan=False),
        ),
        min_size=2,
        max_size=100,
    ),
    st.data(),
)
@settings(max_examples=60)
def test_store_crack_preserves_multiset_and_ranges(rows, data):
    lo = np.array([[r[0]] for r in rows])
    hi = np.array([[r[0] + r[1]] for r in rows])
    store = BoxStore(lo, hi)
    n = store.n
    begin = data.draw(st.integers(0, n - 1))
    end = data.draw(st.integers(begin + 1, n))
    bound = data.draw(st.floats(-1e4, 1e4, allow_nan=False))
    fp = store.fingerprint()
    outside_before = (
        store.ids[:begin].tolist(),
        store.ids[end:].tolist(),
    )
    splits = crack(store, begin, end, 0, [bound])
    assert store.fingerprint() == fp
    assert begin <= splits[0] <= end
    assert np.all(store.lo[begin : splits[0], 0] < bound)
    assert np.all(store.lo[splits[0] : end, 0] >= bound)
    assert store.ids[:begin].tolist() == outside_before[0]
    assert store.ids[end:].tolist() == outside_before[1]


@given(
    st.lists(st.integers(0, 2**30), min_size=1, max_size=200),
    st.integers(0, 2**30),
)
def test_crack_values_postcondition(values, bound):
    codes = np.array(values, dtype=np.uint64)
    payload = np.arange(len(values))
    pairs_before = sorted(zip(codes.tolist(), payload.tolist()))
    split = crack_values(codes, payload, 0, len(values), bound)
    assert np.all(codes[:split] < bound)
    assert np.all(codes[split:] >= bound)
    assert sorted(zip(codes.tolist(), payload.tolist())) == pairs_before
