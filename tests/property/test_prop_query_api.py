"""Property tests for the first-class query layer.

The predicate/result-mode matrix: every index × {intersects, within,
contains, covers_point} × {ids, count} must agree with the Scan oracle —
for static stores and under randomized insert/delete/compact
interleavings (mutable indexes).  The kNN extension is pinned against a
brute-force distance oracle on the same randomized geometry.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    MosaicIndex,
    RTreeIndex,
    SFCIndex,
    SFCrackerIndex,
    ScanIndex,
    UniformGridIndex,
)
from repro.core import QuasiiConfig, QuasiiIndex
from repro.datasets import BoxStore
from repro.extensions import k_nearest
from repro.extensions.knn import box_distances
from repro.geometry import Box
from repro.queries import PREDICATES, Query
from repro.sharding import ShardedIndex

UNIVERSE_SIDE = 100.0
UNIVERSE = Box((0.0, 0.0), (UNIVERSE_SIDE, UNIVERSE_SIDE))


def _random_boxes(rng, n):
    lo = rng.uniform(0, UNIVERSE_SIDE, size=(n, 2))
    extent = rng.uniform(0, 12, size=(n, 2))
    points = rng.random(n) < 0.2
    extent[points] = 0.0
    hi = np.minimum(lo + extent, UNIVERSE_SIDE)
    return lo, hi


def _random_query(rng, i):
    """A query spec with random window, predicate, and result mode."""
    predicate = PREDICATES[int(rng.integers(len(PREDICATES)))]
    if predicate == "covers_point":
        pt = tuple(rng.uniform(0, UNIVERSE_SIDE, size=2))
        window = Box(pt, pt)
    else:
        qlo = rng.uniform(-10, UNIVERSE_SIDE, size=2)
        # Mix in degenerate (zero-extent) windows as first-class cases.
        span = rng.uniform(0, 60, size=2)
        if rng.random() < 0.2:
            span[int(rng.integers(2))] = 0.0
        window = Box(tuple(qlo), tuple(qlo + span))
    mode = "count" if rng.random() < 0.5 else "ids"
    return Query(window, predicate=predicate, mode=mode, seq=i)


def _assert_agrees(index, oracle, query):
    expect = oracle.execute(query)
    got = index.execute(query)
    assert got.count == expect.count, (
        f"{index.name}: count {got.count} != {expect.count} for "
        f"{query.predicate}/{query.mode}"
    )
    if query.mode == "ids":
        assert np.array_equal(np.sort(got.ids), np.sort(expect.ids)), (
            f"{index.name}: id set mismatch for {query.predicate}"
        )


@st.composite
def static_matrix_case(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    n = draw(st.integers(2, 120))
    n_queries = draw(st.integers(1, 8))
    return seed, n, n_queries


@given(static_matrix_case())
@settings(max_examples=40, deadline=None)
def test_all_indexes_agree_on_predicate_mode_matrix(case):
    seed, n, n_queries = case
    rng = np.random.default_rng(seed)
    lo, hi = _random_boxes(rng, n)
    store = BoxStore(lo, hi)
    oracle = ScanIndex(store.copy())
    indexes = [
        ScanIndex(store.copy()),
        UniformGridIndex(store.copy(), UNIVERSE, 6),
        RTreeIndex(store.copy(), capacity=8),
        SFCIndex(store.copy(), UNIVERSE),
        SFCrackerIndex(store.copy(), UNIVERSE),
        MosaicIndex(store.copy(), UNIVERSE, capacity=8),
        QuasiiIndex(store.copy(), QuasiiConfig(2, (8, 4))),
        ShardedIndex(store.copy(), n_shards=2),
    ]
    for index in indexes:
        index.build()
    for i in range(n_queries):
        query = _random_query(rng, i)
        for index in indexes:
            _assert_agrees(index, oracle, query)


@st.composite
def interleaving_case(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    n = draw(st.integers(4, 80))
    n_ops = draw(st.integers(2, 10))
    return seed, n, n_ops


@given(interleaving_case())
@settings(max_examples=30, deadline=None)
def test_matrix_agrees_under_insert_delete_compact(case):
    seed, n, n_ops = case
    rng = np.random.default_rng(seed)
    lo, hi = _random_boxes(rng, n)
    store = BoxStore(lo, hi)
    oracle = ScanIndex(store.copy())
    indexes = [
        UniformGridIndex(store.copy(), UNIVERSE, 5),
        RTreeIndex(store.copy(), capacity=8),
        QuasiiIndex(store.copy(), QuasiiConfig(2, (8, 4))),
        ShardedIndex(store.copy(), n_shards=2),
    ]
    for index in indexes:
        index.build()
    for op_i in range(n_ops):
        roll = rng.random()
        if roll < 0.3:
            k = int(rng.integers(1, 6))
            blo, bhi = _random_boxes(rng, k)
            oracle.insert(blo, bhi)
            for index in indexes:
                index.insert(blo, bhi)
        elif roll < 0.5:
            live = np.sort(oracle.store.ids[oracle.store.live_rows()])
            if live.size > 1:
                victims = rng.choice(
                    live, size=int(rng.integers(1, live.size)), replace=False
                )
                oracle.delete(victims)
                for index in indexes:
                    index.delete(victims)
        elif roll < 0.65:
            oracle.compact()
            for index in indexes:
                index.compact()
        query = _random_query(rng, op_i)
        for index in indexes:
            _assert_agrees(index, oracle, query)
    for index in indexes:
        if isinstance(index, QuasiiIndex):
            index.validate_structure()
        if isinstance(index, ShardedIndex):
            index.validate_routing()


@given(static_matrix_case())
@settings(max_examples=30, deadline=None)
def test_batch_matches_sequential_on_random_specs(case):
    seed, n, n_queries = case
    rng = np.random.default_rng(seed)
    lo, hi = _random_boxes(rng, n)
    store = BoxStore(lo, hi)
    queries = [_random_query(rng, i) for i in range(n_queries)]
    for make in (
        lambda s: ScanIndex(s),
        lambda s: UniformGridIndex(s, UNIVERSE, 6),
        lambda s: SFCIndex(s, UNIVERSE),
        lambda s: QuasiiIndex(s, QuasiiConfig(2, (8, 4))),
        lambda s: ShardedIndex(s, n_shards=2),
    ):
        loop_index = make(store.copy())
        loop_index.build()
        loop = [loop_index.execute(q) for q in queries]
        batch_index = make(store.copy())
        batch_index.build()
        batch = batch_index.execute_batch(queries)
        for a, b in zip(loop, batch):
            assert a.count == b.count, batch_index.name
            if a.ids is not None:
                assert np.array_equal(np.sort(a.ids), np.sort(b.ids))


@given(
    st.integers(0, 2**31 - 1),
    st.integers(2, 80),
    st.integers(1, 12),
)
@settings(max_examples=30, deadline=None)
def test_knn_matches_brute_force_oracle(seed, n, k):
    rng = np.random.default_rng(seed)
    lo, hi = _random_boxes(rng, n)
    store = BoxStore(lo, hi)
    k = min(k, n)
    point = rng.uniform(-10, UNIVERSE_SIDE + 10, size=2)
    # Brute-force oracle: exact distances over every live box.
    dists = box_distances(store.lo, store.hi, point)
    order = np.lexsort((store.ids, dists))
    expect = dists[order][:k]
    result = k_nearest(QuasiiIndex(store.copy()), point, k)
    got = np.array([d for _, d in result])
    assert np.allclose(got, expect)
    assert len(result.rounds) >= 2  # at least one probe + one materialize
    assert result.rounds[-1].mode == "boxes"
    # Count-only probes run until one window holds k candidates; every
    # later round materializes directly (counts are monotone in growth).
    modes = [r.mode for r in result.rounds]
    first_boxes = modes.index("boxes")
    assert first_boxes >= 1
    assert all(m == "count" for m in modes[:first_boxes])
    assert all(m == "boxes" for m in modes[first_boxes:])
    assert result.rounds[first_boxes - 1].count >= k
