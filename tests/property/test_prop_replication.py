"""Property tests for replicated shard serving under fault interleavings.

Hypothesis drives an initial dataset plus an arbitrary interleaving of
window queries, insert batches, delete batches, compactions, replica
kills, and ledger-replay recoveries against a
:class:`ReplicatedShardedIndex` for R ∈ {1, 2, 3} and K ∈ {1, 2, 7}.
Invariants that must survive every interleaving:

* **Oracle agreement** — every query returns exactly the live-row set
  the Scan oracle returns, no matter which replicas are dead, and a
  final full-window query returns the complete live id set.
* **No dead reads** — a killed replica's ``reads_served`` counter is
  frozen from the moment of the kill: read routing never lands on it.
* **Recovery correctness** — a replica rebuilt by ledger replay passes
  ``UpdateLedger.assert_matches`` and carries the same order-insensitive
  live fingerprint as its surviving peers; once every replica is live
  the shard ledger's op log is truncated.
* **Replica lockstep** — at the end of the run (after recovering the
  whole fleet and flushing), every shard's replicas hold identical live
  multisets, and the engine's ownership map still validates.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import ScanIndex
from repro.core import QuasiiConfig, QuasiiIndex
from repro.datasets import BoxStore
from repro.geometry import Box
from repro.queries import RangeQuery
from repro.sharding import ReplicatedShard, ReplicatedShardedIndex
from repro.updates import UpdateLedger

UNIVERSE_SIDE = 100.0

SHARD_COUNTS = (1, 2, 7)
REPLICATION_FACTORS = (1, 2, 3)


@st.composite
def dataset_and_ops(draw, ndim=2):
    n = draw(st.integers(2, 60))
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    lo = rng.uniform(0, UNIVERSE_SIDE, size=(n, ndim))
    hi = np.minimum(lo + rng.uniform(0, 10, size=(n, ndim)), UNIVERSE_SIDE)

    n_ops = draw(st.integers(1, 12))
    ops = []
    for _ in range(n_ops):
        kind = draw(
            st.sampled_from(
                ["query", "query", "insert", "delete", "compact", "kill",
                 "kill", "recover"]
            )
        )
        if kind == "query":
            qlo = rng.uniform(-10, UNIVERSE_SIDE, size=ndim)
            qhi = qlo + rng.uniform(0, 60, size=ndim)
            ops.append(("query", Box(tuple(qlo), tuple(qhi))))
        elif kind == "insert":
            k = draw(st.integers(1, 5))
            blo = rng.uniform(0, UNIVERSE_SIDE, size=(k, ndim))
            bhi = np.minimum(blo + rng.uniform(0, 8, size=(k, ndim)), UNIVERSE_SIDE)
            ops.append(("insert", (blo, bhi)))
        elif kind == "delete":
            ops.append(
                ("delete", (draw(st.integers(1, 4)), draw(st.integers(0, 2**31 - 1))))
            )
        elif kind == "kill":
            ops.append(
                ("kill", (draw(st.integers(0, 2**31 - 1)), draw(st.integers(0, 2**31 - 1))))
            )
        else:
            ops.append((kind, None))
    return (lo, hi), ops


def _full_window(ndim: int) -> RangeQuery:
    return RangeQuery(
        Box((-1.0,) * ndim, (UNIVERSE_SIDE + 1.0,) * ndim), seq=10_000
    )


def _small_quasii(store: BoxStore) -> QuasiiIndex:
    # A handcrafted tiny ladder keeps refinement exercised at toy sizes.
    return QuasiiIndex(store, QuasiiConfig(2, (8, 4)), max_runs=2)


def _assert_dead_reads_frozen(engine, frozen: dict) -> None:
    """No dead replica served a read since the moment it was killed."""
    for (sid, rid), reads_at_kill in frozen.items():
        shard = engine.shards[sid]
        replica = shard.replica_set.replicas[rid]
        if not replica.alive:
            assert replica.reads_served == reads_at_kill, (
                f"dead replica ({sid}, {rid}) served a read after its kill"
            )


def _assert_replicas_in_lockstep(engine) -> None:
    """Every shard's live replicas hold one identical live multiset, and
    the shard ledger's mirror agrees with each of them."""
    for shard in engine.shards:
        assert isinstance(shard, ReplicatedShard)
        rs = shard.replica_set
        live = rs.live_replicas()
        assert live, f"shard {shard.sid} ended with no live replicas"
        fps = {r.store.live_fingerprint() for r in live}
        assert len(fps) == 1, f"shard {shard.sid} replicas diverged"
        for r in live:
            rs.ledger.assert_matches(r.store)


@pytest.mark.parametrize("replication", REPLICATION_FACTORS)
@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
@given(case=dataset_and_ops())
@settings(max_examples=10, deadline=None)
def test_replication_preserves_all_invariants(replication, n_shards, case):
    (lo, hi), ops = case
    scan = ScanIndex(BoxStore(lo.copy(), hi.copy()))
    engine = ReplicatedShardedIndex(
        BoxStore(lo.copy(), hi.copy()),
        n_shards=n_shards,
        replication=replication,
        index_factory=_small_quasii,
    )
    engine.build()
    ledger = UpdateLedger(scan.store)
    # reads_served of each dead replica, frozen at its kill.
    frozen: dict[tuple[int, int], int] = {}

    seq = 0
    for kind, payload in ops:
        if kind == "query":
            query = RangeQuery(payload, seq=seq)
            seq += 1
            expect = np.sort(scan.query(query))
            got = np.sort(engine.query(query))
            assert np.array_equal(got, expect), (
                f"{engine.name} diverged from Scan on query {query.seq} "
                f"with dead replicas {engine.dead_replicas()}"
            )
            _assert_dead_reads_frozen(engine, frozen)
        elif kind == "insert":
            blo, bhi = payload
            expect_ids = scan.insert(blo, bhi)
            got_ids = engine.insert(blo, bhi)
            assert np.array_equal(got_ids, expect_ids), "id streams diverged"
            ledger.record_insert(blo, bhi, expect_ids)
        elif kind == "delete":
            count, victim_seed = payload
            live = ledger.live_ids()
            count = min(count, live.size)
            if count == 0:
                continue
            victims = np.random.default_rng(victim_seed).choice(
                live, size=count, replace=False
            )
            assert scan.delete(victims) == count
            assert engine.delete(victims) == count
            ledger.record_delete(victims)
        elif kind == "compact":
            live_before = engine.store.live_fingerprint()
            engine.compact()
            assert engine.store.live_fingerprint() == live_before, (
                "compaction changed the live multiset"
            )
        elif kind == "kill":
            sid_seed, rid_seed = payload
            sid = sid_seed % n_shards
            rid = rid_seed % replication
            shard = engine.shards[sid]
            live = shard.replica_set.live_replicas()
            # Keep at least one live replica per shard so every query
            # stays answerable (the all-dead error path is unit-tested).
            if len(live) < 2 or not shard.replica_set.replicas[rid].alive:
                continue
            reads_before = shard.replica_set.replicas[rid].reads_served
            assert engine.kill_replica(sid, rid)
            frozen[(sid, rid)] = reads_before
            # Failover: the shard contract fields point at a live primary.
            primary = shard.replica_set.primary()
            assert primary is not None and shard.index is primary.index
        else:  # recover: replay the lowest dead replica back to life
            dead = sorted(engine.dead_replicas())
            if not dead:
                continue
            sid, rid = dead[0]
            replica = engine.recover_replica(sid, rid)
            frozen.pop((sid, rid), None)
            rs = engine.shards[sid].replica_set
            rs.ledger.assert_matches(replica.store)
            peer = rs.primary()
            assert (
                replica.store.live_fingerprint()
                == peer.store.live_fingerprint()
            )
            if not rs.dead_rids():
                assert rs.ledger.log_length == 0, (
                    "fully-live shard kept an unfolded replication log"
                )

    # Heal the whole fleet, then every invariant must hold globally.
    engine.recover_all()
    assert engine.dead_replicas() == []

    full = _full_window(2)
    expect = np.sort(scan.query(full))
    assert np.array_equal(expect, ledger.live_ids())
    assert np.array_equal(np.sort(engine.query(full)), expect)

    ledger.assert_matches(engine.store)
    engine.validate_routing()
    engine.flush_updates()
    _assert_replicas_in_lockstep(engine)
    for shard in engine.shards:
        shard.index.validate_structure()
