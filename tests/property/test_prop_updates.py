"""Property tests for the update subsystem (mixed read/write workloads).

Hypothesis drives an initial dataset plus an arbitrary interleaving of
window queries, insert batches, and delete batches.  Two invariants must
survive every interleaving:

* **Oracle agreement** — every update-capable index (QUASII, grid,
  R-Tree) answers each query with exactly the live-row set Scan returns.
* **Ledger agreement** — each index's store ends with precisely the live
  ``(id, box)`` multiset implied by the history of applied updates (the
  store's documented multiset-of-live-rows invariant).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import RTreeIndex, ScanIndex, UniformGridIndex
from repro.core import QuasiiConfig, QuasiiIndex
from repro.datasets import BoxStore
from repro.geometry import Box
from repro.queries import RangeQuery
from repro.updates import UpdateLedger

UNIVERSE_SIDE = 100.0


@st.composite
def dataset_and_ops(draw, ndim=2):
    n = draw(st.integers(2, 60))
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    lo = rng.uniform(0, UNIVERSE_SIDE, size=(n, ndim))
    hi = np.minimum(lo + rng.uniform(0, 10, size=(n, ndim)), UNIVERSE_SIDE)

    n_ops = draw(st.integers(1, 14))
    ops = []
    for _ in range(n_ops):
        kind = draw(st.sampled_from(["query", "query", "insert", "delete"]))
        if kind == "query":
            qlo = rng.uniform(-10, UNIVERSE_SIDE, size=ndim)
            qhi = qlo + rng.uniform(0, 60, size=ndim)
            ops.append(("query", Box(tuple(qlo), tuple(qhi))))
        elif kind == "insert":
            k = draw(st.integers(1, 5))
            blo = rng.uniform(0, UNIVERSE_SIDE, size=(k, ndim))
            bhi = np.minimum(blo + rng.uniform(0, 8, size=(k, ndim)), UNIVERSE_SIDE)
            ops.append(("insert", (blo, bhi)))
        else:
            ops.append(("delete", (draw(st.integers(1, 4)), draw(st.integers(0, 2**31 - 1)))))
    return (lo, hi), ops


def _full_window(ndim: int) -> RangeQuery:
    return RangeQuery(
        Box((-1.0,) * ndim, (UNIVERSE_SIDE + 1.0,) * ndim), seq=10_000
    )


@given(dataset_and_ops())
@settings(max_examples=50, deadline=None)
def test_interleaved_updates_match_scan_and_ledger(case):
    (lo, hi), ops = case
    universe = Box((0.0, 0.0), (UNIVERSE_SIDE, UNIVERSE_SIDE))
    scan = ScanIndex(BoxStore(lo.copy(), hi.copy()))
    quasii = QuasiiIndex(BoxStore(lo.copy(), hi.copy()), QuasiiConfig(2, (8, 4)))
    grid = UniformGridIndex(
        BoxStore(lo.copy(), hi.copy()), universe, 5, merge_threshold=6
    )
    grid.build()
    rtree = RTreeIndex(BoxStore(lo.copy(), hi.copy()), capacity=8)
    rtree.build()
    indexes = [scan, quasii, grid, rtree]
    ledger = UpdateLedger(scan.store)

    seq = 0
    for kind, payload in ops:
        if kind == "query":
            query = RangeQuery(payload, seq=seq)
            seq += 1
            expect = np.sort(scan.query(query))
            for idx in indexes[1:]:
                got = np.sort(idx.query(query))
                assert np.array_equal(got, expect), (
                    f"{idx.name} diverged from Scan on query {query.seq}"
                )
        elif kind == "insert":
            blo, bhi = payload
            assigned = [idx.insert(blo, bhi) for idx in indexes]
            for ids in assigned[1:]:
                assert np.array_equal(ids, assigned[0]), "id streams diverged"
            ledger.record_insert(blo, bhi, assigned[0])
        else:
            count, victim_seed = payload
            live = ledger.live_ids()
            count = min(count, live.size)
            if count == 0:
                continue
            victims = np.random.default_rng(victim_seed).choice(
                live, size=count, replace=False
            )
            for idx in indexes:
                assert idx.delete(victims) == count
            ledger.record_delete(victims)

    # Final full-window query: the complete live set, from every index.
    full = _full_window(2)
    expect = np.sort(scan.query(full))
    assert np.array_equal(expect, ledger.live_ids())
    for idx in indexes[1:]:
        assert np.array_equal(np.sort(idx.query(full)), expect)

    # The stores themselves hold exactly the ledger's live multiset.
    for idx in indexes:
        ledger.assert_matches(idx.store)
    quasii.validate_structure()


@given(dataset_and_ops())
@settings(max_examples=25, deadline=None)
def test_quasii_structure_survives_every_interleaving_step(case):
    (lo, hi), ops = case
    store = BoxStore(lo.copy(), hi.copy())
    ledger = UpdateLedger(store)
    idx = QuasiiIndex(store, QuasiiConfig(2, (6, 3)), max_runs=2)
    seq = 0
    for kind, payload in ops:
        if kind == "query":
            idx.query(RangeQuery(payload, seq=seq))
            seq += 1
        elif kind == "insert":
            blo, bhi = payload
            ledger.record_insert(blo, bhi, idx.insert(blo, bhi))
        else:
            count, victim_seed = payload
            live = ledger.live_ids()
            count = min(count, live.size)
            if count == 0:
                continue
            victims = np.random.default_rng(victim_seed).choice(
                live, size=count, replace=False
            )
            idx.delete(victims)
            ledger.record_delete(victims)
        idx.validate_structure()
    # Drain any still-buffered rows, then check the ledger one last time.
    idx.query(_full_window(2))
    idx.validate_structure()
    ledger.assert_matches(store)
