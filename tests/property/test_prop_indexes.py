"""Property tests: randomized datasets + query sequences, all indexes agree.

Hypothesis drives dataset shape (object count, extent distribution,
duplicates) and a sequence of query windows; every index must match the
scan and QUASII must keep its structural invariants throughout.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    MosaicIndex,
    RTreeIndex,
    SFCrackerIndex,
    ScanIndex,
    UniformGridIndex,
)
from repro.core import QuasiiConfig, QuasiiIndex
from repro.datasets import BoxStore
from repro.geometry import Box
from repro.queries import RangeQuery

UNIVERSE_SIDE = 100.0


@st.composite
def dataset_and_queries(draw, ndim=2):
    n = draw(st.integers(2, 120))
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    # Mix in duplicates and zero-extent objects.
    dup_frac = draw(st.sampled_from([0.0, 0.3]))
    point_frac = draw(st.sampled_from([0.0, 0.3]))
    lo = rng.uniform(0, UNIVERSE_SIDE, size=(n, ndim))
    extent = rng.uniform(0, 10, size=(n, ndim))
    points = rng.random(n) < point_frac
    extent[points] = 0.0
    dups = rng.random(n) < dup_frac
    if dups.any():
        lo[dups] = lo[0]
    hi = np.minimum(lo + extent, UNIVERSE_SIDE)
    store_data = (lo, hi)
    n_queries = draw(st.integers(1, 8))
    queries = []
    for i in range(n_queries):
        qlo = rng.uniform(-10, UNIVERSE_SIDE, size=ndim)
        qhi = qlo + rng.uniform(0, 60, size=ndim)
        queries.append(RangeQuery(Box(tuple(qlo), tuple(qhi)), seq=i))
    return store_data, queries


@given(dataset_and_queries())
@settings(max_examples=60, deadline=None)
def test_quasii_matches_scan_with_invariants(case):
    (lo, hi), queries = case
    store = BoxStore(lo.copy(), hi.copy())
    scan = ScanIndex(BoxStore(lo.copy(), hi.copy()))
    idx = QuasiiIndex(store, QuasiiConfig(2, (8, 4)))
    fp = store.fingerprint()
    for q in queries:
        got = np.sort(idx.query(q))
        expect = np.sort(scan.query(q))
        assert np.array_equal(got, expect)
        idx.validate_structure()
    assert store.fingerprint() == fp


@given(dataset_and_queries())
@settings(max_examples=30, deadline=None)
def test_static_indexes_match_scan(case):
    (lo, hi), queries = case
    universe = Box((0.0, 0.0), (UNIVERSE_SIDE, UNIVERSE_SIDE))
    store = BoxStore(lo, hi)
    scan = ScanIndex(store)
    rtree = RTreeIndex(store, capacity=8)
    rtree.build()
    grid = UniformGridIndex(store, universe, 7)
    grid.build()
    for q in queries:
        expect = np.sort(scan.query(q))
        assert np.array_equal(np.sort(rtree.query(q)), expect)
        assert np.array_equal(np.sort(grid.query(q)), expect)


@given(dataset_and_queries())
@settings(max_examples=30, deadline=None)
def test_incremental_baselines_match_scan(case):
    (lo, hi), queries = case
    universe = Box((0.0, 0.0), (UNIVERSE_SIDE, UNIVERSE_SIDE))
    store = BoxStore(lo, hi)
    scan = ScanIndex(store)
    cracker = SFCrackerIndex(BoxStore(lo.copy(), hi.copy()), universe)
    mosaic = MosaicIndex(BoxStore(lo.copy(), hi.copy()), universe, capacity=8)
    for q in queries:
        expect = np.sort(scan.query(q))
        assert np.array_equal(np.sort(cracker.query(q)), expect)
        assert np.array_equal(np.sort(mosaic.query(q)), expect)
    cracker.validate_pieces()


@given(st.integers(0, 2**31 - 1), st.integers(2, 60))
@settings(max_examples=40, deadline=None)
def test_quasii_final_leaves_respect_tau_everywhere(seed, n):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, UNIVERSE_SIDE, size=(n, 2))
    hi = lo + rng.uniform(0, 5, size=(n, 2))
    store = BoxStore(lo, hi)
    idx = QuasiiIndex(store, QuasiiConfig(2, (6, 3)))
    for i in range(6):
        qlo = rng.uniform(0, UNIVERSE_SIDE, size=2)
        qhi = qlo + rng.uniform(0, 40, size=2)
        idx.query(RangeQuery(Box(tuple(qlo), tuple(np.minimum(qhi, UNIVERSE_SIDE))), seq=i))
    idx.validate_structure()
