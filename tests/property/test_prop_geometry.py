"""Property tests for Box algebra and vectorized predicates."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Box, boxes_intersect_window

COORD = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def boxes(draw, ndim=None):
    d = ndim if ndim is not None else draw(st.integers(1, 4))
    lo = [draw(COORD) for _ in range(d)]
    hi = [l + abs(draw(COORD)) % 1e5 for l in lo]
    return Box(tuple(lo), tuple(hi))


@given(boxes())
def test_intersects_is_reflexive(b):
    assert b.intersects(b)


@given(st.integers(1, 4).flatmap(lambda d: st.tuples(boxes(ndim=d), boxes(ndim=d))))
def test_intersects_is_symmetric(pair):
    a, b = pair
    assert a.intersects(b) == b.intersects(a)


@given(st.integers(1, 4).flatmap(lambda d: st.tuples(boxes(ndim=d), boxes(ndim=d))))
def test_union_contains_both(pair):
    a, b = pair
    u = a.union(b)
    assert u.contains_box(a) and u.contains_box(b)


@given(st.integers(1, 4).flatmap(lambda d: st.tuples(boxes(ndim=d), boxes(ndim=d))))
def test_intersection_consistent_with_predicate(pair):
    a, b = pair
    inter = a.intersection(b)
    assert (inter is not None) == a.intersects(b)
    if inter is not None:
        assert a.contains_box(inter) and b.contains_box(inter)


@given(st.integers(1, 4).flatmap(lambda d: st.tuples(boxes(ndim=d), boxes(ndim=d))))
def test_intersection_volume_bounded(pair):
    a, b = pair
    inter = a.intersection(b)
    if inter is not None:
        assert inter.volume <= min(a.volume, b.volume) + 1e-6


@given(boxes(), st.lists(st.floats(0, 100), min_size=1, max_size=4))
def test_expanded_contains_original(b, margins):
    margins = (margins * b.ndim)[: b.ndim]
    grown = b.expanded(margins)
    assert grown.contains_box(b)


@given(st.integers(2, 50), st.integers(0, 2**31 - 1))
@settings(max_examples=50)
def test_vectorized_matches_scalar(n, seed):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(-100, 100, size=(n, 3))
    hi = lo + rng.uniform(0, 50, size=(n, 3))
    qlo = rng.uniform(-100, 100, size=3)
    qhi = qlo + rng.uniform(0, 100, size=3)
    mask = boxes_intersect_window(lo, hi, qlo, qhi)
    window = Box(tuple(qlo), tuple(qhi))
    for i in range(n):
        assert mask[i] == Box(tuple(lo[i]), tuple(hi[i])).intersects(window)
