"""Property tests for the Z-order substrate (DESIGN.md invariant #5)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.sfc import morton_decode, morton_encode, zrange_decompose


@given(
    st.integers(1, 3),
    st.integers(1, 8),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=80)
def test_encode_decode_round_trip(ndim, bits, seed):
    rng = np.random.default_rng(seed)
    cells = rng.integers(0, 1 << bits, size=(50, ndim))
    assert np.array_equal(morton_decode(morton_encode(cells, bits), ndim, bits), cells)


@given(st.integers(1, 6), st.integers(0, 2**31 - 1))
@settings(max_examples=40)
def test_encode_is_bijective_2d(bits, seed):
    side = 1 << bits
    cells = np.array([[x, y] for x in range(min(side, 8)) for y in range(min(side, 8))])
    codes = morton_encode(cells, bits)
    assert len(set(codes.tolist())) == len(cells)


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_decomposition_tiles_window_exactly(data):
    ndim = data.draw(st.integers(1, 3))
    bits = data.draw(st.integers(2, 5))
    side = 1 << bits
    lo = np.array([data.draw(st.integers(0, side - 1)) for _ in range(ndim)])
    hi = np.array([data.draw(st.integers(int(l), side - 1)) for l in lo])
    intervals = zrange_decompose(lo, hi, ndim, bits, min_size=1)

    # Disjoint and ordered.
    for (a_lo, a_hi), (b_lo, b_hi) in zip(intervals, intervals[1:]):
        assert a_lo <= a_hi and a_hi < b_lo

    # Exact tiling: decoded cells == the window's cell set.
    cells = set()
    for c_lo, c_hi in intervals:
        decoded = morton_decode(
            np.arange(c_lo, c_hi + 1, dtype=np.uint64), ndim, bits
        )
        cells.update(map(tuple, decoded.tolist()))
    expected = set()
    ranges = [range(int(lo[k]), int(hi[k]) + 1) for k in range(ndim)]

    def rec(prefix, k):
        if k == ndim:
            expected.add(tuple(prefix))
            return
        for v in ranges[k]:
            rec(prefix + [v], k + 1)

    rec([], 0)
    assert cells == expected


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_coarsened_decomposition_is_superset_with_fewer_intervals(data):
    ndim = data.draw(st.integers(1, 2))
    bits = data.draw(st.integers(3, 6))
    side = 1 << bits
    lo = np.array([data.draw(st.integers(0, side - 2)) for _ in range(ndim)])
    hi = np.array([data.draw(st.integers(int(l), side - 1)) for l in lo])
    exact = zrange_decompose(lo, hi, ndim, bits, min_size=1)
    coarse = zrange_decompose(lo, hi, ndim, bits, min_size=4)
    assert len(coarse) <= len(exact)

    def covered(intervals):
        total = set()
        for a, b in intervals:
            total.update(range(a, b + 1))
        return total

    assert covered(exact) <= covered(coarse)
