"""Property tests: the three dispatch backends are observationally equal.

Hypothesis drives an initial dataset plus an arbitrary interleaving of
first-class queries (across predicates and result modes), insert
batches, delete batches, and compactions.  The same interleaving runs
against one engine per executor backend — ``sequential``, ``threads``,
and ``processes`` — with the executors kept alive across operations, so
the process pool must survive every epoch bump (insert/delete/compact
between batches) by republishing its shared-memory segments.

Invariants, after every single operation:

* **Oracle agreement** — each backend's payload matches the Scan
  oracle: equal counts, equal id sets, and (for ``boxes``/``top_k``)
  equal corner matrices, no matter which backend served it.
* **Id-stream agreement** — inserts assign identical identifiers on
  every engine, so the ledger stays a single source of truth.
* **Ledger closure** — a final full-window query returns exactly the
  ledger's live id set on every backend.
"""

from __future__ import annotations

from contextlib import ExitStack

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import ScanIndex
from repro.core import QuasiiConfig, QuasiiIndex
from repro.datasets import BoxStore
from repro.geometry import Box
from repro.queries import Query
from repro.sharding import QueryExecutor, ShardedIndex
from repro.updates import UpdateLedger

UNIVERSE_SIDE = 100.0

BACKENDS = ("sequential", "threads", "processes")

#: The query shapes the interleavings draw from: (predicate, mode, k).
QUERY_SHAPES = (
    ("intersects", "ids", None),
    ("intersects", "count", None),
    ("intersects", "top_k", 2),
    ("within", "ids", None),
    ("contains", "boxes", None),
)


@st.composite
def dataset_and_ops(draw, ndim=2):
    n = draw(st.integers(2, 50))
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    lo = rng.uniform(0, UNIVERSE_SIDE, size=(n, ndim))
    hi = np.minimum(lo + rng.uniform(0, 10, size=(n, ndim)), UNIVERSE_SIDE)

    n_ops = draw(st.integers(1, 10))
    ops = []
    for _ in range(n_ops):
        kind = draw(
            st.sampled_from(["query", "query", "insert", "delete", "compact"])
        )
        if kind == "query":
            predicate, mode, k = draw(st.sampled_from(QUERY_SHAPES))
            qlo = rng.uniform(-10, UNIVERSE_SIDE, size=ndim)
            qhi = qlo + rng.uniform(0, 60, size=ndim)
            ops.append(("query", (Box(tuple(qlo), tuple(qhi)), predicate, mode, k)))
        elif kind == "insert":
            k = draw(st.integers(1, 5))
            blo = rng.uniform(0, UNIVERSE_SIDE, size=(k, ndim))
            bhi = np.minimum(blo + rng.uniform(0, 8, size=(k, ndim)), UNIVERSE_SIDE)
            ops.append(("insert", (blo, bhi)))
        elif kind == "delete":
            ops.append(
                ("delete", (draw(st.integers(1, 6)), draw(st.integers(0, 2**31 - 1))))
            )
        else:
            ops.append(("compact", None))
    return (lo, hi), ops


def _check_payload(result, want, label):
    assert result.count == want.count, f"{label}: count diverged"
    if want.query.mode == "count":
        assert result.ids is None
        return
    order_got = np.argsort(result.ids)
    order_want = np.argsort(want.ids)
    assert np.array_equal(result.ids[order_got], want.ids[order_want]), (
        f"{label}: id sets diverged"
    )
    if want.query.mode in ("boxes", "top_k"):
        for side in (0, 1):
            assert np.array_equal(
                result.boxes[side][order_got], want.boxes[side][order_want]
            ), f"{label}: box payload diverged"


@given(dataset_and_ops())
@settings(max_examples=10, deadline=None)
def test_backends_agree_with_scan_under_interleavings(case):
    (lo, hi), ops = case
    scan = ScanIndex(BoxStore(lo.copy(), hi.copy()))
    engines = {
        backend: ShardedIndex(
            BoxStore(lo.copy(), hi.copy()),
            n_shards=3,
            partitioner="str",
            index_factory=lambda s: QuasiiIndex(
                s, QuasiiConfig(2, (8, 4)), max_runs=2
            ),
        )
        for backend in BACKENDS
    }
    ledger = UpdateLedger(scan.store)

    with ExitStack() as stack:
        executors = {
            backend: stack.enter_context(
                QueryExecutor(
                    engine,
                    max_workers=1 if backend == "sequential" else 2,
                    backend=backend,
                )
            )
            for backend, engine in engines.items()
        }

        seq = 0
        for kind, payload in ops:
            if kind == "query":
                window, predicate, mode, k = payload
                query = Query(window, predicate=predicate, mode=mode, k=k, seq=seq)
                seq += 1
                want = scan.execute(query)
                for backend, ex in executors.items():
                    batch = ex.run([query])
                    _check_payload(
                        batch.query_results[0],
                        want,
                        f"{backend} on query {query.seq}",
                    )
            elif kind == "insert":
                blo, bhi = payload
                expect_ids = scan.insert(blo, bhi)
                for backend, engine in engines.items():
                    assert np.array_equal(engine.insert(blo, bhi), expect_ids), (
                        f"{backend}: id stream diverged"
                    )
                ledger.record_insert(blo, bhi, expect_ids)
            elif kind == "delete":
                count, victim_seed = payload
                live = ledger.live_ids()
                count = min(count, live.size)
                if count == 0:
                    continue
                victims = np.random.default_rng(victim_seed).choice(
                    live, size=count, replace=False
                )
                assert scan.delete(victims) == count
                for engine in engines.values():
                    assert engine.delete(victims) == count
                ledger.record_delete(victims)
            else:  # compact
                scan.compact()
                for backend, engine in engines.items():
                    fp = engine.store.live_fingerprint()
                    engine.compact()
                    assert engine.store.live_fingerprint() == fp, (
                        f"{backend}: compaction changed the live multiset"
                    )

        full = Query(
            Box((-1.0, -1.0), (UNIVERSE_SIDE + 1.0,) * 2), seq=10_000
        )
        want = scan.execute(full)
        assert np.array_equal(np.sort(want.ids), ledger.live_ids())
        for backend, ex in executors.items():
            batch = ex.run([full])
            _check_payload(
                batch.query_results[0], want, f"{backend} on the full window"
            )
    for engine in engines.values():
        ledger.assert_matches(engine.store)
