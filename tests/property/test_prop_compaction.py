"""Property tests for physical compaction under arbitrary interleavings.

Hypothesis drives an initial dataset plus an arbitrary interleaving of
window queries, insert batches, delete batches, and **compactions**.
Invariants that must survive every interleaving:

* **Fingerprint preservation** — ``live_fingerprint()`` is identical
  immediately before and after every compaction (the live ``(id, box)``
  multiset is compaction-invariant), and every store holds exactly the
  ledger's live multiset at the end.
* **Oracle agreement** — every query returns exactly the live-row set
  the Scan oracle returns, no matter how many compactions happened in
  between; a final full-window query returns the complete live id set.
* **Physical reclamation** — after a compaction the store carries no
  tombstones (``n == live_count``), and QUASII's defragmented slice
  forest passes ``validate_structure()``.

The same interleavings run against the sharded engine for K ∈ {1, 2, 7},
where compaction additionally re-tightens shard pruning MBBs and must
keep the id→shard routing map consistent.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import RTreeIndex, ScanIndex, UniformGridIndex
from repro.core import QuasiiConfig, QuasiiIndex
from repro.datasets import BoxStore
from repro.geometry import Box
from repro.queries import RangeQuery
from repro.sharding import ShardedIndex
from repro.updates import UpdateLedger

UNIVERSE_SIDE = 100.0

SHARD_COUNTS = (1, 2, 7)


@st.composite
def dataset_and_ops(draw, ndim=2):
    n = draw(st.integers(2, 60))
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    lo = rng.uniform(0, UNIVERSE_SIDE, size=(n, ndim))
    hi = np.minimum(lo + rng.uniform(0, 10, size=(n, ndim)), UNIVERSE_SIDE)

    n_ops = draw(st.integers(1, 12))
    ops = []
    for _ in range(n_ops):
        kind = draw(
            st.sampled_from(["query", "query", "insert", "delete", "compact"])
        )
        if kind == "query":
            qlo = rng.uniform(-10, UNIVERSE_SIDE, size=ndim)
            qhi = qlo + rng.uniform(0, 60, size=ndim)
            ops.append(("query", Box(tuple(qlo), tuple(qhi))))
        elif kind == "insert":
            k = draw(st.integers(1, 5))
            blo = rng.uniform(0, UNIVERSE_SIDE, size=(k, ndim))
            bhi = np.minimum(blo + rng.uniform(0, 8, size=(k, ndim)), UNIVERSE_SIDE)
            ops.append(("insert", (blo, bhi)))
        elif kind == "delete":
            ops.append(
                ("delete", (draw(st.integers(1, 6)), draw(st.integers(0, 2**31 - 1))))
            )
        else:
            ops.append(("compact", None))
    return (lo, hi), ops


def _full_window(ndim: int) -> RangeQuery:
    return RangeQuery(
        Box((-1.0,) * ndim, (UNIVERSE_SIDE + 1.0,) * ndim), seq=10_000
    )


@given(dataset_and_ops())
@settings(max_examples=40, deadline=None)
def test_compaction_preserves_fingerprint_and_scan_agreement(case):
    (lo, hi), ops = case
    universe = Box((0.0, 0.0), (UNIVERSE_SIDE, UNIVERSE_SIDE))
    scan = ScanIndex(BoxStore(lo.copy(), hi.copy()))
    quasii = QuasiiIndex(BoxStore(lo.copy(), hi.copy()), QuasiiConfig(2, (8, 4)))
    grid = UniformGridIndex(
        BoxStore(lo.copy(), hi.copy()), universe, 5, merge_threshold=6
    )
    grid.build()
    rtree = RTreeIndex(BoxStore(lo.copy(), hi.copy()), capacity=8)
    rtree.build()
    indexes = [scan, quasii, grid, rtree]
    ledger = UpdateLedger(scan.store)

    seq = 0
    for kind, payload in ops:
        if kind == "query":
            query = RangeQuery(payload, seq=seq)
            seq += 1
            expect = np.sort(scan.query(query))
            for idx in indexes[1:]:
                got = np.sort(idx.query(query))
                assert np.array_equal(got, expect), (
                    f"{idx.name} diverged from Scan on query {query.seq}"
                )
        elif kind == "insert":
            blo, bhi = payload
            assigned = [idx.insert(blo, bhi) for idx in indexes]
            for ids in assigned[1:]:
                assert np.array_equal(ids, assigned[0]), "id streams diverged"
            ledger.record_insert(blo, bhi, assigned[0])
        elif kind == "delete":
            count, victim_seed = payload
            live = ledger.live_ids()
            count = min(count, live.size)
            if count == 0:
                continue
            victims = np.random.default_rng(victim_seed).choice(
                live, size=count, replace=False
            )
            for idx in indexes:
                assert idx.delete(victims) == count
            ledger.record_delete(victims)
        else:  # compact
            for idx in indexes:
                fp = idx.store.live_fingerprint()
                reclaimed = idx.compact()
                assert reclaimed >= 0
                assert idx.store.live_fingerprint() == fp, (
                    f"{idx.name} compaction changed the live multiset"
                )
                assert idx.store.n == idx.store.live_count, (
                    f"{idx.name} left tombstones after compaction"
                )
            quasii.validate_structure()

    full = _full_window(2)
    expect = np.sort(scan.query(full))
    assert np.array_equal(expect, ledger.live_ids())
    for idx in indexes[1:]:
        assert np.array_equal(np.sort(idx.query(full)), expect)
    for idx in indexes:
        ledger.assert_matches(idx.store)
    quasii.validate_structure()


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
@given(case=dataset_and_ops())
@settings(max_examples=15, deadline=None)
def test_sharded_compaction_under_interleavings(n_shards, case):
    (lo, hi), ops = case
    scan = ScanIndex(BoxStore(lo.copy(), hi.copy()))
    engine = ShardedIndex(
        BoxStore(lo.copy(), hi.copy()),
        n_shards=n_shards,
        partitioner="str",
        index_factory=lambda s: QuasiiIndex(
            s, QuasiiConfig(2, (8, 4)), max_runs=2
        ),
    )
    engine.build()
    ledger = UpdateLedger(scan.store)

    seq = 0
    for kind, payload in ops:
        if kind == "query":
            query = RangeQuery(payload, seq=seq)
            seq += 1
            expect = np.sort(scan.query(query))
            assert np.array_equal(np.sort(engine.query(query)), expect)
        elif kind == "insert":
            blo, bhi = payload
            expect_ids = scan.insert(blo, bhi)
            got_ids = engine.insert(blo, bhi)
            assert np.array_equal(got_ids, expect_ids)
            ledger.record_insert(blo, bhi, expect_ids)
        elif kind == "delete":
            count, victim_seed = payload
            live = ledger.live_ids()
            count = min(count, live.size)
            if count == 0:
                continue
            victims = np.random.default_rng(victim_seed).choice(
                live, size=count, replace=False
            )
            assert scan.delete(victims) == count
            assert engine.delete(victims) == count
            ledger.record_delete(victims)
        else:  # compact: alternate the policy verb with the full verb
            scan.compact()
            fp = engine.store.live_fingerprint()
            if seq % 2:
                engine.maybe_compact(0.0)
            else:
                engine.compact()
            assert engine.store.live_fingerprint() == fp
            assert engine.store.n == engine.store.live_count
            engine.validate_routing()

    full = _full_window(2)
    expect = np.sort(scan.query(full))
    assert np.array_equal(expect, ledger.live_ids())
    assert np.array_equal(np.sort(engine.query(full)), expect)
    ledger.assert_matches(engine.store)
    engine.validate_routing()
    for shard in engine.shards:
        shard.index.validate_structure()
