"""Documentation consistency: links resolve, bench verbs documented.

Thin pytest wrapper around :mod:`tools.check_docs` so the tier-1 run
catches doc drift the same way CI does.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "tools"))

import check_docs  # noqa: E402


def test_internal_markdown_links_resolve():
    assert check_docs.check_links() == []


def test_every_bench_verb_is_documented_and_vice_versa():
    assert check_docs.check_bench_docs() == []


def test_cli_help_lists_every_experiment():
    assert check_docs.check_cli_help() == []


def test_observability_vocabulary_is_documented_both_ways():
    assert check_docs.check_observability_docs() == []


def test_lint_rule_table_matches_the_registry_both_ways():
    assert check_docs.check_analysis_docs() == []
