"""Unit tests for BoxStore — the shared data array."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import BoxStore
from repro.errors import DatasetError, GeometryError
from repro.geometry import Box


@pytest.fixture
def store():
    lo = np.array([[0.0, 0.0], [2.0, 2.0], [4.0, 1.0], [6.0, 6.0]])
    hi = np.array([[1.0, 1.0], [3.0, 3.0], [5.0, 2.0], [7.0, 7.0]])
    return BoxStore(lo, hi)


class TestConstruction:
    def test_default_ids(self, store):
        assert np.array_equal(store.ids, np.arange(4))

    def test_explicit_ids(self):
        lo = np.zeros((2, 2))
        hi = np.ones((2, 2))
        s = BoxStore(lo, hi, np.array([7, 9]))
        assert s.id_at(1) == 9

    def test_rejects_inverted(self):
        with pytest.raises(GeometryError, match="row 1"):
            BoxStore(np.array([[0.0], [5.0]]), np.array([[1.0], [4.0]]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(DatasetError):
            BoxStore(np.zeros((2, 2)), np.zeros((3, 2)))

    def test_rejects_bad_ids(self):
        with pytest.raises(DatasetError):
            BoxStore(np.zeros((2, 2)), np.ones((2, 2)), np.array([1]))

    def test_rejects_1d_input(self):
        with pytest.raises(DatasetError):
            BoxStore(np.zeros(3), np.ones(3))

    def test_from_boxes(self):
        s = BoxStore.from_boxes([Box((0.0,), (1.0,)), Box((2.0,), (3.0,))])
        assert s.n == 2 and s.ndim == 1
        assert s.box_at(1) == Box((2.0,), (3.0,))

    def test_from_boxes_empty(self):
        with pytest.raises(DatasetError):
            BoxStore.from_boxes([])

    def test_from_boxes_mixed_dims(self):
        with pytest.raises(DatasetError):
            BoxStore.from_boxes([Box((0.0,), (1.0,)), Box.unit(2)])

    def test_aliased_corners_are_decoupled(self):
        # BoxStore(pts, pts) must not leave lo and hi sharing one buffer:
        # apply_order would otherwise permute the shared array twice.
        pts = np.array([[3.0], [1.0], [2.0]])
        store = BoxStore(pts, pts)
        store.apply_order(np.array([1, 2, 0]))
        assert store.lo[:, 0].tolist() == [1.0, 2.0, 3.0]
        assert store.hi[:, 0].tolist() == [1.0, 2.0, 3.0]
        assert not np.shares_memory(store.lo, store.hi)

    def test_copy_is_independent(self, store):
        dup = store.copy()
        dup.apply_order(np.array([3, 2, 1, 0]))
        assert store.id_at(0) == 0
        assert dup.id_at(0) == 3


class TestMeasures:
    def test_len_and_shape(self, store):
        assert len(store) == 4
        assert store.n == 4
        assert store.ndim == 2

    def test_bounds(self, store):
        assert store.bounds() == Box((0.0, 0.0), (7.0, 7.0))

    def test_max_extent(self, store):
        assert np.allclose(store.max_extent, [1.0, 1.0])

    def test_max_extent_cached_and_stable_under_permutation(self, store):
        before = store.max_extent.copy()
        store.apply_order(np.array([2, 0, 3, 1]))
        assert np.array_equal(store.max_extent, before)

    def test_mbr_of_range(self, store):
        assert store.mbr_of_range(1, 3) == Box((2.0, 1.0), (5.0, 3.0))

    def test_mbr_of_empty_range(self, store):
        with pytest.raises(DatasetError):
            store.mbr_of_range(2, 2)


class TestQueries:
    def test_scan_range_full(self, store):
        hits = store.scan_range(0, 4, np.array([0.5, 0.5]), np.array([4.5, 2.5]))
        assert sorted(hits.tolist()) == [0, 1, 2]

    def test_scan_range_partial_rows(self, store):
        hits = store.scan_range(2, 4, np.array([0.0, 0.0]), np.array([10.0, 10.0]))
        assert sorted(hits.tolist()) == [2, 3]

    def test_count_range(self, store):
        n = store.count_range(0, 4, np.array([0.0, 0.0]), np.array([3.0, 3.0]))
        assert n == 2

    def test_scan_invalid_range(self, store):
        with pytest.raises(DatasetError):
            store.scan_range(3, 99, np.zeros(2), np.ones(2))


class TestReordering:
    def test_apply_order_range_moves_ids_and_coords(self, store):
        store.apply_order_range(1, 3, np.array([1, 0]))
        assert store.ids.tolist() == [0, 2, 1, 3]
        assert store.box_at(1) == Box((4.0, 1.0), (5.0, 2.0))

    def test_apply_order_wrong_length(self, store):
        with pytest.raises(DatasetError):
            store.apply_order_range(0, 3, np.array([0, 1]))

    def test_fingerprint_permutation_invariant(self, store):
        fp = store.fingerprint()
        store.apply_order(np.array([3, 1, 0, 2]))
        assert store.fingerprint() == fp

    def test_fingerprint_detects_mutation(self, store):
        fp = store.fingerprint()
        # Simulate corruption: change one coordinate directly.
        store.lo[0, 0] = -123.0
        assert store.fingerprint() != fp
