"""Unit tests for the Box value type."""

from __future__ import annotations

import pytest

from repro.errors import GeometryError
from repro.geometry import Box


class TestConstruction:
    def test_basic_fields(self):
        b = Box((0.0, 1.0), (2.0, 3.0))
        assert b.lo == (0.0, 1.0)
        assert b.hi == (2.0, 3.0)
        assert b.ndim == 2

    def test_coordinates_coerced_to_float(self):
        b = Box((0, 1), (2, 3))
        assert isinstance(b.lo[0], float)
        assert b.hi == (2.0, 3.0)

    def test_rejects_inverted_corners(self):
        with pytest.raises(GeometryError, match="dimension 1"):
            Box((0.0, 5.0), (1.0, 4.0))

    def test_rejects_dim_mismatch(self):
        with pytest.raises(GeometryError, match="mismatch"):
            Box((0.0,), (1.0, 2.0))

    def test_rejects_zero_dims(self):
        with pytest.raises(GeometryError, match="at least one"):
            Box((), ())

    def test_rejects_nan(self):
        with pytest.raises(GeometryError, match="NaN"):
            Box((float("nan"),), (1.0,))

    def test_degenerate_box_allowed(self):
        b = Box((1.0, 2.0), (1.0, 2.0))
        assert b.is_degenerate
        assert b.volume == 0.0

    def test_from_center(self):
        b = Box.from_center((5.0, 5.0), (2.0, 4.0))
        assert b.lo == (4.0, 3.0)
        assert b.hi == (6.0, 7.0)

    def test_from_center_length_mismatch(self):
        with pytest.raises(GeometryError):
            Box.from_center((5.0,), (2.0, 4.0))

    def test_cube(self):
        b = Box.cube((1.0, 1.0, 1.0), 2.0)
        assert b.hi == (3.0, 3.0, 3.0)
        assert b.volume == 8.0

    def test_cube_negative_side(self):
        with pytest.raises(GeometryError):
            Box.cube((0.0,), -1.0)

    def test_unit(self):
        b = Box.unit(3)
        assert b.lo == (0.0, 0.0, 0.0)
        assert b.volume == 1.0

    def test_immutable(self):
        b = Box.unit(2)
        with pytest.raises(AttributeError):
            b.lo = (1.0, 1.0)


class TestMeasures:
    def test_sides_and_volume(self):
        b = Box((0.0, 0.0, 0.0), (1.0, 2.0, 3.0))
        assert b.sides == (1.0, 2.0, 3.0)
        assert b.volume == 6.0

    def test_center(self):
        assert Box((0.0, 2.0), (4.0, 4.0)).center == (2.0, 3.0)

    def test_iter_yields_corners(self):
        lo, hi = Box((0.0,), (1.0,))
        assert lo == (0.0,) and hi == (1.0,)


class TestPredicates:
    def test_disjoint(self):
        a = Box((0.0, 0.0), (1.0, 1.0))
        b = Box((2.0, 2.0), (3.0, 3.0))
        assert not a.intersects(b)
        assert not b.intersects(a)

    def test_overlapping(self):
        a = Box((0.0, 0.0), (2.0, 2.0))
        b = Box((1.0, 1.0), (3.0, 3.0))
        assert a.intersects(b) and b.intersects(a)

    def test_touching_faces_intersect(self):
        a = Box((0.0, 0.0), (1.0, 1.0))
        b = Box((1.0, 0.0), (2.0, 1.0))
        assert a.intersects(b), "closed boxes sharing a face must intersect"

    def test_touching_corner_intersects(self):
        a = Box((0.0, 0.0), (1.0, 1.0))
        b = Box((1.0, 1.0), (2.0, 2.0))
        assert a.intersects(b)

    def test_containment_implies_intersection(self):
        outer = Box((0.0, 0.0), (10.0, 10.0))
        inner = Box((2.0, 2.0), (3.0, 3.0))
        assert outer.contains_box(inner)
        assert outer.intersects(inner)
        assert not inner.contains_box(outer)

    def test_contains_point_boundary(self):
        b = Box((0.0, 0.0), (1.0, 1.0))
        assert b.contains_point((0.0, 1.0))
        assert not b.contains_point((1.0, 1.5))

    def test_contains_point_dim_mismatch(self):
        with pytest.raises(GeometryError):
            Box.unit(2).contains_point((0.5,))

    def test_intersects_dim_mismatch(self):
        with pytest.raises(GeometryError):
            Box.unit(2).intersects(Box.unit(3))


class TestCombinators:
    def test_union(self):
        a = Box((0.0, 0.0), (1.0, 1.0))
        b = Box((2.0, -1.0), (3.0, 0.5))
        u = a.union(b)
        assert u.lo == (0.0, -1.0)
        assert u.hi == (3.0, 1.0)

    def test_intersection_overlap(self):
        a = Box((0.0, 0.0), (2.0, 2.0))
        b = Box((1.0, 1.0), (3.0, 3.0))
        inter = a.intersection(b)
        assert inter == Box((1.0, 1.0), (2.0, 2.0))

    def test_intersection_disjoint_is_none(self):
        a = Box((0.0,), (1.0,))
        b = Box((2.0,), (3.0,))
        assert a.intersection(b) is None

    def test_intersection_touching_is_degenerate(self):
        a = Box((0.0,), (1.0,))
        b = Box((1.0,), (2.0,))
        inter = a.intersection(b)
        assert inter is not None and inter.is_degenerate

    def test_expanded(self):
        b = Box((1.0, 1.0), (2.0, 2.0)).expanded((0.5, 1.0))
        assert b.lo == (0.5, 0.0)
        assert b.hi == (2.5, 3.0)

    def test_expanded_rejects_negative(self):
        with pytest.raises(GeometryError):
            Box.unit(1).expanded((-0.1,))

    def test_translated(self):
        b = Box((0.0, 0.0), (1.0, 1.0)).translated((5.0, -1.0))
        assert b.lo == (5.0, -1.0)
        assert b.hi == (6.0, 0.0)

    def test_clipped_to(self):
        window = Box((0.0, 0.0), (10.0, 10.0))
        b = Box((-5.0, 5.0), (5.0, 15.0))
        clipped = b.clipped_to(window)
        assert clipped == Box((0.0, 5.0), (5.0, 10.0))

    def test_union_volume_superadditive(self):
        a = Box((0.0, 0.0), (1.0, 1.0))
        b = Box((5.0, 5.0), (6.0, 6.0))
        assert a.union(b).volume >= a.volume + b.volume
