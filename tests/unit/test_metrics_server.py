"""MetricsServer: real-socket smoke tests over an ephemeral port."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import ENDPOINTS, EventLog, MetricsServer, Telemetry


def _get(url: str) -> tuple[int, str, str]:
    """(status, content-type, body) of one GET."""
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.headers["Content-Type"], resp.read().decode()


@pytest.fixture()
def live():
    """A running server over a telemetry handle with some state."""
    telemetry = Telemetry()
    telemetry.registry.counter("ops").inc(3)
    telemetry.registry.gauge("shards.balance").set(1.5)
    telemetry.registry.histogram("query.seconds").record(0.002)
    with telemetry.tracer.span("maintenance.compact") as span:
        span.set(rows_reclaimed=10)
    events = EventLog()
    events.emit("slow_query", seq=1, seconds=0.2)
    server = MetricsServer(telemetry, port=0, events=events).start()
    yield server
    server.stop()


class TestMetricsServer:
    def test_metrics_endpoint_serves_prometheus_text(self, live):
        status, ctype, body = _get(live.url + "/metrics")
        assert status == 200
        assert ctype.startswith("text/plain")
        assert "repro_ops_total 3" in body
        assert "repro_shards_balance 1.5" in body
        assert "repro_query_seconds_count 1" in body
        assert 'le="+Inf"' in body

    def test_scrape_sees_live_updates(self, live):
        _, _, before = _get(live.url + "/metrics")
        assert "repro_ops_total 3" in before
        live._telemetry.registry.counter("ops").inc(4)
        _, _, after = _get(live.url + "/metrics")
        assert "repro_ops_total 7" in after

    def test_snapshot_endpoint_serves_json(self, live):
        status, ctype, body = _get(live.url + "/snapshot.json")
        assert status == 200 and ctype == "application/json"
        doc = json.loads(body)
        assert doc["counters"]["ops"] == 3
        assert doc["histograms"]["query.seconds"]["count"] == 1

    def test_spans_endpoint_exposes_dropped(self, live):
        _, _, body = _get(live.url + "/spans")
        doc = json.loads(body)
        assert doc["dropped"] == 0
        assert doc["recorded"] == 1
        assert doc["spans"][0]["name"] == "maintenance.compact"
        assert doc["spans"][0]["attrs"] == {"rows_reclaimed": 10}

    def test_spans_endpoint_filters_and_limits(self, live):
        _, _, body = _get(live.url + "/spans?name=missing&limit=1")
        assert json.loads(body)["spans"] == []

    def test_events_endpoint(self, live):
        _, _, body = _get(live.url + "/events?kind=slow_query")
        doc = json.loads(body)
        assert doc["emitted"] == 1 and doc["dropped"] == 0
        assert doc["events"][0]["payload"]["seq"] == 1

    def test_healthz(self, live):
        _, _, body = _get(live.url + "/healthz")
        doc = json.loads(body)
        assert doc["status"] == "ok"
        assert doc["uptime_seconds"] >= 0
        assert doc["spans_recorded"] == 1
        assert doc["events_emitted"] == 1

    def test_unknown_path_is_404_listing_endpoints(self, live):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(live.url + "/nope")
        assert err.value.code == 404
        assert "/metrics" in err.value.read().decode()

    def test_every_documented_endpoint_answers(self, live):
        for path in ENDPOINTS:
            status, _, _ = _get(live.url + path)
            assert status == 200, path

    def test_stop_is_idempotent_and_restartable(self):
        server = MetricsServer(Telemetry())
        server.start()
        port = server.port
        assert port > 0
        server.stop()
        server.stop()  # no-op
        with pytest.raises(urllib.error.URLError):
            _get(f"http://127.0.0.1:{port}/healthz")
        server.start()  # a stopped server may start again
        _get(server.url + "/healthz")
        server.stop()

    def test_double_start_rejected(self):
        with MetricsServer(Telemetry()) as server:
            with pytest.raises(ConfigurationError):
                server.start()

    def test_port_validation(self):
        with pytest.raises(ConfigurationError):
            MetricsServer(Telemetry(), port=70000)

    def test_events_endpoint_without_log_is_empty(self):
        with MetricsServer(Telemetry()) as server:
            _, _, body = _get(server.url + "/events")
            doc = json.loads(body)
            assert doc == {"emitted": 0, "dropped": 0, "events": []}
