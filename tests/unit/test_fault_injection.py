"""Unit tests for the deterministic fault injector and its engine seam.

The injector is pure clockwork — same seed, same failure schedule —
which is what makes failures *test inputs*: a run with a mid-workload
kill can be replayed exactly and compared against the unfaulted run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import ScanIndex
from repro.core import QuasiiConfig, QuasiiIndex
from repro.datasets import BoxStore
from repro.errors import ConfigurationError
from repro.geometry import Box
from repro.queries import RangeQuery
from repro.sharding import (
    Fault,
    FaultInjector,
    QueryExecutor,
    ReplicatedShardedIndex,
    ShardedIndex,
)


def _grid_store(side: int = 6, spacing: float = 3.0) -> BoxStore:
    xs, ys = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
    lo = np.column_stack([xs.ravel(), ys.ravel()]).astype(np.float64) * spacing
    return BoxStore(lo, lo + 1.0)


def _small_quasii(store: BoxStore) -> QuasiiIndex:
    return QuasiiIndex(store, QuasiiConfig(2, (8, 4)), max_runs=2)


def _window(lo, hi, seq=0) -> RangeQuery:
    return RangeQuery(Box(tuple(lo), tuple(hi)), seq=seq)


def _replicated(store, **kwargs) -> ReplicatedShardedIndex:
    engine = ReplicatedShardedIndex(
        store, index_factory=_small_quasii, **kwargs
    )
    engine.build()
    return engine


class TestFaultValidation:
    def test_unknown_action_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault action"):
            Fault(at_op=1, action="explode", sid=0, rid=0)

    def test_at_op_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="at_op must be >= 1"):
            Fault(at_op=0, action="kill", sid=0, rid=0)

    def test_duration_and_factor_bounds(self):
        with pytest.raises(ConfigurationError, match="duration must be >= 0"):
            Fault(at_op=1, action="stall", sid=0, rid=0, duration=-1)
        with pytest.raises(ConfigurationError, match="factor must be >= 1.0"):
            Fault(at_op=1, action="slow", sid=0, rid=0, factor=0.5)

    def test_random_schedule_bounds(self):
        with pytest.raises(ConfigurationError, match="n_faults >= 0"):
            FaultInjector.random(1, -1, 2, 2, 10)
        with pytest.raises(ConfigurationError, match="max_op >= 1"):
            FaultInjector.random(1, 1, 2, 2, 0)


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        a = FaultInjector.random(42, 8, n_shards=4, replication=3, max_op=50)
        b = FaultInjector.random(42, 8, n_shards=4, replication=3, max_op=50)
        assert a.schedule == b.schedule

    def test_different_seed_different_schedule(self):
        a = FaultInjector.random(42, 8, n_shards=4, replication=3, max_op=50)
        b = FaultInjector.random(43, 8, n_shards=4, replication=3, max_op=50)
        assert a.schedule != b.schedule

    def test_random_schedule_stays_in_bounds(self):
        inj = FaultInjector.random(7, 32, n_shards=3, replication=2, max_op=20)
        assert len(inj.schedule) == 32
        for f in inj.schedule:
            assert 1 <= f.at_op <= 20
            assert 0 <= f.sid < 3
            assert 0 <= f.rid < 2
            assert f.action in ("kill", "stall", "slow")

    def test_actions_filter_restricts_schedule(self):
        inj = FaultInjector.random(
            7, 16, n_shards=2, replication=2, max_op=9, actions=("kill",)
        )
        assert all(f.action == "kill" for f in inj.schedule)


class TestClockwork:
    def _schedule(self):
        return [
            Fault(at_op=2, action="kill", sid=0, rid=0),
            Fault(at_op=3, action="stall", sid=1, rid=1, duration=2),
            Fault(at_op=3, action="slow", sid=0, rid=1, factor=2.0),
        ]

    def test_advance_fires_at_exact_op_counts(self):
        inj = FaultInjector(self._schedule())
        assert inj.advance() == []  # op 1
        due = inj.advance()  # op 2
        assert [f.action for f in due] == ["kill"]
        due = inj.advance()  # op 3: both remaining fire together
        assert sorted(f.action for f in due) == ["slow", "stall"]
        assert inj.exhausted
        assert inj.advance() == []
        assert inj.ops_seen == 4

    def test_reset_replays_identically(self):
        inj = FaultInjector(self._schedule())
        first = [inj.advance() for _ in range(4)]
        inj.reset()
        assert inj.ops_seen == 0 and not inj.exhausted
        assert [inj.advance() for _ in range(4)] == first

    def test_schedule_is_sorted_by_at_op(self):
        inj = FaultInjector(
            [
                Fault(at_op=9, action="kill", sid=0, rid=0),
                Fault(at_op=1, action="kill", sid=0, rid=1),
            ]
        )
        assert [f.at_op for f in inj.schedule] == [1, 9]

    def test_gap_between_faults_yields_empty_ticks(self):
        inj = FaultInjector(
            [Fault(at_op=1, action="kill", sid=0, rid=0),
             Fault(at_op=5, action="kill", sid=0, rid=1)]
        )
        fired = [len(inj.advance()) for _ in range(5)]
        assert fired == [1, 0, 0, 0, 1]
        assert inj.exhausted


class TestEngineSeam:
    def test_executor_rejects_plain_engine(self):
        engine = ShardedIndex(
            _grid_store(), n_shards=2, index_factory=_small_quasii
        )
        with pytest.raises(ConfigurationError, match="fault-injection seam"):
            QueryExecutor(engine, fault_injector=FaultInjector())

    def test_executor_attaches_injector_to_replicated_engine(self):
        engine = _replicated(_grid_store(), n_shards=2, replication=2)
        inj = FaultInjector()
        QueryExecutor(engine, fault_injector=inj)
        assert engine.fault_injector is inj

    def test_out_of_range_fault_targets_raise(self):
        engine = _replicated(_grid_store(), n_shards=2, replication=2)
        with pytest.raises(ConfigurationError, match="targets shard 9"):
            engine.apply_fault(Fault(at_op=1, action="kill", sid=9, rid=0))
        with pytest.raises(ConfigurationError, match="targets replica 5"):
            engine.apply_fault(Fault(at_op=1, action="kill", sid=0, rid=5))

    def test_kill_fires_deterministically_mid_workload(self):
        """Same seed, same kill point, same results as the unfaulted run."""
        queries = [
            _window((i % 5 * 3.0, 0.0), (i % 5 * 3.0 + 7.0, 16.0), seq=i)
            for i in range(12)
        ]

        def run(with_faults: bool):
            engine = _replicated(_grid_store(), n_shards=2, replication=2)
            if with_faults:
                engine.attach_fault_injector(
                    # Seed 0's three kills hit (0,0) and (1,1): every
                    # shard keeps a live replica, so the run must match
                    # the unfaulted one exactly.
                    FaultInjector.random(
                        0, 3, n_shards=2, replication=2, max_op=8,
                        actions=("kill",),
                    )
                )
            results = [np.sort(engine.query(q)) for q in queries]
            return results, sorted(engine.dead_replicas())

        base, dead_base = run(with_faults=False)
        faulted1, dead1 = run(with_faults=True)
        faulted2, dead2 = run(with_faults=True)
        assert dead_base == [] and dead1 == dead2 and len(dead1) >= 1
        for a, b, c in zip(base, faulted1, faulted2):
            assert np.array_equal(a, b) and np.array_equal(b, c)

    def test_kill_during_write_leaves_ledger_replayable(self):
        engine = _replicated(_grid_store(4), n_shards=2, replication=2)
        scan = ScanIndex(BoxStore(engine.store.lo.copy(), engine.store.hi.copy()))
        # The very first engine op is the insert; the fault fires inside
        # it, before the write reaches any replica.
        engine.attach_fault_injector(
            FaultInjector([Fault(at_op=1, action="kill", sid=0, rid=1)])
        )
        blo = np.array([[0.5, 0.5], [4.0, 4.0], [20.0, 2.0]])
        bhi = blo + 1.5
        expect_ids = scan.insert(blo, bhi)
        got_ids = engine.insert(blo, bhi)
        assert np.array_equal(got_ids, expect_ids)
        assert engine.dead_replicas() == [(0, 1)]
        # The dead replica missed the write; ledger replay recovers it.
        engine.recover_replica(0, 1)
        assert engine.dead_replicas() == []
        rs = engine.shards[0].replica_set
        rs.ledger.assert_matches(rs.replicas[1].store)
        fps = {r.store.live_fingerprint() for r in rs.replicas}
        assert len(fps) == 1
        full = _window((-1.0, -1.0), (30.0, 30.0), seq=999)
        assert np.array_equal(
            np.sort(engine.query(full)), np.sort(scan.query(full))
        )
